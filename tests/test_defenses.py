"""Baseline defenses: trackers, mitigation behaviour, Table I rows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller import MemoryController
from repro.defenses import (
    PARA,
    RRS,
    SRS,
    TRR,
    CounterPerRow,
    CounterTree,
    Graphene,
    Hydra,
    MisraGries,
    NoDefense,
    RowPermutation,
    Shadow,
    TWiCE,
    format_table1,
    table1_reports,
)
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap


def make_system(defense, trh=40):
    cfg = DRAMConfig.tiny()
    vuln = VulnerabilityMap(cfg, weak_cell_fraction=0.0)
    device = DRAMDevice(cfg, vulnerability=vuln, trh=trh)
    controller = MemoryController(device, defense=defense)
    return device, controller


def hammer_victim(device, controller, victim=10, bit=0, rounds=None):
    """Double-sided hammer against ``victim``; return True if bit flipped.

    Like a real attacker, stop as soon as the flip lands (flips are XOR
    toggles, so hammering past success would undo it).
    """
    device.vulnerability.register_template(victim, [bit])
    rounds = rounds or device.timing.trh * 3
    for _ in range(rounds):
        for aggressor in (victim - 1, victim + 1):
            controller.hammer(aggressor)
            if device.peek_row(victim)[bit // 8] >> (bit % 8) & 1:
                return True
    return False


class TestMisraGries:
    def test_exact_when_table_big_enough(self):
        mg = MisraGries(k=8)
        for _ in range(5):
            mg.observe(1)
        assert mg.estimate(1) == 5

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=400),
        st.integers(min_value=1, max_value=10),
    )
    def test_classical_error_bound(self, stream, k):
        mg = MisraGries(k=k)
        for item in stream:
            mg.observe(item)
        for item in set(stream):
            true = stream.count(item)
            estimate = mg.estimate(item)
            assert estimate <= true
            assert true - estimate <= len(stream) / (k + 1)

    def test_k_validated(self):
        with pytest.raises(ValueError):
            MisraGries(0)


class TestRowPermutation:
    def test_identity_initially(self):
        perm = RowPermutation()
        assert perm.where(5) == 5 and perm.is_identity()

    def test_swap_and_inverse(self):
        perm = RowPermutation()
        perm.swap_locations(3, 9)
        assert perm.where(3) == 9
        assert perm.where(9) == 3
        assert perm.resident(9) == 3

    def test_swap_back_restores_identity(self):
        perm = RowPermutation()
        perm.swap_locations(3, 9)
        perm.swap_locations(3, 9)
        assert perm.is_identity()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=60,
        )
    )
    def test_remains_a_bijection(self, swaps):
        perm = RowPermutation()
        for a, b in swaps:
            perm.swap_locations(a, b)
        images = [perm.where(i) for i in range(31)]
        assert sorted(images) == list(range(31))


class TestMitigationEffectiveness:
    """Every tracker-based defense must stop a naive double-sided BFA."""

    @pytest.mark.parametrize(
        "defense_factory",
        [
            # PARA's p must scale with 1/TRH; at TRH=40 a strong p is needed.
            lambda: PARA(probability=0.3, seed=1),
            lambda: TRR(table_entries=8),
            lambda: Graphene(table_entries=16),
            lambda: Hydra(group_size=8),
            lambda: TWiCE(),
            lambda: CounterPerRow(),
            # The tree must localize (split) well within TRH=40 activations.
            lambda: CounterTree(split_threshold=2, mitigation_threshold=10),
        ],
        ids=["para", "trr", "graphene", "hydra", "twice", "cpr", "counter-tree"],
    )
    def test_defense_prevents_templated_flip(self, defense_factory):
        device, controller = make_system(defense_factory())
        assert not hammer_victim(device, controller)

    def test_undefended_system_flips(self):
        device, controller = make_system(NoDefense())
        assert hammer_victim(device, controller)

    def test_swap_based_defenses_relocate_target(self):
        for defense in (RRS(seed=2), SRS(seed=2), Shadow(shuffle_period=10, seed=2)):
            device, controller = make_system(defense)
            hammer_victim(device, controller, victim=10)
            # The data the attacker aimed at moved at least once.
            assert defense.translate(10) != 10 or defense.permutation.is_identity() is False


class TestTRR:
    def test_small_table_evicts_cold_entries(self):
        device, controller = make_system(TRR(table_entries=2, threshold=100))
        defense = controller.defense
        for row in (1, 3, 5, 7):
            controller.hammer(row)
        assert len(defense._counts) <= 2

    def test_threshold_mitigation_resets_count(self):
        defense = TRR(table_entries=4, threshold=5)
        device, controller = make_system(defense)
        controller.hammer(9, count=5)
        assert defense._counts[9] == 0
        assert defense.actions >= 1


class TestHydra:
    def test_escalation_to_row_counters(self):
        defense = Hydra(group_size=4, group_threshold=3, row_threshold=100)
        device, controller = make_system(defense)
        controller.hammer(8, count=5)
        assert (8 // 4) in defense._escalated
        assert defense.row_counter_accesses > 0

    def test_row_counter_access_costs_latency(self):
        defense = Hydra(group_size=4, group_threshold=2, row_threshold=1000)
        device, controller = make_system(defense)
        results = controller.hammer(8, count=5)
        assert results[-1].defense_ns > 0


class TestCounterTree:
    def test_splits_concentrate_counters(self):
        defense = CounterTree(split_threshold=4, mitigation_threshold=1000)
        device, controller = make_system(defense)
        controller.hammer(9, count=40)
        assert defense.splits > 0
        assert defense.live_counters() >= 2

    def test_window_rollover_resets_tree(self):
        defense = CounterTree(split_threshold=4, mitigation_threshold=1000)
        device, controller = make_system(defense)
        controller.hammer(9, count=40)
        device.advance(device.timing.tref_w * 1.1)
        controller.hammer(9, count=1)
        assert defense.splits == 0


class TestTWiCE:
    def test_pruning_drops_cold_rows(self):
        defense = TWiCE(threshold=10_000, prune_period=8, prune_min_count=2)
        device, controller = make_system(defense)
        for row in range(8):  # eight distinct one-shot rows
            controller.hammer(row)
        assert defense.pruned_entries >= 7


class TestShadowBehaviour:
    def test_shuffle_moves_data(self):
        device, controller = make_system(Shadow(shuffle_period=5, seed=0))
        defense = controller.defense
        device.poke_bytes(9, 0, [0x77])
        controller.hammer(9, count=10)
        assert defense.shuffles_performed >= 1
        location = defense.translate(9)
        assert device.peek_row(location)[0] == 0x77

    def test_controller_follows_translation(self):
        device, controller = make_system(Shadow(shuffle_period=3, seed=0))
        device.poke_bytes(9, 0, [0x42])
        controller.hammer(9, count=6)
        result = controller.read(9)
        assert result.physical_row == controller.defense.translate(9)

    def test_shuffle_period_validated(self):
        with pytest.raises(ValueError):
            Shadow(shuffle_period=0)


class TestTable1:
    def test_paper_rows_reproduced(self):
        table = format_table1()
        assert "Graphene         CAM-SRAM         0.53MB‡+1.12MB†" in table
        assert "Hydra            SRAM-DRAM        56KB†+4MB*" in table
        assert "TWiCE            SRAM-CAM         3.16MB†+1.6MB‡" in table
        assert "Counter per Row  DRAM             32MB*" in table
        assert "Counter Tree     DRAM             2MB*" in table
        assert "RRS              DRAM-SRAM        4MB*+NR†" in table
        assert "SRS              DRAM-SRAM        1.26MB*+NR†" in table
        assert "SHADOW           DRAM             0.16MB*" in table
        assert "P-PIM            DRAM             4.125MB*" in table
        assert "DRAM-Locker      DRAM-SRAM        0+56KB†" in table

    def test_dram_locker_has_smallest_area(self):
        reports = {r.framework: r for r in table1_reports()}
        locker = reports["DRAM-Locker"]
        assert locker.area_pct == 0.02
        for name, report in reports.items():
            if report.area_pct is not None and name != "DRAM-Locker":
                assert report.area_pct > locker.area_pct

    def test_counter_per_row_derivation(self):
        cfg = DRAMConfig.ddr4_32gb()
        report = CounterPerRow().overhead(cfg)
        assert report.capacity["DRAM"] == cfg.total_rows * 8 == 32 * 1024 ** 2

    def test_hydra_dram_side_derivation(self):
        cfg = DRAMConfig.ddr4_32gb()
        report = Hydra().overhead(cfg)
        assert report.capacity["DRAM"] == cfg.total_rows == 4 * 1024 ** 2

    def test_area_column_formats(self):
        reports = {r.framework: r for r in table1_reports()}
        assert reports["Counter per Row"].area_text() == "16384 counters"
        assert reports["RRS"].area_text() == "NULL"
        assert reports["SHADOW"].area_text() == "0.6%"
