"""The live serving frontend: traces, replay equivalence, admission.

Pins the PR's contracts:

* trace round-trips through both on-disk formats bit-exactly;
* an infinite-speedup replay of a recorded trace is bit-identical to
  the closed-loop run -- payloads *and* locker/swap-RNG internals
  (the replay-equivalence contract, docs/SERVING.md);
* admission decisions in replay are deterministic, and every shed op
  is booked (offered == served + shed, mirrored in the SLA books);
* the bounded backlog admits all-or-nothing and the threaded live
  server conserves ops under wall-clock pacing;
* the ``python -m repro.serve`` CLI exit codes;
* the unified ``repro.engines`` validator and its uniform error at
  every adoption site;
* the ``compare_serving_live`` nightly gate.
"""

import dataclasses

import pytest

from repro.attacks.registry import AttackContext
from repro.attacks.session import SearchSession
from repro.controller.controller import MemoryController
from repro.dram.config import DRAMConfig
from repro.dram.device import DRAMDevice
from repro.dram.vulnerability import VulnerabilityMap
from repro.engines import (
    ENGINES,
    EXECUTION_ENGINES,
    SEARCH_ENGINES,
    resolve_engine,
)
from repro.eval.harness import serving_live_scenarios
from repro.eval.regression import compare_serving_live
from repro.serve import main as serve_main
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    ChannelBacklog,
    ServingConfig,
    ServingSimulation,
    ShardedMemorySystem,
    TenantSink,
    Trace,
    record_serving_trace,
    replay_neutral,
    replay_trace,
    serve,
)
from repro.controller.request import Kind, MemRequest, RequestRun


def _small_config(**overrides) -> ServingConfig:
    defaults = dict(tenants=3, channels=2, slices=6, ops_per_slice=4.0,
                    seed=3)
    defaults.update(overrides)
    return ServingConfig(**defaults)


# ----------------------------------------------------------------------
# Trace format
# ----------------------------------------------------------------------
class TestTraceRoundTrip:
    @pytest.mark.parametrize("suffix", ["npz", "jsonl"])
    def test_round_trip(self, tmp_path, suffix):
        config = _small_config()
        trace = record_serving_trace(config)
        path = trace.save(tmp_path / f"trace.{suffix}")
        loaded = Trace.load(path)
        assert loaded == trace
        assert loaded.meta["serving_config"]["seed"] == config.seed
        assert loaded.slice_duration_s == trace.slice_duration_s
        assert len(loaded) == len(trace) > 0
        # Arrivals are sorted within each slice and live inside it.
        for index in range(loaded.slices):
            arrivals = [op.arrival_s for op in loaded.slice_ops(index)]
            assert arrivals == sorted(arrivals)
            for arrival in arrivals:
                assert (
                    index * loaded.slice_duration_s
                    <= arrival
                    < (index + 1) * loaded.slice_duration_s
                )

    def test_unknown_suffix_rejected(self, tmp_path):
        trace = record_serving_trace(_small_config(slices=2))
        with pytest.raises(ValueError, match="suffix"):
            trace.save(tmp_path / "trace.csv")


# ----------------------------------------------------------------------
# Replay equivalence
# ----------------------------------------------------------------------
class TestReplayEquivalence:
    @pytest.mark.parametrize("engine", ["bulk", "events"])
    def test_payload_bit_identical(self, engine):
        config = _small_config(engine=engine)
        trace = record_serving_trace(config)
        closed = ServingSimulation(config).run()
        replayed = serve(config, trace=trace).payload
        assert replay_neutral(replayed) == replay_neutral(closed)
        # The replay payload carries the live section on top.
        assert replayed["live"]["pacing"]["speedup"] == 0.0
        assert replayed["live"]["pacing"]["offered"] == len(trace)

    def test_locker_and_rng_state_identical(self):
        """Bit-identity goes deeper than the payload: per-channel lock
        tables, exposure state, and the swap-failure RNG stream end in
        exactly the state the closed loop leaves them in."""
        config = _small_config()
        trace = record_serving_trace(config)
        closed_sim = ServingSimulation(config)
        closed_sim.run()
        replay_sim = ServingSimulation(config)
        replay_trace(trace, sim=replay_sim)
        for closed_state, replay_state in zip(
            closed_sim.system.channels, replay_sim.system.channels
        ):
            assert (
                closed_state.device.stats.as_dict()
                == replay_state.device.stats.as_dict()
            )
            assert closed_state.device.now_ns == replay_state.device.now_ns
            closed_locker = closed_state.locker
            replay_locker = replay_state.locker
            assert closed_locker is not None
            assert (
                closed_locker.exposure_summary()
                == replay_locker.exposure_summary()
            )
            assert closed_locker._where == replay_locker._where
            assert closed_locker.exposed == replay_locker.exposed
            assert (
                closed_locker.rw_instructions
                == replay_locker.rw_instructions
            )
            assert (
                closed_locker.swap_engine.rng.bit_generator.state
                == replay_locker.swap_engine.rng.bit_generator.state
            )

    def test_replay_from_file_uses_embedded_config(self, tmp_path):
        config = _small_config()
        trace = record_serving_trace(config)
        path = trace.save(tmp_path / "trace.npz")
        closed = ServingSimulation(config).run()
        replayed = replay_trace(Trace.load(path))
        assert replay_neutral(replayed) == replay_neutral(closed)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def _compressed(self, config, factor=4.0):
        base = record_serving_trace(config)
        return record_serving_trace(
            config, slice_duration_s=base.slice_duration_s / factor
        )

    def test_shedding_deterministic_and_conserved(self):
        config = _small_config(colocated=False, channels=1)
        hot = self._compressed(config)
        admitted = dataclasses.replace(
            config,
            admission=AdmissionConfig(
                rate=12.0 / hot.slice_duration_s, burst=2.0
            ),
        )
        first = serve(admitted, trace=hot).payload
        second = serve(admitted, trace=hot).payload
        assert first == second
        pacing = first["live"]["pacing"]
        assert pacing["shed"] > 0
        assert pacing["offered"] == pacing["served"] + pacing["shed"]
        assert first["live"]["shed_total"] == pacing["shed"]
        booked = sum(
            sum(entry.get("shed", {}).values())
            for entry in first["live"]["tenants"].values()
        )
        assert booked == pacing["shed"]

    def test_pressure_shedding_reduces_sojourn_tail(self):
        config = _small_config(
            colocated=False, channels=1, slices=12, ops_per_slice=6.0
        )
        base = serve(config, trace=record_serving_trace(config))
        target = base.sojourn_p99_ns() * 4.0
        hot = self._compressed(config)
        open_result = serve(config, trace=hot)
        shed_result = serve(
            dataclasses.replace(
                config, admission=AdmissionConfig(p99_target_ns=target)
            ),
            trace=hot,
        )
        assert open_result.sojourn_p99_ns() > target
        assert shed_result.shed_total > 0
        assert shed_result.sojourn_p99_ns() < open_result.sojourn_p99_ns()

    def test_exempt_tenants_never_shed(self):
        sla_books = ServingSimulation(_small_config()).sla
        controller = AdmissionController(
            AdmissionConfig(rate=0.001, burst=1.0, exempt=("tenant-0",)),
            sla_books,
        )
        for step in range(20):
            assert controller.screen("tenant-0", step * 1e-6) is None
        reasons = {
            controller.screen("tenant-1", step * 1e-6) for step in range(20)
        }
        assert "throttled" in reasons

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            AdmissionConfig(rate=0.0)
        with pytest.raises(ValueError, match="shed_fraction"):
            AdmissionConfig(shed_fraction=1.5)
        with pytest.raises(ValueError, match="queue_depth"):
            AdmissionConfig(queue_depth=0)


# ----------------------------------------------------------------------
# Bounded backlog + threaded live server
# ----------------------------------------------------------------------
class TestLiveServing:
    def test_backlog_all_or_nothing(self):
        backlog = ChannelBacklog(channels=2, depth=2)
        assert backlog.try_acquire([0, 1])
        assert backlog.try_acquire([0, 1])
        # Channel 0 is full: an op spanning both channels acquires
        # neither, leaving channel 1's count untouched.
        assert not backlog.try_acquire([0, 1])
        assert backlog.outstanding(1) == 2
        backlog.release([0, 1])
        assert backlog.try_acquire([0])
        with pytest.raises(RuntimeError, match="release without acquire"):
            ChannelBacklog(1, 1).release([0])

    def test_live_server_conserves_and_protects(self):
        config = _small_config()
        trace = record_serving_trace(config)
        result = serve(
            dataclasses.replace(config, speedup=1000.0), trace=trace
        )
        pacing = result.live["pacing"]
        assert pacing["offered"] == len(trace)
        assert pacing["offered"] == pacing["served"] + pacing["shed"]
        assert pacing["wall_s"] > 0
        assert result.victim_flip_events == 0


# ----------------------------------------------------------------------
# Non-blocking hand-off
# ----------------------------------------------------------------------
class TestHandoffStream:
    def test_deferred_execution_matches_execute_stream(self):
        config = DRAMConfig.tiny().with_channels(2)
        direct = ShardedMemorySystem(config, seed=0)
        deferred = ShardedMemorySystem(config, seed=0)
        streams = [
            [MemRequest(Kind.READ, row) for row in (1, 5, 9)],
            RequestRun(MemRequest(Kind.ACT, 6), 40),
            [MemRequest(Kind.WRITE, 2, privileged=True)],
        ]
        direct_sink, deferred_sink = TenantSink(), TenantSink()
        thunks = [
            deferred.handoff_stream(stream, deferred_sink)
            for stream in streams
        ]
        for stream in streams:
            direct.execute_stream(stream, direct_sink)
        for thunk in thunks:
            thunk()
        assert direct_sink.summary == deferred_sink.summary
        for direct_state, deferred_state in zip(
            direct.channels, deferred.channels
        ):
            assert (
                direct_state.device.stats.as_dict()
                == deferred_state.device.stats.as_dict()
            )


# ----------------------------------------------------------------------
# Unified engine registry
# ----------------------------------------------------------------------
class TestEngines:
    def test_constants(self):
        assert ENGINES == EXECUTION_ENGINES == ("scalar", "bulk", "events")
        assert SEARCH_ENGINES == ("suffix", "full")
        assert resolve_engine("bulk") == "bulk"
        assert (
            resolve_engine("full", allowed=SEARCH_ENGINES, kind="search")
            == "full"
        )

    def test_uniform_error_at_every_adoption_site(self):
        device = DRAMDevice(
            DRAMConfig.tiny(),
            vulnerability=VulnerabilityMap(
                DRAMConfig.tiny(), weak_cell_fraction=0.0
            ),
        )
        with pytest.raises(ValueError, match="unknown execution engine"):
            resolve_engine("warp")
        with pytest.raises(ValueError, match="unknown execution engine"):
            MemoryController(device, engine="warp")
        with pytest.raises(ValueError, match="unknown execution engine"):
            ServingConfig(engine="warp")
        with pytest.raises(ValueError, match="unknown search engine"):
            SearchSession(MemoryController(device), engine="warp")
        with pytest.raises(ValueError, match="unknown search engine"):
            AttackContext(qmodel=None, dataset=None, engine="warp")


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
class TestServeCLI:
    ARGS = ["--tenants", "3", "--channels", "2", "--slices", "6",
            "--ops-per-slice", "4", "--seed", "3"]

    def test_record_replay_verify(self, tmp_path, capsys):
        out = str(tmp_path / "cli.npz")
        assert serve_main(["record", *self.ARGS, "--out", out]) == 0
        assert serve_main(["replay", out, "--verify"]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_verify_with_admission_is_an_error(self, tmp_path):
        out = str(tmp_path / "cli.jsonl")
        assert serve_main(["record", *self.ARGS, "--out", out]) == 0
        assert (
            serve_main(
                ["replay", out, "--verify", "--admission-rate", "5"]
            )
            == 1
        )

    def test_usage_errors_exit_2(self):
        with pytest.raises(SystemExit) as excinfo:
            serve_main([])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            serve_main(["live", "trace.npz"])  # --speedup required
        assert excinfo.value.code == 2

    def test_live_serving_error_exits_3(self, tmp_path, capsys, monkeypatch):
        import repro.serve as serve_module
        from repro.serving import LiveServingError

        out = str(tmp_path / "cli.npz")
        assert serve_main(["record", *self.ARGS, "--out", out]) == 0

        def wedged(config, trace=None):
            raise LiveServingError(
                "channel worker died mid-run",
                {"phase": "executor", "offered": 7, "served": 3},
            )

        monkeypatch.setattr(serve_module, "serve", wedged)
        assert serve_main(["live", out, "--speedup", "1000"]) == 3
        assert "serving error" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Canned set + nightly gate
# ----------------------------------------------------------------------
def _live_artifact() -> dict:
    return {
        "schema": "dram-locker-serving-live-bench/1",
        "replay": {"cells": {
            "bulk-ch2": {"identical": True},
            "events-ch2": {"identical": True},
        }},
        "overload": {"cells": {
            "open": {"sojourn_p99_ns": 12000.0, "shed": 0,
                     "sla_fingerprint": {"requests": 100}},
            "pressure": {"sojourn_p99_ns": 2000.0, "shed": 40,
                         "p99_target_ns": 1500.0, "holds_p99": True,
                         "sla_fingerprint": {"requests": 60}},
        }},
        "colocated": {"victim_flip_events": 0, "shed": 30},
        "live": {"offered": 100, "served": 90, "shed": 10,
                 "conserved": True},
    }


class TestServingLiveGate:
    def test_identical_artifacts_pass(self):
        report = compare_serving_live(_live_artifact(), _live_artifact())
        assert report.ok and report.checks

    def test_replay_divergence_fails(self):
        current = _live_artifact()
        current["replay"]["cells"]["bulk-ch2"]["identical"] = False
        assert not compare_serving_live(current, _live_artifact()).ok

    def test_shed_drift_fails(self):
        current = _live_artifact()
        current["overload"]["cells"]["pressure"]["shed"] = 41
        assert not compare_serving_live(current, _live_artifact()).ok

    def test_fingerprint_drift_fails(self):
        current = _live_artifact()
        current["overload"]["cells"]["open"]["sla_fingerprint"] = {
            "requests": 99
        }
        assert not compare_serving_live(current, _live_artifact()).ok

    def test_broken_target_fails(self):
        current = _live_artifact()
        current["overload"]["cells"]["pressure"]["holds_p99"] = False
        assert not compare_serving_live(current, _live_artifact()).ok

    def test_admitted_worse_than_open_fails(self):
        current = _live_artifact()
        current["overload"]["cells"]["pressure"]["sojourn_p99_ns"] = 13000.0
        assert not compare_serving_live(current, _live_artifact()).ok

    def test_victim_flip_fails(self):
        current = _live_artifact()
        current["colocated"]["victim_flip_events"] = 2
        assert not compare_serving_live(current, _live_artifact()).ok

    def test_conservation_violation_fails(self):
        current = _live_artifact()
        current["live"]["conserved"] = False
        assert not compare_serving_live(current, _live_artifact()).ok

    def test_missing_cell_fails(self):
        current = _live_artifact()
        del current["overload"]["cells"]["pressure"]
        assert not compare_serving_live(current, _live_artifact()).ok

    def test_canned_set_shape(self):
        scenarios = serving_live_scenarios()
        names = [scenario.name for scenario in scenarios]
        assert len(names) == len(set(names)) >= 7
        assert all(
            scenario.runner == "serving_live" for scenario in scenarios
        )
        verified = [
            scenario
            for scenario in scenarios
            if dict(scenario.params).get("verify")
        ]
        engines = {
            dict(scenario.params).get("engine", "bulk")
            for scenario in verified
        }
        assert engines == {"bulk", "events"}
