"""Memory controller: timing, hammer path, sequence, scheduling."""

import pytest

from repro.controller import (
    FRFCFSScheduler,
    Kind,
    MemRequest,
    MemoryController,
    Sequence,
    Status,
)
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.locker import DRAMLocker


@pytest.fixture()
def device():
    cfg = DRAMConfig.tiny()
    vuln = VulnerabilityMap(cfg, weak_cell_fraction=0.0)
    return DRAMDevice(cfg, vulnerability=vuln, trh=50)


@pytest.fixture()
def controller(device):
    return MemoryController(device)


class TestTiming:
    def test_cold_read_is_a_row_miss(self, controller, device):
        result = controller.read(5)
        timing = device.timing
        assert result.latency_ns == pytest.approx(
            timing.trcd + timing.tcl + timing.tbl
        )
        assert not result.row_hit
        assert device.stats.row_misses == 1

    def test_second_read_same_row_hits(self, controller, device):
        controller.read(5)
        result = controller.read(5, column=64)
        assert result.row_hit
        assert result.latency_ns == pytest.approx(device.timing.row_hit_ns)
        assert device.stats.row_hits == 1

    def test_conflict_read_pays_precharge(self, controller, device):
        controller.read(5)
        result = controller.read(6)
        timing = device.timing
        assert result.latency_ns == pytest.approx(
            timing.trp + timing.trcd + timing.tcl + timing.tbl
        )

    def test_multi_burst_adds_tccd(self, controller, device):
        result = controller.read(5, size=256)
        timing = device.timing
        expected = timing.trcd + timing.tcl + timing.tbl + 3 * timing.tccd
        assert result.latency_ns == pytest.approx(expected)

    def test_act_request_is_full_row_cycle(self, controller, device):
        result = controller.execute(MemRequest(Kind.ACT, 5))
        assert result.latency_ns == pytest.approx(device.timing.trc)
        # closed-row: the bank is precharged afterwards
        assert device.banks[0].open_row is None

    def test_write_stores_and_costs_like_read(self, controller, device):
        result = controller.write(5)
        assert result.status is Status.DONE
        assert device.stats.writes == 1

    def test_clock_advances_with_traffic(self, controller, device):
        before = device.now_ns
        controller.read(5)
        assert device.now_ns > before


class TestHammerPath:
    def test_hammer_counts_activations(self, controller, device):
        controller.hammer(9, count=7)
        assert device.rowhammer.activation_count(9) == 7

    def test_hammer_triggers_flips_past_threshold(self, controller, device):
        device.vulnerability.register_template(8, [0])
        results = controller.hammer(9, count=device.timing.trh)
        flips = [f for r in results for f in r.flips]
        assert len(flips) == 1 and flips[0].row == 8


class TestSequence:
    def test_drain_executes_in_order(self, controller, device):
        seq = Sequence(controller)
        seq.extend([MemRequest(Kind.READ, row) for row in (1, 2, 3)])
        report = seq.drain()
        assert report.executed == 3
        assert report.blocked == 0
        assert len(seq) == 0
        assert report.total_latency_ns > 0

    def test_blocked_instructions_save_latency(self, device):
        locker = DRAMLocker(device)
        locker.lock_rows([5])
        controller = MemoryController(device, locker=locker)
        seq = Sequence(controller)
        seq.extend([MemRequest(Kind.ACT, 5) for _ in range(10)])
        report = seq.drain()
        assert report.blocked == 10
        assert report.executed == 0
        # A skipped ACT costs only the lock lookup instead of a row cycle.
        assert report.blocked_latency_saved_ns > 0
        assert device.rowhammer.activation_count(5) == 0


class TestFRFCFS:
    def test_promotes_row_hits(self, controller, device):
        requests = [
            MemRequest(Kind.READ, 1),
            MemRequest(Kind.READ, 2),
            MemRequest(Kind.READ, 1, column=64),
        ]
        scheduler = FRFCFSScheduler(controller, window=4)
        results = scheduler.run(requests)
        served_rows = [r.request.row for r in results]
        assert served_rows == [1, 1, 2]
        assert results[1].row_hit

    def test_starvation_cap_eventually_serves_head(self, controller):
        # All requests to distinct rows: order must be preserved.
        requests = [MemRequest(Kind.READ, row) for row in range(8)]
        scheduler = FRFCFSScheduler(controller, window=4, starvation_cap=2)
        results = scheduler.run(requests)
        assert [r.request.row for r in results] == list(range(8))

    def test_window_validation(self, controller):
        with pytest.raises(ValueError):
            FRFCFSScheduler(controller, window=0)
