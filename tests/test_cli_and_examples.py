"""The CLI entry point and example-facing integration seams (cheap paths)."""

import pytest

from repro.eval.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig8" in out

    def test_unknown_experiment(self, capsys):
        assert main(["nonsense"]) == 2

    @pytest.mark.parametrize(
        "name", ["fig1b", "fig5", "table1", "fig7a", "fig7b", "rowclone"]
    )
    def test_cheap_runners(self, name, capsys):
        assert main([name]) == 0
        assert capsys.readouterr().out.strip()

    def test_all_cheap(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        assert "fig7b" in out and "DRAM-Locker" in out
