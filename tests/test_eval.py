"""Evaluation layer: security models, reporting, fast experiment runners."""

import math

import pytest

from repro.eval import (
    LockerSecurityModel,
    ShadowSecurityModel,
    defense_days_from_win_prob,
    downsample,
    format_series,
    format_table,
    run_fig1b,
    run_fig5,
    run_fig7a,
    run_fig7b,
    run_rowclone_savings,
    run_table1,
)


class TestDefenseDays:
    def test_zero_probability_is_forever(self):
        assert defense_days_from_win_prob(0.0) == math.inf

    def test_certain_win_is_zero_days(self):
        assert defense_days_from_win_prob(1.0) == 0.0

    def test_small_probability_approximation(self):
        """days ~= 0.01 / p windows of 64 ms."""
        p = 1e-9
        days = defense_days_from_win_prob(p)
        expected = (0.01005 / p) * 0.064 / 86400
        assert days == pytest.approx(expected, rel=0.01)

    def test_monotone_in_probability(self):
        assert defense_days_from_win_prob(1e-6) > defense_days_from_win_prob(1e-5)


class TestShadowModel:
    def test_defense_days_scale_with_threshold(self):
        days = [
            ShadowSecurityModel(threshold=t).defense_days
            for t in (1000, 2000, 4000, 8000)
        ]
        assert days == sorted(days)
        assert days[3] == pytest.approx(8 * days[0], rel=0.01)

    def test_eight_k_lands_near_paper(self):
        assert 1500 <= ShadowSecurityModel(threshold=8000).defense_days <= 3500

    def test_latency_plateaus_at_compromise(self):
        model = ShadowSecurityModel(threshold=1000)
        cap = model.compromise_attacks
        assert model.latency_per_tref_s(cap) == model.latency_per_tref_s(cap * 10)
        assert model.latency_per_tref_s(cap // 2) < model.latency_per_tref_s(cap)


class TestLockerModel:
    def test_exceeds_plot_with_ten_percent_error(self):
        model = LockerSecurityModel(trh=1000, copy_error_rate=0.10)
        assert model.defense_days > 4000

    def test_failures_needed_scales_with_trh(self):
        low = LockerSecurityModel(trh=500)
        high = LockerSecurityModel(trh=2000)
        assert high.failures_needed > low.failures_needed

    def test_worse_error_rate_shortens_defense(self):
        good = LockerSecurityModel(copy_error_rate=0.05)
        bad = LockerSecurityModel(copy_error_rate=0.5)
        assert bad.defense_days < good.defense_days

    def test_no_latency_plateau(self):
        model = LockerSecurityModel()
        assert model.latency_per_tref_s(80_000) > model.latency_per_tref_s(40_000)

    def test_locker_cheaper_than_shadow_everywhere(self):
        locker = LockerSecurityModel(trh=1000)
        shadow = ShadowSecurityModel(threshold=8000)
        for attacks in (1000, 10_000, 80_000):
            assert locker.latency_per_tref_s(attacks) < shadow.latency_per_tref_s(
                attacks
            )


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [("x", 1), ("yy", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series_pairs(self):
        text = format_series("s", [1, 10], [0.5, 1.25], "{:.2f}")
        assert "0.50" in text and "1.25" in text

    def test_downsample_keeps_last_point(self):
        samples = downsample(list(range(100)), 7)
        assert samples[-1] == (100, 99)
        assert len(samples) <= 10

    def test_downsample_empty(self):
        assert downsample([], 5) == []


class TestFastRunners:
    def test_fig1b_rows(self):
        rows = dict(run_fig1b())
        assert rows["DDR4 (new)"] == "10K"

    def test_fig5_round_trip(self):
        assert run_fig5()["round_trip_ok"]

    def test_fig7a_series_shapes(self):
        out = run_fig7a()
        assert set(out["series"]) == {
            "SHADOW1000",
            "SHADOW2000",
            "SHADOW4000",
            "SHADOW8000",
            "DL",
        }
        for values in out["series"].values():
            assert len(values) == len(out["attack_counts"])

    def test_fig7b_output(self):
        out = run_fig7b()
        assert out["locker_exceeds_plot"]
        assert set(out["shadow_days"]) == {"1K", "2K", "4K", "8K"}

    def test_table1_has_ten_rows(self):
        out = run_table1()
        assert len(out["reports"]) == 10

    def test_rowclone_factors(self):
        out = run_rowclone_savings()
        assert out["latency_factor"] > 5
        assert out["energy_factor"] > 50
