"""DRAM-Locker: lock-table, planner, swap engine, end-to-end policy."""

import numpy as np
import pytest

from repro.controller import Kind, MemRequest, MemoryController
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.locker import (
    DRAMLocker,
    LockMode,
    LockTable,
    LockTableFullError,
    LockerConfig,
    SwapEngine,
    plan_protection,
)


def make_device(trh=50):
    cfg = DRAMConfig.tiny()
    vuln = VulnerabilityMap(cfg, weak_cell_fraction=0.0)
    return DRAMDevice(cfg, vulnerability=vuln, trh=trh)


class TestLockTable:
    def test_lock_unlock_cycle(self):
        table = LockTable()
        table.lock(5)
        assert table.is_locked(5)
        table.unlock(5)
        assert not table.is_locked(5)

    def test_lookup_statistics(self):
        table = LockTable()
        table.lock(5)
        table.is_locked(5)
        table.is_locked(6)
        assert table.lookups == 2 and table.hits == 1

    def test_capacity_enforced(self):
        table = LockTable(capacity_bytes=8)  # two 4-byte entries
        table.lock(1)
        table.lock(2)
        with pytest.raises(LockTableFullError):
            table.lock(3)

    def test_relocking_same_row_is_free(self):
        table = LockTable(capacity_bytes=4)
        table.lock(1)
        table.lock(1)  # no capacity error
        assert len(table) == 1

    def test_paper_default_capacity(self):
        table = LockTable()
        assert table.capacity_bytes == 56 * 1024
        assert table.capacity_entries == 14336

    def test_occupancy_and_snapshot(self):
        table = LockTable()
        table.lock_all([1, 2, 3])
        assert table.occupancy == pytest.approx(3 / table.capacity_entries)
        assert table.snapshot() == frozenset({1, 2, 3})


class TestPlanner:
    def test_adjacent_mode_locks_neighbors_only(self):
        device = make_device()
        plan = plan_protection(device.mapper, [10], mode=LockMode.ADJACENT)
        assert plan.locked_rows == frozenset({9, 11})
        assert plan.is_complete

    def test_contiguous_data_leaves_holes_in_adjacent_mode(self):
        device = make_device()
        plan = plan_protection(device.mapper, [10, 11, 12], mode=LockMode.ADJACENT)
        assert plan.locked_rows == frozenset({9, 13})
        assert not plan.is_complete
        assert plan.uncovered_victims  # interior rows hammerable via data rows

    def test_all_mode_closes_the_holes(self):
        device = make_device()
        plan = plan_protection(device.mapper, [10, 11, 12], mode=LockMode.ALL)
        assert plan.is_complete
        assert plan.locked_rows == frozenset({9, 10, 11, 12, 13})

    def test_radius_two_plan(self):
        device = make_device()
        plan = plan_protection(device.mapper, [10], radius=2)
        assert plan.locked_rows == frozenset({8, 9, 11, 12})


class TestSwapEngine:
    def test_successful_swap_exchanges_data(self):
        device = make_device()
        engine = SwapEngine(device)
        a, b, buf = 10, 60, 61
        device.poke_bytes(a, 0, [1])
        device.poke_bytes(b, 0, [2])
        result = engine.swap(a, b, buf)
        assert result.success and result.copies_failed == 0
        assert device.peek_row(a)[0] == 2
        assert device.peek_row(b)[0] == 1
        assert result.latency_ns == pytest.approx(3 * device.timing.rowclone_ns)

    def test_failed_swap_leaves_data_in_place(self):
        device = make_device()
        engine = SwapEngine(device, copy_error_rate=0.999999)
        device.poke_bytes(10, 0, [1])
        device.poke_bytes(60, 0, [2])
        result = engine.swap(10, 60, 61)
        assert not result.success
        assert device.peek_row(10)[0] == 1
        assert device.peek_row(60)[0] == 2

    def test_distinct_rows_required(self):
        device = make_device()
        engine = SwapEngine(device)
        with pytest.raises(ValueError):
            engine.swap(10, 10, 61)

    def test_same_subarray_required(self):
        device = make_device()
        engine = SwapEngine(device)
        other = device.mapper.row_index((0, 1, 0))
        with pytest.raises(ValueError):
            engine.swap(10, other, 61)

    def test_error_rate_validated(self):
        device = make_device()
        with pytest.raises(ValueError):
            SwapEngine(device, copy_error_rate=1.0)

    def test_failure_rate_statistics(self):
        device = make_device()
        engine = SwapEngine(device, copy_error_rate=0.5, rng=np.random.default_rng(1))
        for _ in range(200):
            engine.swap(10, 60, 61)
        assert 0.7 < engine.swaps_failed / engine.swaps_attempted < 0.95


class TestLockerPolicy:
    def make_system(self, **kwargs):
        device = make_device()
        locker = DRAMLocker(device, LockerConfig(**kwargs))
        controller = MemoryController(device, locker=locker)
        return device, locker, controller

    def test_unprivileged_access_to_locked_row_blocked(self):
        device, locker, controller = self.make_system()
        locker.lock_rows([9])
        result = controller.read(9)
        assert result.blocked
        assert device.stats.blocked_requests == 1
        assert device.rowhammer.activation_count(9) == 0

    def test_protect_blocks_hammering_of_weights(self):
        device, locker, controller = self.make_system()
        weight_row = 10
        device.vulnerability.register_template(weight_row, [0])
        locker.protect([weight_row])
        controller.hammer(9, count=device.timing.trh * 2)
        controller.hammer(11, count=device.timing.trh * 2)
        assert not device.peek_row(weight_row).any()
        assert device.stats.bit_flips == 0

    def test_privileged_access_swaps_and_serves(self):
        device, locker, controller = self.make_system()
        device.poke_bytes(9, 0, [0x5A])
        locker.lock_rows([9])
        result = controller.read(9, privileged=True)
        assert not result.blocked and result.swapped
        assert result.physical_row != 9
        assert device.peek_row(result.physical_row)[0] == 0x5A

    def test_subsequent_access_uses_remapped_row_without_new_swap(self):
        device, locker, controller = self.make_system(relock_interval=1000)
        locker.lock_rows([9])
        first = controller.read(9, privileged=True)
        second = controller.read(9, privileged=True)
        assert second.physical_row == first.physical_row
        assert not second.swapped

    def test_relock_restores_data_home(self):
        device, locker, controller = self.make_system(relock_interval=5)
        device.poke_bytes(9, 0, [0x5A])
        locker.lock_rows([9])
        controller.read(9, privileged=True)
        for _ in range(6):
            controller.read(20, privileged=True)
        assert locker.translate(9) == 9
        assert device.peek_row(9)[0] == 0x5A
        assert locker.restores == 1

    def test_failed_swap_opens_exposure_window(self):
        device, locker, controller = self.make_system(
            copy_error_rate=0.999999, relock_interval=5
        )
        locker.lock_rows([9])
        result = controller.read(9, privileged=True)
        assert not result.blocked and not result.swapped
        assert result.physical_row == 9
        assert 9 in locker.exposed
        # During the window, the attacker can hammer the exposed row.
        attack = controller.execute(MemRequest(Kind.ACT, 9))
        assert not attack.blocked
        # After the re-secure deadline, the row is enforced again.
        for _ in range(6):
            controller.read(20)
        attack = controller.execute(MemRequest(Kind.ACT, 9))
        assert attack.blocked

    def test_block_policy_without_fallback(self):
        device, locker, controller = self.make_system(
            copy_error_rate=0.999999, fallback_on_swap_failure=False
        )
        locker.lock_rows([9])
        result = controller.read(9, privileged=True)
        assert result.blocked

    def test_failed_restore_locks_new_location(self):
        device, locker, controller = self.make_system(relock_interval=3)
        locker.lock_rows([9])
        first = controller.read(9, privileged=True)
        new_home = first.physical_row
        # Force the restoring swap to fail.
        locker.swap_engine.copy_error_rate = 0.999999
        for _ in range(4):
            controller.read(20)
        assert locker.translate(9) == new_home
        assert new_home in locker.table
        assert locker.failed_restores == 1

    def test_lock_lookup_cost_charged_per_request(self):
        device, locker, controller = self.make_system()
        controller.read(20)
        assert device.stats.lock_lookups == 1
        assert device.stats.energy.lock_table > 0

    def test_overhead_report_matches_paper_row(self):
        device, locker, _ = self.make_system()
        report = locker.overhead(device.config)
        assert report.capacity == {"DRAM": 0, "SRAM": 56 * 1024}
        assert report.area_pct == 0.02
        assert report.capacity_text() == "0+56KB†"


class TestPermutationInvariant:
    def test_translate_remains_bijective_under_traffic(self):
        device = make_device()
        locker = DRAMLocker(device, LockerConfig(relock_interval=4, seed=3))
        controller = MemoryController(device, locker=locker)
        locker.lock_rows([9, 21, 33])
        rng = np.random.default_rng(0)
        rows = [9, 21, 33, 10, 20, 30, 40]
        for _ in range(200):
            row = int(rng.choice(rows))
            controller.read(row, privileged=bool(rng.integers(2)))
        seen = {}
        for row in range(device.config.total_rows):
            physical = locker.translate(row)
            assert physical not in seen, "two logical rows share a physical row"
            seen[physical] = row
