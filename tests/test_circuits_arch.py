"""Monte-Carlo swap-error model and the CACTI-like cost model."""

import numpy as np
import pytest

from repro.arch import (
    cam_estimate,
    dram_die_area_mm2,
    lock_table_estimate,
    sram_estimate,
)
from repro.circuits import (
    MonteCarlo,
    PAPER_ERROR_RATES,
    RowCloneCircuit,
    copy_error_rate,
)
from repro.dram import DRAMConfig


class TestRowCloneCircuit:
    def test_nominal_copy_never_fails(self):
        margins = RowCloneCircuit().nominal_margins()
        assert not margins.failed
        assert margins.sense_margin_v > 0
        assert margins.restore_margin > 0

    def test_bitline_swing_physical_range(self):
        swing = RowCloneCircuit().bitline_swing_v()
        assert 0.05 < swing < 0.3  # typical DRAM charge-sharing swing

    def test_negative_variation_rejected(self):
        with pytest.raises(ValueError):
            RowCloneCircuit().sample_failures(-1, 10, np.random.default_rng(0))


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def sweep(self):
        return {r.variation_pct: r for r in MonteCarlo().sweep((0, 10, 20))}

    def test_zero_variation_is_error_free(self, sweep):
        assert sweep[0].error_rate == 0.0

    def test_ten_percent_matches_paper_order(self, sweep):
        """Paper: 0.14% at +/-10%."""
        assert 0.0003 <= sweep[10].error_rate <= 0.004

    def test_twenty_percent_matches_paper_order(self, sweep):
        """Paper: 9.6% at +/-20%."""
        assert 0.07 <= sweep[20].error_rate <= 0.12

    def test_error_rate_monotone_in_variation(self):
        results = MonteCarlo().sweep((0, 5, 10, 15, 20))
        rates = [r.error_rate for r in results]
        assert rates == sorted(rates)

    def test_deterministic_in_seed(self):
        a = MonteCarlo(seed=5).run(20)
        b = MonteCarlo(seed=5).run(20)
        assert a.failures == b.failures

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            MonteCarlo(trials=0)


class TestErrorRateInterpolation:
    def test_exact_corners(self):
        for pct, rate in PAPER_ERROR_RATES.items():
            assert copy_error_rate(pct) == pytest.approx(rate)

    def test_interpolation_monotone(self):
        xs = np.linspace(0, 20, 41)
        ys = [copy_error_rate(x) for x in xs]
        assert all(b >= a for a, b in zip(ys, ys[1:]))

    def test_clamps_beyond_range(self):
        assert copy_error_rate(50) == PAPER_ERROR_RATES[20]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            copy_error_rate(-1)


class TestCacti:
    def test_lock_table_area_overhead_near_paper(self):
        """The 56KB lock-table lands at the paper's 0.02% die overhead."""
        _, pct = lock_table_estimate()
        assert 0.01 <= pct <= 0.04

    def test_lock_table_access_near_a_nanosecond(self):
        estimate, _ = lock_table_estimate()
        assert 0.5 <= estimate.access_ns <= 2.5

    def test_sram_area_scales_with_size(self):
        small = sram_estimate(8 * 1024)
        big = sram_estimate(64 * 1024)
        assert big.area_mm2 == pytest.approx(8 * small.area_mm2)

    def test_cam_costs_more_than_sram(self):
        assert cam_estimate(8 * 1024).area_mm2 > sram_estimate(8 * 1024).area_mm2

    def test_die_area_scales_with_capacity(self):
        assert dram_die_area_mm2(DRAMConfig.ddr4_32gb()) == pytest.approx(
            16 * 60.7
        )

    def test_size_validated(self):
        with pytest.raises(ValueError):
            sram_estimate(0)
