"""Layers: numerical gradient checks and shape/semantics tests."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.functional import (
    col2im,
    cross_entropy,
    cross_entropy_grad,
    im2col,
    softmax,
)

RNG = np.random.default_rng(7)


def numerical_grad(f, x, eps=1e-3):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = f()
        flat[i] = old - eps
        down = f()
        flat[i] = old
        gflat[i] = (up - down) / (2 * eps)
    return grad


def loss_of(layer, x, training=False):
    """Simple scalar head: sum of squares of the layer output."""
    y = layer.forward(x, training=training)
    return 0.5 * float((y ** 2).sum())


def analytic_input_grad(layer, x, training=False):
    y = layer.forward(x, training=training)
    return layer.backward(y.copy())


class TestFunctional:
    def test_im2col_col2im_adjoint(self):
        """<im2col(x), c> == <x, col2im(c)> (adjointness)."""
        x = RNG.normal(size=(2, 3, 6, 6)).astype(np.float32)
        cols = im2col(x, k=3, stride=1, pad=1)
        c = RNG.normal(size=cols.shape).astype(np.float32)
        lhs = float((cols * c).sum())
        rhs = float((x * col2im(c, x.shape, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-4)

    def test_softmax_rows_sum_to_one(self):
        logits = RNG.normal(size=(5, 7)).astype(np.float32)
        assert softmax(logits).sum(axis=1) == pytest.approx(np.ones(5))

    def test_cross_entropy_grad_matches_numeric(self):
        logits = RNG.normal(size=(4, 5)).astype(np.float64)
        labels = np.array([0, 2, 4, 1])
        analytic = cross_entropy_grad(logits.copy(), labels)
        numeric = numerical_grad(
            lambda: cross_entropy(logits, labels), logits, eps=1e-5
        )
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestGradients:
    @pytest.mark.parametrize(
        "layer,shape,training",
        [
            (Conv2d(2, 3, 3, rng=RNG), (2, 2, 5, 5), False),
            (Conv2d(2, 3, 3, stride=2, bias=True, rng=RNG), (2, 2, 6, 6), False),
            (Linear(6, 4, rng=RNG), (3, 6), False),
            (BatchNorm2d(3), (2, 3, 4, 4), True),
            (ReLU(), (2, 3, 4, 4), False),
            (MaxPool2d(2), (2, 2, 4, 4), False),
            (GlobalAvgPool(), (2, 3, 4, 4), False),
            (Flatten(), (2, 3, 2, 2), False),
        ],
        ids=["conv", "conv-s2-bias", "linear", "bn-train", "relu", "maxpool", "gap", "flatten"],
    )
    def test_input_gradient_matches_numeric(self, layer, shape, training):
        x = RNG.normal(size=shape).astype(np.float32) + 0.1
        analytic = analytic_input_grad(layer, x, training)
        numeric = numerical_grad(lambda: loss_of(layer, x, training), x)
        assert np.allclose(analytic, numeric, atol=2e-2), (
            np.abs(analytic - numeric).max()
        )

    def test_conv_weight_gradient_matches_numeric(self):
        layer = Conv2d(2, 3, 3, rng=RNG)
        x = RNG.normal(size=(2, 2, 5, 5)).astype(np.float32)
        layer.weight.zero_grad()
        analytic_input_grad(layer, x)
        analytic = layer.weight.grad.copy()
        numeric = numerical_grad(lambda: loss_of(layer, x), layer.weight.value)
        assert np.allclose(analytic, numeric, atol=2e-2)

    def test_linear_weight_and_bias_gradients(self):
        layer = Linear(5, 3, rng=RNG)
        x = RNG.normal(size=(4, 5)).astype(np.float32)
        layer.weight.zero_grad()
        layer.bias.zero_grad()
        analytic_input_grad(layer, x)
        numeric_w = numerical_grad(lambda: loss_of(layer, x), layer.weight.value)
        numeric_b = numerical_grad(lambda: loss_of(layer, x), layer.bias.value)
        assert np.allclose(layer.weight.grad, numeric_w, atol=2e-2)
        assert np.allclose(layer.bias.grad, numeric_b, atol=2e-2)

    def test_bn_eval_mode_gradient(self):
        layer = BatchNorm2d(3)
        layer.running_mean[:] = RNG.normal(size=3)
        layer.running_var[:] = 1.0 + RNG.random(3).astype(np.float32)
        x = RNG.normal(size=(2, 3, 4, 4)).astype(np.float32)
        analytic = analytic_input_grad(layer, x, training=False)
        numeric = numerical_grad(lambda: loss_of(layer, x, False), x)
        assert np.allclose(analytic, numeric, atol=2e-2)


class TestSemantics:
    def test_relu_zeroes_negatives(self):
        x = np.array([[-1.0, 2.0]], dtype=np.float32)
        assert list(ReLU().forward(x)[0]) == [0.0, 2.0]

    def test_maxpool_requires_divisible_input(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(np.zeros((1, 1, 5, 5), dtype=np.float32))

    def test_conv_output_shape(self):
        layer = Conv2d(3, 8, 3, stride=2, rng=RNG)
        y = layer.forward(np.zeros((2, 3, 8, 8), dtype=np.float32))
        assert y.shape == (2, 8, 4, 4)

    def test_bn_updates_running_stats_only_in_training(self):
        layer = BatchNorm2d(2)
        x = RNG.normal(size=(4, 2, 3, 3)).astype(np.float32) + 5.0
        before = layer.running_mean.copy()
        layer.forward(x, training=False)
        assert np.array_equal(layer.running_mean, before)
        layer.forward(x, training=True)
        assert not np.array_equal(layer.running_mean, before)

    def test_sequential_params_are_namespaced(self):
        net = Sequential(Linear(2, 2), Linear(2, 2))
        names = set(net.params())
        assert names == {"0.weight", "0.bias", "1.weight", "1.bias"}

    def test_weight_transform_ste(self):
        """With a sign transform, forward uses binarized weights but the
        gradient flows to the latent weights unchanged (STE)."""
        layer = Linear(3, 2, bias=False, rng=RNG)
        alpha = float(np.mean(np.abs(layer.weight.value)))
        layer.weight_transform = lambda w: np.where(w >= 0, alpha, -alpha).astype(
            np.float32
        )
        x = np.eye(3, dtype=np.float32)
        y = layer.forward(x)
        assert np.allclose(np.abs(y), alpha, atol=1e-6)
        layer.weight.zero_grad()
        layer.backward(np.ones((3, 2), dtype=np.float32))
        assert layer.weight.grad.any()
