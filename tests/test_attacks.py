"""Attack drivers: hammering, BFA, random flips, PTA -- with and
without DRAM-Locker protection (the integration layer of the repo)."""

import numpy as np
import pytest

from repro.attacks import (
    BFAConfig,
    HammerDriver,
    PagedWeights,
    PageTableAttack,
    ProgressiveBitSearch,
    RandomAttack,
)
from repro.controller import MemoryController
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.locker import DRAMLocker, LockMode, LockerConfig
from repro.nn import QuantizedModel, WeightStore, make_dataset, resnet20, train
from repro.nn.train import TrainConfig
from repro.vm import MMU, PageTable

TRH = 60


@pytest.fixture(scope="module")
def dataset():
    return make_dataset("t", 4, hw=8, train_per_class=24, test_per_class=12, seed=3)


@pytest.fixture(scope="module")
def trained_model(dataset):
    model = resnet20(num_classes=4, width=4, input_hw=8, seed=1)
    train(model, dataset, TrainConfig(epochs=8, batch_size=16, lr=0.1, seed=1))
    return model


@pytest.fixture()
def qmodel(trained_model):
    q = QuantizedModel(trained_model)
    snapshot = q.snapshot()
    yield q
    q.restore(snapshot)


def make_system(qmodel, protected, copy_error_rate=0.0):
    cfg = DRAMConfig.small()
    device = DRAMDevice(
        cfg, vulnerability=VulnerabilityMap(cfg, weak_cell_fraction=0.0), trh=TRH
    )
    locker = None
    if protected:
        locker = DRAMLocker(
            device,
            LockerConfig(copy_error_rate=copy_error_rate, relock_interval=2 * TRH + 10),
        )
    controller = MemoryController(device, locker=locker)
    store = WeightStore(device, qmodel, guard_rows=True)
    if locker is not None:
        plan = locker.protect(store.data_rows, mode=LockMode.ADJACENT)
        assert plan.is_complete
    return device, controller, store, HammerDriver(controller, patience=2.0), locker


class TestHammerDriver:
    def test_flips_unprotected_bit(self, qmodel):
        device, controller, store, driver, _ = make_system(qmodel, protected=False)
        name = next(iter(qmodel.tensors))
        row, row_bit = store.bit_location(name, 0, 7)
        outcome = driver.hammer_bit(row, row_bit)
        assert outcome.flipped
        assert outcome.activations_issued <= 2 * TRH
        assert outcome.activations_blocked == 0

    def test_blocked_by_locker(self, qmodel):
        device, controller, store, driver, _ = make_system(qmodel, protected=True)
        name = next(iter(qmodel.tensors))
        row, row_bit = store.bit_location(name, 0, 7)
        outcome = driver.hammer_bit(row, row_bit)
        assert not outcome.flipped
        assert outcome.activations_issued == 0
        assert outcome.activations_blocked > 0

    def test_flip_propagates_to_model(self, qmodel):
        device, controller, store, driver, _ = make_system(qmodel, protected=False)
        name = next(iter(qmodel.tensors))
        before = int(qmodel.tensors[name].q.reshape(-1)[0])
        row, row_bit = store.bit_location(name, 0, 7)
        driver.hammer_bit(row, row_bit)
        store.sync_model()
        assert int(qmodel.tensors[name].q.reshape(-1)[0]) != before


class TestBFA:
    def test_software_bfa_degrades_accuracy(self, qmodel, dataset):
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        attack = ProgressiveBitSearch(
            qmodel, dataset, BFAConfig(attack_batch=32, seed=0)
        )
        result = attack.run(8)
        assert result.accuracies[-1] < clean - 15.0
        assert result.executed_flips == 8

    def test_bfa_beats_random(self, qmodel, dataset):
        """Fig. 1(a): targeted flips hurt far more than random flips."""
        snapshot = qmodel.snapshot()
        bfa = ProgressiveBitSearch(
            qmodel, dataset, BFAConfig(attack_batch=32, seed=0)
        ).run(6)
        qmodel.restore(snapshot)
        rnd = RandomAttack(qmodel, dataset, seed=0).run(6)
        assert bfa.accuracies[-1] < rnd.accuracies[-1] - 5.0

    def test_bfa_never_revisits_a_bit(self, qmodel, dataset):
        attack = ProgressiveBitSearch(
            qmodel, dataset, BFAConfig(attack_batch=32, seed=0)
        )
        result = attack.run(8)
        flips = {(f.tensor, f.flat_index, f.bit) for f in result.flips}
        assert len(flips) == len(result.flips)

    def test_dram_bfa_executes_through_simulator(self, qmodel, dataset):
        device, controller, store, driver, _ = make_system(qmodel, protected=False)
        attack = ProgressiveBitSearch(
            qmodel,
            dataset,
            BFAConfig(attack_batch=32, seed=0),
            store=store,
            driver=driver,
        )
        result = attack.run(4)
        assert result.executed_flips == 4
        assert device.stats.bit_flips >= 4

    def test_locker_stops_dram_bfa(self, qmodel, dataset):
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        device, controller, store, driver, _ = make_system(qmodel, protected=True)
        attack = ProgressiveBitSearch(
            qmodel,
            dataset,
            BFAConfig(attack_batch=32, seed=0),
            store=store,
            driver=driver,
        )
        result = attack.run(4)
        assert result.executed_flips == 0
        assert result.accuracies[-1] == pytest.approx(clean)

    def test_exposure_window_lets_flips_through(self, qmodel, dataset):
        """With a guaranteed-failing swap, the tenant access opens the
        window and the attacker's flip lands (the 9.6% mechanism)."""
        device, controller, store, driver, locker = make_system(
            qmodel, protected=True, copy_error_rate=0.999999
        )
        rng = np.random.default_rng(0)

        def tenant(name, index, bit):
            row, _ = store.bit_location(name, index, bit)
            guard = int(rng.choice(device.mapper.neighbors(row)))
            controller.read(guard, privileged=True)

        attack = ProgressiveBitSearch(
            qmodel,
            dataset,
            BFAConfig(attack_batch=32, seed=0),
            store=store,
            driver=driver,
            before_execute=tenant,
        )
        result = attack.run(3)
        assert result.executed_flips >= 1

    def test_store_and_driver_must_pair(self, qmodel, dataset):
        with pytest.raises(ValueError):
            ProgressiveBitSearch(qmodel, dataset, store=None, driver=object())


class TestPTA:
    def make_paged(self, qmodel, protected):
        device, controller, store, driver, locker = make_system(qmodel, protected)
        mapper = device.mapper
        bank = device.config.banks - 1
        pt_rows = [mapper.row_index((bank, 0, i)) for i in range(0, 16, 2)]
        table = PageTable(device, pt_rows)
        mmu = MMU(controller, table)
        paged = PagedWeights(store, table, mmu)
        if locker is not None:
            locker.protect(table.table_rows(), mode=LockMode.ADJACENT)
        return device, paged, driver

    def test_translation_serves_correct_weights(self, qmodel, dataset):
        device, paged, _ = self.make_paged(qmodel, protected=False)
        before = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        paged.sync_via_translation()
        after = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        assert after == pytest.approx(before)

    def test_pta_redirects_and_degrades(self, qmodel, dataset):
        device, paged, driver = self.make_paged(qmodel, protected=False)
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        attack = PageTableAttack(qmodel, dataset, paged, driver, seed=0)
        result = attack.run(3)
        assert result.executed_redirects >= 1
        assert len(paged.redirected_pages()) >= 1
        assert result.accuracies[-1] < clean

    def test_locker_blocks_pta(self, qmodel, dataset):
        device, paged, driver = self.make_paged(qmodel, protected=True)
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        attack = PageTableAttack(qmodel, dataset, paged, driver, seed=0)
        result = attack.run(3)
        assert result.executed_redirects == 0
        assert paged.redirected_pages() == []
        assert result.accuracies[-1] == pytest.approx(clean)
