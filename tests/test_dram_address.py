"""Address mapping: bijectivity, adjacency, reserved rows."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram import AddressMapper, ChannelInterleaver, DRAMConfig, RowAddress


@pytest.fixture(scope="module")
def mapper():
    return AddressMapper(DRAMConfig.tiny())


class TestRowIndexRoundTrip:
    @given(st.integers(min_value=0, max_value=DRAMConfig.tiny().total_rows - 1))
    def test_index_to_address_and_back(self, index):
        mapper = AddressMapper(DRAMConfig.tiny())
        assert mapper.row_index(mapper.row_address(index)) == index

    @given(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=63),
    )
    def test_address_to_index_and_back(self, bank, subarray, row):
        mapper = AddressMapper(DRAMConfig.tiny())
        addr = RowAddress(bank, subarray, row)
        assert mapper.row_address(mapper.row_index(addr)) == addr

    def test_accepts_plain_tuples(self, mapper):
        assert mapper.row_index((0, 1, 2)) == mapper.row_index(RowAddress(0, 1, 2))

    def test_out_of_range_index_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.row_address(mapper.config.total_rows)
        with pytest.raises(ValueError):
            mapper.row_address(-1)

    def test_out_of_range_fields_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.row_index(RowAddress(99, 0, 0))
        with pytest.raises(ValueError):
            mapper.row_index(RowAddress(0, 99, 0))
        with pytest.raises(ValueError):
            mapper.row_index(RowAddress(0, 0, 9999))


class TestByteAddressing:
    @given(st.integers(min_value=0, max_value=DRAMConfig.tiny().capacity_bytes - 1))
    def test_physical_round_trip(self, physical):
        mapper = AddressMapper(DRAMConfig.tiny())
        assert mapper.physical(mapper.byte_address(physical)) == physical

    def test_column_extraction(self, mapper):
        cfg = mapper.config
        addr = mapper.byte_address(cfg.row_bytes + 7)
        assert addr.column == 7
        assert mapper.row_index(addr.row) == 1

    def test_out_of_range_physical_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.byte_address(mapper.config.capacity_bytes)


class TestAdjacency:
    def test_interior_row_has_two_neighbors(self, mapper):
        index = mapper.row_index(RowAddress(0, 0, 10))
        assert mapper.neighbors(index) == [
            mapper.row_index(RowAddress(0, 0, 9)),
            mapper.row_index(RowAddress(0, 0, 11)),
        ]

    def test_subarray_edges_have_one_neighbor(self, mapper):
        first = mapper.row_index(RowAddress(0, 1, 0))
        last = mapper.row_index(RowAddress(0, 1, 63))
        assert mapper.neighbors(first) == [first + 1]
        assert mapper.neighbors(last) == [last - 1]

    def test_adjacency_never_crosses_subarrays(self, mapper):
        cfg = mapper.config
        for subarray in range(cfg.subarrays_per_bank):
            for local in (0, cfg.rows_per_subarray - 1):
                index = mapper.row_index(RowAddress(1, subarray, local))
                for neighbor in mapper.neighbors(index, radius=2):
                    assert mapper.same_subarray(index, neighbor)

    def test_radius_two_ring(self, mapper):
        index = mapper.row_index(RowAddress(0, 0, 10))
        neighbors = mapper.neighbors(index, radius=2)
        assert len(neighbors) == 4
        assert index not in neighbors

    def test_radius_zero_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.neighbors(0, radius=0)


class TestAggressors:
    def test_aggressors_exclude_victims(self, mapper):
        victims = [mapper.row_index(RowAddress(0, 0, r)) for r in (10, 11)]
        aggressors = mapper.aggressors_of(victims)
        assert not aggressors.intersection(victims)
        expected = {
            mapper.row_index(RowAddress(0, 0, 9)),
            mapper.row_index(RowAddress(0, 0, 12)),
        }
        assert aggressors == expected

    def test_isolated_victim(self, mapper):
        victim = mapper.row_index(RowAddress(1, 1, 20))
        assert mapper.aggressors_of([victim]) == {victim - 1, victim + 1}


class TestReservedRows:
    def test_reserved_rows_are_at_subarray_top(self, mapper):
        cfg = mapper.config
        reserved = mapper.reserved_rows(0, 0)
        assert len(reserved) == cfg.reserved_rows_per_subarray
        locals_ = [mapper.row_address(r).row for r in reserved]
        assert locals_ == list(
            range(cfg.usable_rows_per_subarray, cfg.rows_per_subarray)
        )


class TestChannelInterleaver:
    @pytest.mark.parametrize("policy", ["row", "block"])
    @pytest.mark.parametrize("channels", [1, 2, 4])
    def test_round_trip(self, policy, channels):
        config = DRAMConfig.tiny().with_channels(channels)
        interleaver = ChannelInterleaver(config, policy=policy)
        assert interleaver.system_rows == channels * config.total_rows
        for system_row in range(interleaver.system_rows):
            channel, local = interleaver.locate(system_row)
            assert 0 <= channel < channels
            assert 0 <= local < config.total_rows
            assert interleaver.system_row(channel, local) == system_row

    def test_single_channel_is_identity(self):
        config = DRAMConfig.tiny()
        for policy in ChannelInterleaver.POLICIES:
            interleaver = ChannelInterleaver(config, policy=policy)
            assert [interleaver.locate(r) for r in range(8)] == [
                (0, r) for r in range(8)
            ]

    def test_row_policy_round_robins(self):
        config = DRAMConfig.tiny().with_channels(4)
        interleaver = ChannelInterleaver(config)
        assert [interleaver.channel_of(r) for r in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_block_policy_is_contiguous(self):
        config = DRAMConfig.tiny().with_channels(2)
        interleaver = ChannelInterleaver(config, policy="block")
        boundary = config.total_rows
        assert interleaver.channel_of(boundary - 1) == 0
        assert interleaver.channel_of(boundary) == 1

    def test_errors(self):
        config = DRAMConfig.tiny().with_channels(2)
        interleaver = ChannelInterleaver(config)
        with pytest.raises(ValueError):
            ChannelInterleaver(config, policy="hash")
        with pytest.raises(ValueError):
            interleaver.locate(interleaver.system_rows)
        with pytest.raises(ValueError):
            interleaver.system_row(2, 0)
        with pytest.raises(ValueError):
            interleaver.system_row(0, config.total_rows)


class TestChannelsConfig:
    def test_defaults_unchanged(self):
        config = DRAMConfig.small()
        assert config.channels == 1
        assert config.system_rows == config.total_rows
        assert config.system_capacity_bytes == config.capacity_bytes
        assert config.channel_config() is config

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMConfig(name="bad", channels=0)

    def test_channel_config_strips_channels(self):
        config = DRAMConfig.small().with_channels(4)
        per_channel = config.channel_config()
        assert per_channel.channels == 1
        assert per_channel.total_rows == config.total_rows
        assert config.system_rows == 4 * per_channel.total_rows
        assert config.with_channels(4) is config

    def test_describe_mentions_channels(self):
        single = DRAMConfig.small()
        multi = single.with_channels(2)
        assert "channels" not in single.describe()
        assert "2 channels" in multi.describe()
