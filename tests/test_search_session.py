"""The suffix-forward search engine: bit-identical outcome equivalence
against the full-forward reference for every bit-search family, plus
the prefix-activation-cache invalidation contract and the digest
memoization of probes/gradients."""

import numpy as np
import pytest

from repro.attacks import (
    BackdoorConfig,
    BFAConfig,
    HammerDriver,
    MultiRoundBFA,
    MultiRoundConfig,
    ProgressiveBitSearch,
    RowhammerBackdoor,
    SearchSession,
    SearchTerm,
    TBFAConfig,
    TBFAttack,
)
from repro.controller import MemoryController
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.locker import DRAMLocker, LockMode, LockerConfig
from repro.nn import (
    Model,
    PrefixActivationCache,
    QuantizedModel,
    WeightStore,
    make_dataset,
    resnet20,
    train,
)
from repro.nn.train import TrainConfig

TRH = 60


@pytest.fixture(scope="module")
def dataset():
    return make_dataset("t", 4, hw=8, train_per_class=24, test_per_class=12, seed=3)


@pytest.fixture(scope="module")
def trained_model(dataset):
    model = resnet20(num_classes=4, width=4, input_hw=8, seed=1)
    train(model, dataset, TrainConfig(epochs=8, batch_size=16, lr=0.1, seed=1))
    return model


@pytest.fixture()
def qmodel(trained_model):
    q = QuantizedModel(trained_model)
    snapshot = q.snapshot()
    yield q
    q.restore(snapshot)


def run_both_engines(qmodel, build, iterations):
    """Run one attack under each engine from the same snapshot."""
    snapshot = qmodel.snapshot()
    results = {}
    for engine in ("full", "suffix"):
        qmodel.restore(snapshot)
        results[engine] = build(engine).run(iterations)
    qmodel.restore(snapshot)
    return results["full"], results["suffix"]


# ----------------------------------------------------------------------
# Engine equivalence: same flip sequences, same recorded trajectories
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    def test_bfa(self, qmodel, dataset):
        full, suffix = run_both_engines(
            qmodel,
            lambda e: ProgressiveBitSearch(
                qmodel, dataset, BFAConfig(attack_batch=32, seed=0, engine=e)
            ),
            6,
        )
        assert [
            (f.tensor, f.flat_index, f.bit, f.loss_after, f.accuracy_after)
            for f in full.flips
        ] == [
            (f.tensor, f.flat_index, f.bit, f.loss_after, f.accuracy_after)
            for f in suffix.flips
        ]
        assert full.losses == suffix.losses
        assert full.accuracies == suffix.accuracies

    @pytest.mark.parametrize(
        "variant", ["n-to-1", "1-to-1", "1-to-1-stealthy"]
    )
    def test_tbfa_variants(self, qmodel, dataset, variant):
        full, suffix = run_both_engines(
            qmodel,
            lambda e: TBFAttack(
                qmodel,
                dataset,
                TBFAConfig(
                    variant=variant,
                    target_class=0,
                    source_class=1,
                    attack_batch=32,
                    seed=0,
                    engine=e,
                ),
            ),
            4,
        )
        assert [
            (f.tensor, f.flat_index, f.bit, f.objective_after)
            for f in full.flips
        ] == [
            (f.tensor, f.flat_index, f.bit, f.objective_after)
            for f in suffix.flips
        ]
        assert full.objectives == suffix.objectives
        assert full.asr == suffix.asr
        assert full.accuracies == suffix.accuracies

    def test_backdoor(self, qmodel, dataset):
        full, suffix = run_both_engines(
            qmodel,
            lambda e: RowhammerBackdoor(
                qmodel,
                dataset,
                BackdoorConfig(
                    target_class=0, attack_batch=32, seed=0, engine=e
                ),
            ),
            4,
        )
        assert [
            (f.tensor, f.flat_index, f.bit, f.objective_after, f.asr_after)
            for f in full.flips
        ] == [
            (f.tensor, f.flat_index, f.bit, f.objective_after, f.asr_after)
            for f in suffix.flips
        ]

    def test_multi_round(self, qmodel, dataset):
        full, suffix = run_both_engines(
            qmodel,
            lambda e: MultiRoundBFA(
                qmodel,
                dataset,
                MultiRoundConfig(rounds=2, attack_batch=32, seed=0, engine=e),
            ),
            6,
        )
        assert [
            (f.tensor, f.flat_index, f.bit, f.loss_after, f.accuracy_after)
            for f in full.flips
        ] == [
            (f.tensor, f.flat_index, f.bit, f.loss_after, f.accuracy_after)
            for f in suffix.flips
        ]
        assert full.rounds == suffix.rounds

    def test_bfa_with_repair_hook(self, qmodel, dataset):
        """The weight-reconstruction path: repair clamps the float
        weights between iterations, which the session must detect
        (digest change) and reconcile the way the legacy evaluator's
        load_into_model side effect did."""
        bounds = {
            path: 2.0 * float(np.std(layer.weight.value))
            for path, layer in qmodel.model.weight_layers().items()
        }

        def repair(model: Model) -> None:
            for path, layer in model.weight_layers().items():
                np.clip(
                    layer.weight.value,
                    -bounds[path],
                    bounds[path],
                    out=layer.weight.value,
                )

        full, suffix = run_both_engines(
            qmodel,
            lambda e: ProgressiveBitSearch(
                qmodel,
                dataset,
                BFAConfig(attack_batch=32, seed=0, engine=e),
                repair=repair,
            ),
            5,
        )
        assert [
            (f.tensor, f.flat_index, f.bit, f.loss_after, f.accuracy_after)
            for f in full.flips
        ] == [
            (f.tensor, f.flat_index, f.bit, f.loss_after, f.accuracy_after)
            for f in suffix.flips
        ]

    def test_dram_mode_with_exposure_window(self, qmodel, dataset):
        """Through the simulator, behind a locker whose swap failures
        let some flips through: a mix of blocked and landed campaigns
        must leave both engines on identical trajectories."""

        def build(engine):
            cfg = DRAMConfig.small()
            device = DRAMDevice(
                cfg,
                vulnerability=VulnerabilityMap(cfg, weak_cell_fraction=0.0),
                trh=TRH,
            )
            locker = DRAMLocker(
                device,
                LockerConfig(copy_error_rate=0.4, relock_interval=2 * TRH + 10,
                             seed=5),
            )
            controller = MemoryController(device, locker=locker)
            store = WeightStore(device, qmodel, guard_rows=True)
            locker.protect(store.data_rows, mode=LockMode.ADJACENT)
            driver = HammerDriver(controller, patience=2.0)
            rng = np.random.default_rng(0)

            def tenant(name, index, bit):
                row, _ = store.bit_location(name, index, bit)
                guard = int(rng.choice(device.mapper.neighbors(row)))
                controller.read(guard, privileged=True)

            return ProgressiveBitSearch(
                qmodel,
                dataset,
                BFAConfig(attack_batch=32, seed=0, engine=engine),
                store=store,
                driver=driver,
                before_execute=tenant,
            )

        full, suffix = run_both_engines(qmodel, build, 5)
        assert [
            (f.tensor, f.flat_index, f.bit, f.executed, f.loss_after,
             f.accuracy_after)
            for f in full.flips
        ] == [
            (f.tensor, f.flat_index, f.bit, f.executed, f.loss_after,
             f.accuracy_after)
            for f in suffix.flips
        ]

    def test_non_sequential_net_falls_back_to_full(self, dataset):
        """A model whose net is not a top-level Sequential cannot run
        suffix forwards; the session must degrade, not crash."""
        inner = resnet20(num_classes=4, width=4, input_hw=8, seed=2)

        class Wrapper(inner.net.__class__.__bases__[0]):  # Layer
            def __init__(self, net):
                self.net = net

            def children(self):
                return [("net", self.net)]

            def forward(self, x, training=False):
                return self.net.forward(x, training=training)

            def backward(self, dy):
                return self.net.backward(dy)

        wrapped = QuantizedModel(Model(Wrapper(inner.net), name="wrapped"))
        session = SearchSession(wrapped, engine="suffix")
        assert session.engine == "full"


# ----------------------------------------------------------------------
# Prefix-activation cache: laziness, bitwise suffixes, invalidation
# ----------------------------------------------------------------------
class TestPrefixActivationCache:
    def test_suffix_forward_matches_full_forward(self, trained_model, dataset):
        x = dataset.test_x[:8]
        reference = trained_model.forward(x)
        cache = PrefixActivationCache(trained_model.net, x)
        for k in range(cache.depth + 1):
            suffix = trained_model.net.forward_from(cache.input_of(k), k)
            assert np.array_equal(suffix, reference)

    def test_lazy_fill_and_exact_invalidation(self, trained_model, dataset):
        cache = PrefixActivationCache(trained_model.net, dataset.test_x[:4])
        assert cache.cached_indices() == [0]
        cache.input_of(3)
        assert cache.cached_indices() == [0, 1, 2, 3]
        cache.logits()
        assert cache.cached_indices() == list(range(cache.depth + 1))
        # A mutation in layer 5 keeps the *inputs* of layers <= 5.
        cache.invalidate_from(5)
        assert cache.cached_indices() == [0, 1, 2, 3, 4, 5]
        cache.invalidate_all()
        assert cache.cached_indices() == [0]

    def test_out_of_range_rejected(self, trained_model, dataset):
        cache = PrefixActivationCache(trained_model.net, dataset.test_x[:4])
        with pytest.raises(IndexError):
            cache.input_of(cache.depth + 1)
        with pytest.raises(IndexError):
            trained_model.net.forward_from(dataset.test_x[:4], -1)

    def test_requires_sequential(self, dataset):
        with pytest.raises(TypeError):
            PrefixActivationCache(object(), dataset.test_x[:4])


class TestSessionInvalidation:
    def test_committed_flip_invalidates_exactly_downstream(self, qmodel, dataset):
        session = SearchSession(qmodel, engine="suffix")
        terms = (SearchTerm(dataset.test_x[:8], dataset.test_y[:8]),)
        session.objective(terms)  # populates the cache fully
        cache = session._cache_for(terms[0].x)
        assert cache.cached_indices() == list(range(cache.depth + 1))
        # Commit a flip in some mid-network tensor.
        name = [n for n in qmodel.tensors if n.startswith("5.")][0]
        top = int(name.split(".", 1)[0])
        qmodel.flip_bit(name, 0, 7)
        session.refresh()
        assert cache.cached_indices() == list(range(top + 1))
        # The invalidated suffix recomputes to the full-forward truth.
        assert np.array_equal(
            cache.logits(), qmodel.model.forward(terms[0].x)
        )

    def test_unchanged_state_keeps_cache(self, qmodel, dataset):
        session = SearchSession(qmodel, engine="suffix")
        terms = (SearchTerm(dataset.test_x[:8], dataset.test_y[:8]),)
        session.objective(terms)
        cache = session._cache_for(terms[0].x)
        before = cache.cached_indices()
        session.refresh()
        assert cache.cached_indices() == before


# ----------------------------------------------------------------------
# Digest memoization: blocked iterations never re-run predict
# ----------------------------------------------------------------------
class TestProbeMemoization:
    def test_probes_memoize_until_weights_change(self, qmodel, dataset, monkeypatch):
        session = SearchSession(qmodel, engine="suffix")
        calls = {"predict": 0}
        real_predict = type(qmodel.model).predict

        def counting_predict(self, x, batch=256):
            calls["predict"] += 1
            return real_predict(self, x, batch)

        monkeypatch.setattr(type(qmodel.model), "predict", counting_predict)
        first = session.accuracy(dataset.test_x, dataset.test_y)
        again = session.accuracy(dataset.test_x, dataset.test_y)
        assert first == again
        assert calls["predict"] == 1
        assert session.stats.probe_hits == 1
        # A committed flip changes the digest: the probe recomputes.
        name = next(iter(qmodel.tensors))
        qmodel.flip_bit(name, 0, 7)
        session.accuracy(dataset.test_x, dataset.test_y)
        assert calls["predict"] == 2

    def test_gradients_memoize_on_digest(self, qmodel, dataset):
        session = SearchSession(qmodel, engine="suffix")
        terms = (SearchTerm(dataset.test_x[:8], dataset.test_y[:8]),)
        first = session.objective_grads(terms)
        second = session.objective_grads(terms)
        assert session.stats.grad_hits == 1
        assert all(np.array_equal(first[n], second[n]) for n in first)
        name = next(iter(qmodel.tensors))
        qmodel.flip_bit(name, 0, 7)
        session.objective_grads(terms)
        assert session.stats.grad_misses == 2

    def test_full_engine_never_memoizes(self, qmodel, dataset):
        session = SearchSession(qmodel, engine="full")
        session.accuracy(dataset.test_x, dataset.test_y)
        session.accuracy(dataset.test_x, dataset.test_y)
        assert session.stats.probe_hits == 0
        assert session.stats.probe_misses == 0

    def test_unknown_engine_rejected(self, qmodel):
        with pytest.raises(ValueError):
            SearchSession(qmodel, engine="warp")


# ----------------------------------------------------------------------
# Same-layer candidate batching
# ----------------------------------------------------------------------
class TestCandidateBatching:
    def test_batched_suffix_verified_per_shape_class(self, qmodel, dataset):
        session = SearchSession(qmodel, engine="suffix")
        terms = (SearchTerm(dataset.test_x[:8], dataset.test_y[:8]),)
        name = next(iter(qmodel.tensors))
        candidates = [(name, i, 7) for i in range(3)]
        first = session.evaluate_flips(terms, candidates)
        assert session._batch_ok  # the shape class was adjudicated
        second = session.evaluate_flips(terms, candidates)
        assert first == second
        # Reference check: flip -> full forward -> revert, by hand.
        by_hand = []
        for cname, index, bit in candidates:
            qmodel.flip_bit(cname, index, bit)
            by_hand.append(qmodel.model.loss(terms[0].x, terms[0].labels))
            qmodel.flip_bit(cname, index, bit)
        qmodel.load_into_model()
        assert first == by_hand
