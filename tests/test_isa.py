"""Micro-ISA: encoding, assembler, executor, canonical programs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram import DRAMConfig, DRAMDevice
from repro.isa import (
    AssemblyError,
    ExecutionError,
    Instruction,
    MicroExecutor,
    MicroRegisterFile,
    NUM_MICRO_REGS,
    Opcode,
    assemble,
    bnez,
    copy,
    decode,
    disassemble,
    done,
    encode,
    repeat_copy_program,
    swap_program,
)
from repro.isa.programs import REG_BUFFER, REG_FREE, REG_LOCKED


class TestEncoding:
    @given(
        st.integers(min_value=0, max_value=NUM_MICRO_REGS - 1),
        st.integers(min_value=0, max_value=NUM_MICRO_REGS - 1),
    )
    def test_copy_round_trip(self, dst, src):
        assert decode(encode(copy(dst, src))) == copy(dst, src)

    @given(
        st.integers(min_value=0, max_value=NUM_MICRO_REGS - 1),
        st.integers(min_value=-64, max_value=63),
    )
    def test_bnez_round_trip(self, reg, offset):
        assert decode(encode(bnez(reg, offset))) == bnez(reg, offset)

    def test_done_round_trip(self):
        assert decode(encode(done())).opcode is Opcode.DONE

    def test_words_are_16_bit(self):
        for instruction in (copy(127, 127), bnez(127, -64), done()):
            word = encode(instruction)
            assert 0 <= word <= 0xFFFF

    def test_opcode_assignment_matches_figure(self):
        """Fig. 5: OP=01 row copy, OP=10 bnez, OP=11 done."""
        assert encode(copy(0, 0)) >> 14 == 0b01
        assert encode(bnez(0, 0)) >> 14 == 0b10
        assert encode(done()) >> 14 == 0b11

    def test_register_bounds(self):
        with pytest.raises(ValueError):
            copy(NUM_MICRO_REGS, 0)
        with pytest.raises(ValueError):
            bnez(0, 64)

    def test_decode_rejects_wide_words(self):
        with pytest.raises(ValueError):
            decode(0x10000)


class TestAssembler:
    def test_assemble_disassemble_round_trip(self):
        source = "copy r1, r2\nbnez r4, -1\ndone"
        words = assemble(source)
        assert disassemble(words) == source

    def test_comments_and_blank_lines(self):
        words = assemble("; header\n\ncopy r1, r2 ; trailing\n  done  ")
        assert len(words) == 2

    def test_case_insensitive(self):
        assert assemble("COPY R1, R2") == assemble("copy r1, r2")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("done\nfrobnicate r1")

    def test_register_range_checked(self):
        with pytest.raises(AssemblyError):
            assemble("copy r200, r0")


class TestExecutor:
    def test_copy_dispatches_rows_from_registers(self):
        log = []
        executor = MicroExecutor(lambda s, d: log.append((s, d)))
        executor.registers.load({1: 17, 2: 23})
        result = executor.run([encode(copy(1, 2)), encode(done())])
        assert log == [(23, 17)]
        assert result.copies == 1 and result.halted

    def test_bnez_loop_repeats(self):
        log = []
        executor = MicroExecutor(lambda s, d: log.append((s, d)))
        executor.registers.load({1: 5, 2: 6, 4: 4})
        result = executor.run(repeat_copy_program(1, 2, count_reg=4))
        assert len(log) == 4
        assert result.halted

    def test_missing_done_falls_off_end(self):
        executor = MicroExecutor(lambda s, d: None)
        result = executor.run([encode(copy(0, 0))])
        assert not result.halted

    def test_runaway_program_raises(self):
        executor = MicroExecutor(lambda s, d: None, max_steps=100)
        executor.registers.load({4: 0})  # decrements to -1, never zero
        with pytest.raises(ExecutionError):
            executor.run([encode(bnez(4, 0))])

    def test_branch_before_start_raises(self):
        executor = MicroExecutor(lambda s, d: None)
        executor.registers.load({4: 10})
        with pytest.raises(ExecutionError):
            executor.run([encode(bnez(4, -5))])

    def test_register_file_bounds(self):
        regs = MicroRegisterFile()
        with pytest.raises(IndexError):
            regs[NUM_MICRO_REGS]


class TestSwapProgram:
    def test_swap_exchanges_row_data_on_device(self):
        device = DRAMDevice(DRAMConfig.tiny(), trh=1000)
        mapper = device.mapper
        locked = mapper.row_index((0, 0, 10))
        free = mapper.row_index((0, 0, 60))
        buffer_row = mapper.row_index((0, 0, 61))
        device.poke_bytes(locked, 0, [0xAA])
        device.poke_bytes(free, 0, [0xBB])

        executor = MicroExecutor(device.rowclone)
        executor.registers.load(
            {REG_LOCKED: locked, REG_FREE: free, REG_BUFFER: buffer_row}
        )
        result = executor.run(swap_program())

        assert result.copies == 3 and result.halted
        assert device.peek_row(locked)[0] == 0xBB
        assert device.peek_row(free)[0] == 0xAA

    def test_swap_program_is_three_copies_and_done(self):
        program = swap_program()
        decoded = [decode(word) for word in program]
        assert [i.opcode for i in decoded] == [
            Opcode.COPY,
            Opcode.COPY,
            Opcode.COPY,
            Opcode.DONE,
        ]

    def test_instruction_str_forms(self):
        assert str(copy(1, 2)) == "copy r1, r2"
        assert str(bnez(3, -2)) == "bnez r3, -2"
        assert str(done()) == "done"
        assert str(Instruction(Opcode.NOP)) == "nop"
