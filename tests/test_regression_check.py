"""The benchmark-regression comparison behind the nightly CI gate."""

import json

from repro.eval.regression import (
    compare_artifacts,
    load_artifact,
    protected_accuracies,
)


def artifact(total_s=10.0, results=None):
    return {
        "schema": "dram-locker-bench/1",
        "results": results or {},
        "timing": {"total_s": total_s},
    }


LOCKED_ATTACK = {"protected": True, "final_accuracy": 90.0}
OPEN_ATTACK = {"protected": False, "final_accuracy": 12.0}
FIG8 = {"stats": {"with DRAM-Locker": {"final_accuracy": 88.0},
                  "without DRAM-Locker": {"final_accuracy": 11.0}}}


class TestProtectedAccuracies:
    def test_extracts_attack_and_curve_payloads(self):
        doc = artifact(results={
            "a-locked": LOCKED_ATTACK,
            "a-open": OPEN_ATTACK,
            "fig8": FIG8,
            "cheap": {"rows": [1, 2]},
        })
        assert protected_accuracies(doc) == {"a-locked": 90.0, "fig8": 88.0}

    def test_skips_errored_scenarios(self):
        doc = artifact(results={"bad": {"error": "Traceback ..."}})
        assert protected_accuracies(doc) == {}


class TestCompare:
    def test_clean_comparison_passes(self):
        base = artifact(10.0, {"a-locked": LOCKED_ATTACK})
        cur = artifact(10.5, {"a-locked": dict(LOCKED_ATTACK)})
        report = compare_artifacts(cur, base)
        assert report.ok
        assert len(report.checks) == 2  # runtime + one accuracy

    def test_runtime_regression_fails(self):
        report = compare_artifacts(artifact(12.0), artifact(10.0))
        assert not report.ok
        assert "runtime" in report.violations[0]

    def test_runtime_within_tolerance_passes(self):
        assert compare_artifacts(artifact(10.9), artifact(10.0)).ok
        assert not compare_artifacts(
            artifact(10.9), artifact(10.0), runtime_tolerance=0.05
        ).ok

    def test_protected_accuracy_drop_fails(self):
        base = artifact(10.0, {"a-locked": {"protected": True,
                                            "final_accuracy": 90.0}})
        cur = artifact(10.0, {"a-locked": {"protected": True,
                                           "final_accuracy": 70.0}})
        report = compare_artifacts(cur, base)
        assert not report.ok
        assert "a-locked" in report.violations[0]

    def test_unprotected_accuracy_is_not_gated(self):
        """The attack is SUPPOSED to wreck the open victim; only the
        protected accuracy is a regression signal."""
        base = artifact(10.0, {"a-open": {"protected": False,
                                          "final_accuracy": 50.0}})
        cur = artifact(10.0, {"a-open": {"protected": False,
                                         "final_accuracy": 5.0}})
        assert compare_artifacts(cur, base).ok

    def test_missing_scenario_fails(self):
        base = artifact(10.0, {"a-locked": LOCKED_ATTACK})
        report = compare_artifacts(artifact(10.0), base)
        assert not report.ok
        assert "missing" in report.violations[0]

    def test_errored_current_scenario_fails(self):
        cur = artifact(10.0, {"x": {"error": "ValueError: nope"}})
        report = compare_artifacts(cur, artifact(10.0))
        assert not report.ok
        assert "failed" in report.violations[0]

    def test_summary_mentions_everything(self):
        base = artifact(10.0, {"a-locked": LOCKED_ATTACK})
        cur = artifact(20.0, {"a-locked": {"protected": True,
                                           "final_accuracy": 10.0}})
        summary = compare_artifacts(cur, base).summary()
        assert "REGRESSION" in summary and "runtime" in summary


class TestLoadArtifact:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(artifact(3.0)))
        assert load_artifact(str(path))["timing"]["total_s"] == 3.0


# ----------------------------------------------------------------------
# The attack-search microbenchmark gate
# ----------------------------------------------------------------------
def search_artifact(families=None, pool_identical=True):
    from repro.eval.regression import ATTACK_SEARCH_SCHEMA

    return {
        "schema": ATTACK_SEARCH_SCHEMA,
        "families": families or {},
        "pool": {"results_identical": pool_identical},
        "timing": {"total_s": 60.0},
    }


CELL = {"full_s": 6.0, "suffix_s": 1.5, "speedup": 4.0,
        "results_identical": True}


class TestCompareAttackSearch:
    def test_matching_artifacts_pass(self):
        from repro.eval.regression import compare_attack_search

        doc = search_artifact({"tbfa-locked": dict(CELL)})
        report = compare_attack_search(doc, doc)
        assert report.ok
        assert "tbfa-locked" in report.summary()

    def test_divergent_engine_fails(self):
        from repro.eval.regression import compare_attack_search

        bad = dict(CELL, results_identical=False)
        report = compare_attack_search(
            search_artifact({"bfa-locked": bad}),
            search_artifact({"bfa-locked": dict(CELL)}),
        )
        assert not report.ok
        assert "diverged" in report.violations[0]

    def test_speedup_ratio_regression_fails(self):
        from repro.eval.regression import compare_attack_search

        slow = dict(CELL, speedup=2.0)
        report = compare_attack_search(
            search_artifact({"bfa-locked": slow}),
            search_artifact({"bfa-locked": dict(CELL)}),
            speedup_tolerance=0.25,
        )
        assert not report.ok
        assert "floor 3.00x" in report.violations[0]

    def test_speedup_within_tolerance_passes(self):
        from repro.eval.regression import compare_attack_search

        slightly_slow = dict(CELL, speedup=3.2)
        report = compare_attack_search(
            search_artifact({"bfa-locked": slightly_slow}),
            search_artifact({"bfa-locked": dict(CELL)}),
            speedup_tolerance=0.25,
        )
        assert report.ok

    def test_missing_family_fails(self):
        from repro.eval.regression import compare_attack_search

        report = compare_attack_search(
            search_artifact({}),
            search_artifact({"bfa-locked": dict(CELL)}),
        )
        assert not report.ok
        assert "missing" in report.violations[0]

    def test_pool_divergence_fails(self):
        from repro.eval.regression import compare_attack_search

        report = compare_attack_search(
            search_artifact({}, pool_identical=False), search_artifact({})
        )
        assert not report.ok

    def test_cli_dispatches_on_schema(self, tmp_path, capsys):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            from check_regression import main as check_main
        finally:
            sys.path.pop(0)
        current = tmp_path / "BENCH_attack_search.json"
        baseline = tmp_path / "BENCH_attack_search_baseline.json"
        doc = search_artifact({"tbfa-locked": dict(CELL)})
        current.write_text(json.dumps(doc))
        baseline.write_text(json.dumps(doc))
        assert check_main([str(current), str(baseline)]) == 0
        assert "speedup" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The defended-hammer microbenchmark gate
# ----------------------------------------------------------------------
def hammer_artifact(defenses=None):
    from repro.eval.regression import DEFENDED_HAMMER_SCHEMA

    return {
        "schema": DEFENDED_HAMMER_SCHEMA,
        "trh": 3000,
        "defenses": defenses or {},
        "timing": {"total_s": 10.0},
    }


HAMMER_CELL = {"scalar_s": 0.18, "bulk_s": 0.01, "speedup": 18.0,
               "results_identical": True}


class TestCompareDefendedHammer:
    def test_matching_artifacts_pass(self):
        from repro.eval.regression import compare_defended_hammer

        doc = hammer_artifact({"trr": dict(HAMMER_CELL)})
        report = compare_defended_hammer(doc, doc)
        assert report.ok
        assert "trr" in report.summary()

    def test_divergent_engine_fails(self):
        from repro.eval.regression import compare_defended_hammer

        bad = dict(HAMMER_CELL, results_identical=False)
        report = compare_defended_hammer(
            hammer_artifact({"para": bad}),
            hammer_artifact({"para": dict(HAMMER_CELL)}),
        )
        assert not report.ok
        assert "diverged" in report.violations[0]

    def test_divergent_events_engine_fails(self):
        from repro.eval.regression import compare_defended_hammer

        bad = dict(HAMMER_CELL, events_identical=False)
        report = compare_defended_hammer(
            hammer_artifact({"para": bad}),
            hammer_artifact({"para": dict(HAMMER_CELL)}),
        )
        assert not report.ok
        assert any("events engine" in v for v in report.violations)
        good = dict(HAMMER_CELL, events_identical=True)
        assert compare_defended_hammer(
            hammer_artifact({"para": good}),
            hammer_artifact({"para": dict(HAMMER_CELL)}),
        ).ok

    def test_speedup_ratio_regression_fails(self):
        from repro.eval.regression import compare_defended_hammer

        slow = dict(HAMMER_CELL, speedup=4.0)
        report = compare_defended_hammer(
            hammer_artifact({"trr": slow}),
            hammer_artifact({"trr": dict(HAMMER_CELL)}),
            speedup_tolerance=0.25,
        )
        assert not report.ok
        assert "floor 13.50x" in report.violations[0]

    def test_missing_defense_fails(self):
        from repro.eval.regression import compare_defended_hammer

        report = compare_defended_hammer(
            hammer_artifact({}),
            hammer_artifact({"hydra": dict(HAMMER_CELL)}),
        )
        assert not report.ok
        assert "missing" in report.violations[0]

    def test_cli_dispatches_on_schema(self, tmp_path, capsys):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            from check_regression import main as check_main
        finally:
            sys.path.pop(0)
        current = tmp_path / "BENCH_defended_hammer.json"
        baseline = tmp_path / "BENCH_defended_hammer_baseline.json"
        doc = hammer_artifact({"graphene": dict(HAMMER_CELL)})
        current.write_text(json.dumps(doc))
        baseline.write_text(json.dumps(doc))
        assert check_main([str(current), str(baseline)]) == 0
        assert "graphene" in capsys.readouterr().out


def runtable_artifact(**overrides):
    from repro.eval.regression import RUNTABLE_BENCH_SCHEMA

    document = {
        "schema": RUNTABLE_BENCH_SCHEMA,
        "checkpoint": {
            "cells": 8,
            "results_identical": True,
            "overhead_ratio": 1.2,
        },
        "recovery": {
            "journal_lines_at_kill": 2,
            "resumed_cells": 2,
            "resume_identical": True,
        },
        "chaos": {
            "cells": 4,
            "quarantined": 1,
            "errors": 1,
            "recovered": 1,
            "channel_fault": {
                "conserved": True,
                "offered_ops": 53,
                "served_ops": 45,
                "shed_ops": 8,
                "victim_flip_events": 0,
            },
        },
    }
    for key, value in overrides.items():
        document[key] = {**document[key], **value}
    return document


class TestCompareRuntable:
    def test_identical_passes(self):
        from repro.eval.regression import compare_runtable

        report = compare_runtable(runtable_artifact(), runtable_artifact())
        assert report.ok and len(report.checks) >= 6

    def test_checkpoint_divergence_fails(self):
        from repro.eval.regression import compare_runtable

        report = compare_runtable(
            runtable_artifact(checkpoint={"results_identical": False}),
            runtable_artifact(),
        )
        assert not report.ok
        assert "diverged from plain run_matrix" in report.violations[0]

    def test_resume_divergence_fails(self):
        from repro.eval.regression import compare_runtable

        report = compare_runtable(
            runtable_artifact(recovery={"resume_identical": False}),
            runtable_artifact(),
        )
        assert not report.ok

    def test_unexercised_recovery_fails(self):
        from repro.eval.regression import compare_runtable

        report = compare_runtable(
            runtable_artifact(recovery={"journal_lines_at_kill": 0}),
            runtable_artifact(),
        )
        assert not report.ok
        assert "resume path not exercised" in report.violations[0]

    def test_quarantine_count_is_pinned(self):
        from repro.eval.regression import compare_runtable

        report = compare_runtable(
            runtable_artifact(chaos={"quarantined": 2}),
            runtable_artifact(),
        )
        assert not report.ok

    def test_conservation_break_fails(self):
        from repro.eval.regression import compare_runtable

        broken = runtable_artifact()
        broken["chaos"]["channel_fault"] = dict(
            broken["chaos"]["channel_fault"], conserved=False
        )
        report = compare_runtable(broken, runtable_artifact())
        assert not report.ok

    def test_victim_flips_fail(self):
        from repro.eval.regression import compare_runtable

        flipped = runtable_artifact()
        flipped["chaos"]["channel_fault"] = dict(
            flipped["chaos"]["channel_fault"], victim_flip_events=3
        )
        assert not compare_runtable(flipped, runtable_artifact()).ok

    def test_overhead_ratio_tolerance(self):
        from repro.eval.regression import compare_runtable

        bloated = runtable_artifact(checkpoint={"overhead_ratio": 2.0})
        assert not compare_runtable(
            bloated, runtable_artifact(), overhead_tolerance=0.25
        ).ok
        assert compare_runtable(
            bloated, runtable_artifact(), overhead_tolerance=1.0
        ).ok

    def test_cli_dispatches_on_runtable_schema(self, tmp_path, capsys):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            from check_regression import main as check_main
        finally:
            sys.path.pop(0)
        current = tmp_path / "BENCH_runtable.json"
        baseline = tmp_path / "BENCH_runtable_baseline.json"
        doc = runtable_artifact()
        current.write_text(json.dumps(doc))
        baseline.write_text(json.dumps(doc))
        assert check_main([str(current), str(baseline)]) == 0
        assert "SIGKILL" in capsys.readouterr().out
