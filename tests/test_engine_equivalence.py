"""The scalar ⊂ bulk ⊂ events contract, end to end.

``docs/ARCHITECTURE.md`` documents the contract; this suite enforces
it across the grid the events engine must survive: every registered
defense, locker unlock-SWAP windows (including swap-failure RNG
draws), refresh-tick edge alignment, and multi-channel serving cells.
"Identical" means bit-identical -- ``RequestResult`` fields, the float
accumulators in ``MemoryStats``, hammer counters, locker and defense
bookkeeping, and whole serving payloads.
"""

import numpy as np
import pytest

from repro.controller import Kind, MemRequest, MemoryController, RequestRun
from repro.controller.controller import ENGINES
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.eval.harness import DEFENDED_HAMMER_DEFENSES
from repro.locker import DRAMLocker, LockerConfig
from repro.serving import ServingConfig, run_serving

DEFENSE_NAMES = [
    name
    for name, builder in DEFENDED_HAMMER_DEFENSES.items()
    if builder is not None
]

FAST_ENGINES = [engine for engine in ENGINES if engine != "scalar"]


# ----------------------------------------------------------------------
# Controller-level grid: defense x locker x engines
# ----------------------------------------------------------------------
def _build(engine, *, defense_name=None, protected=False, trh=100,
           relock_interval=150):
    config = DRAMConfig.tiny()
    vulnerability = VulnerabilityMap(config, seed=3, weak_cell_fraction=1e-4)
    device = DRAMDevice(config, vulnerability=vulnerability, trh=trh)
    locker = None
    if protected:
        locker = DRAMLocker(
            device,
            LockerConfig(
                copy_error_rate=0.05,
                relock_interval=relock_interval,
                seed=7,
            ),
        )
        locker.lock_rows([9, 11, 21])
    defense = (
        DEFENDED_HAMMER_DEFENSES[defense_name]() if defense_name else None
    )
    controller = MemoryController(
        device, defense=defense, locker=locker, engine=engine
    )
    device.vulnerability.register_template(10, [3])
    return device, controller, locker, defense


def _adversarial_stream():
    """Unlock-SWAP openers (privileged reads of locked rows), hammering
    inside and outside the exposure windows, relock deadlines crossed
    mid-run, and long undefended bursts the events engine fuses."""
    requests = []
    for _ in range(3):
        requests.append(MemRequest(Kind.READ, 21, privileged=True))
        requests += [MemRequest(Kind.ACT, 21) for _ in range(60)]
        for aggressor in (9, 11):
            requests += [MemRequest(Kind.ACT, aggressor) for _ in range(130)]
        requests.append(MemRequest(Kind.WRITE, 33, size=256, privileged=True))
        requests += [MemRequest(Kind.ACT, 50) for _ in range(400)]
    return requests


def _device_state(device):
    return (
        device.stats.as_dict(),
        device.now_ns,
        device.rowhammer.counters,
        device.refresh.cursor,
        device.refresh.next_ref_ns,
        [device.peek_row(row).tobytes() for row in (9, 10, 11, 21, 50)],
    )


def _locker_state(locker):
    if locker is None:
        return None
    return (
        locker.table.lookups,
        locker.table.hits,
        locker.rw_instructions,
        locker.blocked_requests,
        locker.exposed,
        locker.swap_engine.rng.bit_generator.state,
    )


def _result_fields(results):
    return [
        (r.status, r.latency_ns, r.defense_ns, r.row_hit, r.swapped,
         tuple(r.flips))
        for r in results
    ]


def _run(engine, **kwargs):
    requests = _adversarial_stream()
    device, controller, locker, defense = _build(engine, **kwargs)
    if engine == "scalar":
        results = [controller.execute(request) for request in requests]
    else:
        results = controller.execute_batch(requests)
    defense_ns = defense.mitigation_ns_total if defense else None
    return (
        _result_fields(results),
        _device_state(device),
        _locker_state(locker),
        defense_ns,
    )


@pytest.mark.parametrize("name", DEFENSE_NAMES)
def test_all_engines_agree_per_defense(name):
    reference = _run("scalar", defense_name=name)
    for engine in FAST_ENGINES:
        assert _run(engine, defense_name=name) == reference, engine


@pytest.mark.parametrize("relock_interval", [90, 150, 1000])
def test_all_engines_agree_across_unlock_swap_windows(relock_interval):
    """Exposure windows opened by privileged reads, restore deadlines
    crossed mid-hammer-run, and the swap-failure RNG stream (drawn at
    execution) must line up across all three engines."""
    reference = _run(
        "scalar", protected=True, relock_interval=relock_interval
    )
    assert reference[2] is not None and reference[2][0] > 0
    for engine in FAST_ENGINES:
        state = _run(engine, protected=True, relock_interval=relock_interval)
        assert state == reference, engine


@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_refresh_tick_edge_alignment(engine):
    """ACT-run lengths that end one step before, exactly on, and one
    step after a refresh tick (and spanning several ticks) -- the
    boundary cases the fused epoch's searchsorted discipline must get
    exactly right."""
    probe_device, probe_controller, _, _ = _build("scalar", trh=10**6)
    step_ns = probe_device.timing.trc
    quiet = probe_device.refresh.quiet_steps(probe_device.now_ns, step_ns)
    for count in (quiet - 1, quiet, quiet + 1, quiet + 2, 4 * quiet + 3):
        device_a, controller_a, _, _ = _build("scalar", trh=10**6)
        run = RequestRun(MemRequest(Kind.ACT, 50, privileged=False), count)
        for request in run:
            controller_a.execute(request)
        device_b, controller_b, _, _ = _build(engine, trh=10**6)
        controller_b.execute_run(run.request, count)
        assert _device_state(device_a) == _device_state(device_b), count


@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_trh_crossing_alignment(engine):
    """Run lengths straddling the RowHammer threshold: the crossing ACT
    must run scalar in every engine, with identical flip outcomes."""
    for count in (63, 64, 65, 200):
        device_a, controller_a, _, _ = _build("scalar", trh=64)
        for _ in range(count):
            controller_a.execute(MemRequest(Kind.ACT, 9, privileged=False))
        device_b, controller_b, _, _ = _build(engine, trh=64)
        controller_b.execute_run(
            MemRequest(Kind.ACT, 9, privileged=False), count
        )
        assert _device_state(device_a) == _device_state(device_b), count


# ----------------------------------------------------------------------
# Serving grid: defense x channels x engines, whole payloads
# ----------------------------------------------------------------------
def _serving_payload(engine, defense, channels):
    protected = defense == "DRAM-Locker"
    builder = None if defense in ("None", "DRAM-Locker") else (
        DEFENDED_HAMMER_DEFENSES[defense]
    )
    payload = run_serving(
        ServingConfig(
            tenants=3,
            channels=channels,
            slices=8,
            ops_per_slice=4.0,
            colocated=True,
            engine=engine,
            seed=1,
        ),
        protected=protected,
        defense_builder=builder,
    )
    payload["config"].pop("engine")
    return payload


@pytest.mark.parametrize("channels", [1, 2, 4])
@pytest.mark.parametrize("defense", ["None", "DRAM-Locker"])
def test_serving_payloads_identical_across_engines(defense, channels):
    reference = _serving_payload("scalar", defense, channels)
    for engine in FAST_ENGINES:
        assert _serving_payload(engine, defense, channels) == reference, engine


def test_serving_baseline_defense_events_matches_bulk():
    # One baseline-defense cell (chunked fallback inside the events
    # engine) at the full three-engine depth.
    reference = _serving_payload("scalar", "TRR", 2)
    for engine in FAST_ENGINES:
        assert _serving_payload(engine, "TRR", 2) == reference, engine
