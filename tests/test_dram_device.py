"""DRAM device model: data plane, command plane, refresh, energy."""

import numpy as np
import pytest

from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap


@pytest.fixture()
def device():
    cfg = DRAMConfig.tiny()
    vuln = VulnerabilityMap(cfg, seed=1, weak_cell_fraction=0.0)
    return DRAMDevice(cfg, vulnerability=vuln, trh=8)


class TestDataPlane:
    def test_rows_default_to_zero(self, device):
        assert not device.peek_row(3).any()

    def test_poke_peek_round_trip(self, device):
        data = np.arange(device.config.row_bytes, dtype=np.uint8)
        device.poke_row(5, data)
        assert np.array_equal(device.peek_row(5), data)

    def test_poke_bytes_window(self, device):
        device.poke_bytes(7, 16, [1, 2, 3])
        row = device.peek_row(7)
        assert list(row[16:19]) == [1, 2, 3]
        assert row[15] == 0 and row[19] == 0

    def test_peek_bytes_bounds_checked(self, device):
        with pytest.raises(ValueError):
            device.peek_bytes(0, device.config.row_bytes - 4, 8)

    def test_flip_bit_toggles(self, device):
        device.flip_bit(2, 9)  # byte 1, bit 1
        assert device.peek_row(2)[1] == 2
        device.flip_bit(2, 9)
        assert device.peek_row(2)[1] == 0


class TestCommandPlane:
    def test_activate_opens_row(self, device):
        device.activate(11)
        addr = device.mapper.row_address(11)
        assert device.banks[addr.bank].open_row == 11

    def test_precharge_closes_row(self, device):
        device.activate(11)
        device.precharge(0)
        assert device.banks[0].open_row is None

    def test_burst_requires_open_row(self, device):
        with pytest.raises(RuntimeError):
            device.read_burst(4, 0)

    def test_read_burst_returns_data(self, device):
        device.poke_bytes(4, 64, np.full(64, 7, dtype=np.uint8))
        device.activate(4)
        assert np.array_equal(device.read_burst(4, 64), np.full(64, 7, np.uint8))

    def test_write_burst_stores_data(self, device):
        device.activate(4)
        device.write_burst(4, 0, np.full(64, 9, dtype=np.uint8))
        assert device.peek_row(4)[0] == 9

    def test_command_energy_accounted(self, device):
        device.activate(1)
        device.precharge(0)
        assert device.stats.energy.activate == device.energy.e_act
        assert device.stats.energy.precharge == device.energy.e_pre
        assert device.stats.activates == 1
        assert device.stats.precharges == 1


class TestRowClone:
    def test_copies_data_within_subarray(self, device):
        src = device.mapper.row_index((0, 0, 3))
        dst = device.mapper.row_index((0, 0, 30))
        device.poke_bytes(src, 0, [42])
        device.rowclone(src, dst)
        assert device.peek_row(dst)[0] == 42
        assert device.stats.rowclones == 1

    def test_rejects_cross_subarray_copy(self, device):
        src = device.mapper.row_index((0, 0, 3))
        dst = device.mapper.row_index((0, 1, 3))
        with pytest.raises(ValueError):
            device.rowclone(src, dst)

    def test_rejects_self_copy(self, device):
        with pytest.raises(ValueError):
            device.rowclone(5, 5)

    def test_rowclone_activations_hammer(self, device):
        src = device.mapper.row_index((0, 0, 3))
        dst = device.mapper.row_index((0, 0, 30))
        device.rowclone(src, dst)
        assert device.rowhammer.activation_count(src) == 1
        assert device.rowhammer.activation_count(dst) == 1

    def test_rowclone_cheaper_than_channel_copy(self, device):
        """At the paper's 8KB row size the energy saving is ~74x."""
        clone_nj = device.energy.rowclone_copy_nj()
        channel_nj = device.energy.channel_copy_nj(8192)
        assert 50 < channel_nj / clone_nj < 100


class TestDisturbanceIntegration:
    def test_templated_bit_flips_at_threshold(self, device):
        victim = device.mapper.row_index((0, 0, 4))
        aggressor = device.mapper.row_index((0, 0, 5))
        device.vulnerability.register_template(victim, [3])
        flips = []
        for _ in range(device.timing.trh):
            flips += device.activate(aggressor)
        assert [(f.row, f.bit) for f in flips] == [(victim, 3)]
        assert device.peek_row(victim)[0] == 1 << 3
        assert device.stats.bit_flips == 1

    def test_flip_listener_invoked(self, device):
        victim = device.mapper.row_index((0, 0, 4))
        aggressor = device.mapper.row_index((0, 0, 5))
        device.vulnerability.register_template(victim, [0])
        seen = []
        device.add_flip_listener(seen.append)
        for _ in range(device.timing.trh):
            device.activate(aggressor)
        assert len(seen) == 1 and seen[0].row == victim

    def test_no_flip_below_threshold(self, device):
        victim = device.mapper.row_index((0, 0, 4))
        aggressor = device.mapper.row_index((0, 0, 5))
        device.vulnerability.register_template(victim, [3])
        for _ in range(device.timing.trh - 1):
            device.activate(aggressor)
        assert not device.peek_row(victim).any()


class TestRefresh:
    def test_refresh_resets_hammer_counters(self, device):
        aggressor = 5
        for _ in range(3):
            device.activate(aggressor)
        assert device.rowhammer.activation_count(aggressor) == 3
        # Advance one full refresh window: every row gets refreshed.
        device.advance(device.timing.tref_w)
        assert device.rowhammer.activation_count(aggressor) == 0

    def test_refresh_interrupts_hammering(self, device):
        """Hammering slower than TRH per window never flips."""
        victim = device.mapper.row_index((0, 0, 4))
        aggressor = device.mapper.row_index((0, 0, 5))
        device.vulnerability.register_template(victim, [3])
        per_window = device.timing.trh - 2
        for _ in range(3):
            for _ in range(per_window):
                device.activate(aggressor)
            device.advance(device.timing.tref_w)
        assert not device.peek_row(victim).any()

    def test_refresh_energy_and_count(self, device):
        device.advance(device.timing.trefi * 10)
        assert device.stats.refreshes == 10
        assert device.stats.energy.refresh == pytest.approx(
            10 * device.energy.e_ref
        )

    def test_refresh_closes_banks(self, device):
        device.activate(3)
        device.advance(device.timing.trefi + 1)
        assert device.banks[0].open_row is None

    def test_time_cannot_reverse(self, device):
        with pytest.raises(ValueError):
            device.advance(-1.0)


class TestBackgroundEnergy:
    def test_background_scales_with_time(self, device):
        device.advance(1000.0)
        assert device.stats.energy.background == pytest.approx(
            device.energy.background_nj(1000.0)
        )
