"""The content-addressed trained-victim cache.

The load-bearing property: a cache hit restores *bit-identical* state
to a fresh train -- weights, BatchNorm buffers, and the quantized
payload derived from them.
"""

import os

import numpy as np
import pytest

from repro.eval import Scale
from repro.eval.experiments import build_victim
from repro.nn import (
    QuantizedModel,
    TrainConfig,
    VictimCache,
    cached_train,
    load_model_state,
    make_dataset,
    model_state,
    resnet20,
    train,
    victim_spec,
)
from repro.nn.cache import CACHE_ENV_VAR

TINY = Scale(
    input_hw=8, resnet_width=4, vgg_width=8, epochs=2,
    attack_iterations=2, attack_batch=16, seed=0,
)


@pytest.fixture()
def dataset():
    return make_dataset("c", 4, hw=8, train_per_class=16, test_per_class=8, seed=5)


def fresh_model():
    return resnet20(num_classes=4, width=4, input_hw=8, seed=2)


class TestState:
    def test_state_includes_batchnorm_buffers(self, dataset):
        model = fresh_model()
        state = model_state(model)
        assert any(key.startswith("param:") for key in state)
        assert any(key.endswith(".running_mean") for key in state)
        assert any(key.endswith(".running_var") for key in state)

    def test_state_round_trip_is_exact(self, dataset):
        model = fresh_model()
        train(model, dataset, TrainConfig(epochs=2, seed=0))
        state = {k: v.copy() for k, v in model_state(model).items()}
        other = fresh_model()
        load_model_state(other, state)
        for key, value in model_state(other).items():
            assert np.array_equal(value, state[key]), key

    def test_mismatched_state_rejected(self, dataset):
        model = fresh_model()
        state = dict(model_state(model))
        state.pop(next(iter(state)))
        with pytest.raises(ValueError, match="does not match"):
            load_model_state(fresh_model(), state)


class TestKeys:
    def test_key_changes_with_seed_and_config(self, dataset):
        cache = VictimCache(directory=None, enabled=False)
        a = cache.key_for(
            victim_spec(fresh_model(), dataset, TrainConfig(seed=0))
        )
        b = cache.key_for(
            victim_spec(fresh_model(), dataset, TrainConfig(seed=1))
        )
        c = cache.key_for(
            victim_spec(fresh_model(), dataset, TrainConfig(seed=0, epochs=9))
        )
        d = cache.key_for(
            victim_spec(
                resnet20(num_classes=4, width=4, input_hw=8, seed=3),
                dataset,
                TrainConfig(seed=0),
            )
        )
        assert len({a, b, c, d}) == 4
        assert a == cache.key_for(
            victim_spec(fresh_model(), dataset, TrainConfig(seed=0))
        )

    def test_hardening_participates_in_key(self, dataset):
        cache = VictimCache(directory=None, enabled=False)
        plain = cache.key_for(
            victim_spec(fresh_model(), dataset, TrainConfig(seed=0))
        )
        hardened = cache.key_for(
            victim_spec(
                fresh_model(), dataset, TrainConfig(seed=0),
                hardening={"kind": "clustering", "lam": 1e-3},
            )
        )
        assert plain != hardened


class TestCachedTrain:
    def test_hit_is_bit_identical_to_fresh_train(self, dataset, tmp_path):
        cache = VictimCache(directory=str(tmp_path))
        config = TrainConfig(epochs=2, seed=0)

        trained = fresh_model()
        hit, history = cached_train(trained, dataset, config, cache=cache)
        assert not hit and history is not None
        assert cache.stats.stores == 1

        restored = fresh_model()
        hit, history = cached_train(restored, dataset, config, cache=cache)
        assert hit and history is None
        assert cache.stats.hits == 1

        fresh = fresh_model()
        train(fresh, dataset, config)

        reference = model_state(fresh)
        for name, other in (("cached-store", trained), ("cached-hit", restored)):
            state = model_state(other)
            for key, value in reference.items():
                assert np.array_equal(state[key], value), f"{name}:{key}"
        # And the derived quantized payloads match bit for bit.
        q_fresh = QuantizedModel(fresh)
        q_restored = QuantizedModel(restored)
        for key in q_fresh.tensors:
            assert np.array_equal(q_fresh.tensors[key].q, q_restored.tensors[key].q)
            assert q_fresh.tensors[key].scale == q_restored.tensors[key].scale

    def test_corrupted_entry_is_a_miss(self, dataset, tmp_path):
        cache = VictimCache(directory=str(tmp_path))
        config = TrainConfig(epochs=1, seed=0)
        model = fresh_model()
        cached_train(model, dataset, config, cache=cache)
        key = cache.key_for(victim_spec(fresh_model(), dataset, config))
        with open(cache.path_for(key), "wb") as handle:
            handle.write(b"not an npz")
        hit, _ = cached_train(fresh_model(), dataset, config, cache=cache)
        assert not hit
        assert cache.stats.stores == 2  # rewrote the entry

    def test_disabled_cache_always_trains(self, dataset):
        cache = VictimCache.disabled()
        hit, history = cached_train(
            fresh_model(), dataset, TrainConfig(epochs=1, seed=0), cache=cache
        )
        assert not hit and history is not None
        assert cache.stats.stores == 0

    def test_grad_hook_requires_hardening_descriptor(self, dataset):
        with pytest.raises(ValueError, match="hardening"):
            cached_train(
                fresh_model(), dataset, TrainConfig(epochs=1),
                cache=VictimCache.disabled(), grad_hook=lambda model: None,
            )


class TestEnvResolution:
    def test_env_disables(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "off")
        assert not VictimCache.from_env().enabled

    def test_env_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "victims"))
        cache = VictimCache.from_env()
        assert cache.enabled
        assert cache.directory == str(tmp_path / "victims")

    def test_default_is_home_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        cache = VictimCache.from_env()
        assert cache.enabled
        assert os.path.join(".cache", "dram-locker") in cache.directory


class TestBuildVictimIntegration:
    def test_build_victim_uses_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        _, first = build_victim("resnet20", TINY)
        _, second = build_victim("resnet20", TINY)
        for name in first.tensors:
            assert np.array_equal(first.tensors[name].q, second.tensors[name].q)
        assert any(entry.startswith("victim-") for entry in os.listdir(tmp_path))

    def test_build_victim_matches_uncached(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        _, cached = build_victim("resnet20", TINY)
        _, uncached = build_victim(
            "resnet20", TINY, cache=VictimCache.disabled()
        )
        for name in cached.tensors:
            assert np.array_equal(cached.tensors[name].q, uncached.tensors[name].q)
