"""Checkpoint-resumable run-tables: cells, journal, resume, sharding.

The fleet-orchestration acceptance criteria:

* the cell list is a pure function of the spec (ordering, names,
  derived seeds independent of axis declaration order);
* shards partition the cell list exactly;
* the journal is append-only, fsync'd, and tolerates a torn final
  line (a mid-write crash) -- but only the final line;
* a table killed mid-sweep and resumed emits a results section
  bit-identical to an uninterrupted run, including after a real
  SIGKILL of the CLI subprocess;
* quarantined cells are checkpointed like results and survive resume.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.eval.faults import FaultPlan, FaultSpec
from repro.eval.runtable import (
    RUNTABLE_SCHEMA,
    RUNTABLE_SETS,
    CheckpointJournal,
    RunTableSpec,
    _merge_artifacts,
    _shard_of,
    main as runtable_main,
    run_table,
    summarize_groups,
)

#: A tiny cheap table: 2x2x2 serving cells, sub-second total.
TINY = RunTableSpec(
    name="tiny",
    runner="serving",
    axes=(("channels", (1, 2)), ("slices", (4, 6))),
    replicates=2,
    base_params=(("tenants", 2), ("ops_per_slice", 3.0)),
)


class TestCells:
    def test_cells_are_deterministic_and_sorted(self):
        names = [cell.name for cell in TINY.cells()]
        assert names == [cell.name for cell in TINY.cells()]
        assert len(names) == len(set(names)) == 8
        assert names[0] == "tiny/channels=1/slices=4/r0"

    def test_axis_declaration_order_is_irrelevant(self):
        flipped = RunTableSpec(
            name="tiny",
            runner="serving",
            axes=(("slices", (4, 6)), ("channels", (1, 2))),
            replicates=2,
            base_params=(("tenants", 2), ("ops_per_slice", 3.0)),
        )
        assert [c.name for c in flipped.cells()] == [
            c.name for c in TINY.cells()
        ]

    def test_seeds_derive_from_cell_names(self):
        cells = TINY.cells()
        assert all(cell.seed is None for cell in cells)
        seeds = {cell.resolved_seed(0) for cell in cells}
        assert len(seeds) == len(cells)  # replicates independent
        assert cells[0].resolved_seed(0) != cells[0].resolved_seed(1)

    def test_overrides_hit_matching_cells_only(self):
        spec = RunTableSpec(
            name="t",
            runner="sec4d",
            axes=(("mode", ("a", "b")),),
            overrides=(("t/mode=b/*", (("extra", 1),)),),
        )
        by_name = {cell.name: cell.kwargs() for cell in spec.cells()}
        assert "extra" not in by_name["t/mode=a/r0"]
        assert by_name["t/mode=b/r0"]["extra"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RunTableSpec(name="x", runner="sec4d", replicates=0)
        with pytest.raises(ValueError):
            RunTableSpec(
                name="x", runner="sec4d",
                axes=(("a", (1,)), ("a", (2,))),
            )
        with pytest.raises(ValueError):
            RunTableSpec(name="x", runner="sec4d", axes=(("a", ()),))

    def test_shards_partition_the_cell_list(self):
        cells = TINY.cells()
        sharded = [
            cell.name
            for i in range(3)
            for cell in _shard_of(cells, i, 3)
        ]
        assert sorted(sharded) == sorted(c.name for c in cells)
        with pytest.raises(ValueError):
            _shard_of(cells, 3, 3)


class TestJournal:
    def test_round_trip_and_torn_tail(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        assert journal.load() == {}
        journal.append({"cell": "a", "result": {"x": 1}})
        journal.append({"cell": "b", "result": None})
        with open(journal.path, "a") as handle:
            handle.write('{"cell": "torn')
        records = journal.load()
        assert set(records) == {"a", "b"}
        # repair=True truncates the torn tail so appends stay valid.
        journal.load(repair=True)
        journal.append({"cell": "c", "result": {}})
        assert set(journal.load()) == {"a", "b", "c"}

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        journal.append({"cell": "a", "result": {}})
        with open(journal.path, "a") as handle:
            handle.write("garbage\n")
        journal.append({"cell": "b", "result": {}})
        with pytest.raises(ValueError, match="corrupt journal"):
            journal.load()

    def test_resume_after_repair_truncate_mid_shard(self, tmp_path):
        """A shard killed mid-write: its journal ends in a torn line.
        Resuming the same shard repairs the tear, re-executes only the
        lost cell, and the shard artifact is bit-identical to an
        uninterrupted run of that shard."""
        reference = run_table(
            TINY, str(tmp_path), workers=2, tag="t", shard=(0, 2)
        )
        journal_path = tmp_path / "crash.shard0of2.journal.jsonl"
        with open(reference.journal_path) as handle:
            lines = handle.read().splitlines(keepends=True)
        assert len(lines) == 4
        # Three durable records plus half of the fourth, as a
        # mid-write SIGKILL would leave them.
        journal_path.write_text(
            "".join(lines[:3]) + lines[3][: len(lines[3]) // 2]
        )
        resumed = run_table(
            TINY, str(tmp_path), workers=2, tag="crash",
            shard=(0, 2), resume=True,
        )
        assert resumed.resumed == 3 and resumed.executed == 1
        assert resumed.artifact["results"] == reference.artifact["results"]
        # The repaired journal is whole again: every line parses.
        for line in journal_path.read_text().splitlines():
            json.loads(line)

    def test_multi_shard_merge_with_torn_final_line(self, tmp_path):
        """Two shards of one table, one journal torn mid-record: after
        resuming the torn shard, the merged shard artifacts equal an
        unsharded sweep of the same table."""
        full = run_table(TINY, str(tmp_path), workers=2, tag="whole")
        shard0 = run_table(
            TINY, str(tmp_path), workers=2, tag="m", shard=(0, 2)
        )
        run_table(TINY, str(tmp_path), workers=2, tag="m", shard=(1, 2))
        with open(shard0.journal_path, "r+") as handle:
            text = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(text[:-17])  # tear the final record mid-json
        torn_records = CheckpointJournal(shard0.journal_path).load()
        assert len(torn_records) == 3  # the torn record is dropped
        resumed = run_table(
            TINY, str(tmp_path), workers=2, tag="m",
            shard=(0, 2), resume=True,
        )
        assert resumed.resumed == 3 and resumed.executed == 1
        merged = _merge_artifacts(
            [
                str(tmp_path / "RUNTABLE_m.shard0of2.json"),
                str(tmp_path / "RUNTABLE_m.shard1of2.json"),
            ]
        )
        assert merged["results"] == full.artifact["results"]


class TestRunTable:
    def test_artifact_shape_and_determinism(self, tmp_path):
        first = run_table(TINY, str(tmp_path), workers=2, tag="t1")
        second = run_table(TINY, str(tmp_path), workers=2, tag="t2")
        artifact = first.artifact
        assert artifact["schema"] == RUNTABLE_SCHEMA
        assert artifact["results"] == second.artifact["results"]
        assert first.cells == 8 and first.executed == 8
        assert sorted(artifact["results"]) == [
            cell["name"] for cell in artifact["cells"]
        ]
        on_disk = json.load(open(first.artifact_path))
        assert on_disk["results"] == artifact["results"]

    def test_resume_skips_journaled_cells_bit_identically(self, tmp_path):
        full = run_table(TINY, str(tmp_path), workers=2, tag="full")
        # Keep only the first 3 journal records, as a crash would.
        partial = CheckpointJournal(
            str(tmp_path / "part.journal.jsonl")
        )
        with open(full.journal_path) as handle:
            lines = handle.read().splitlines()
        with open(partial.path, "w") as handle:
            handle.write("\n".join(lines[:3]) + "\n")
        resumed = run_table(
            TINY, str(tmp_path), workers=2, tag="part", resume=True
        )
        assert resumed.resumed == 3 and resumed.executed == 5
        assert resumed.artifact["results"] == full.artifact["results"]

    def test_fresh_run_discards_stale_journal(self, tmp_path):
        journal = CheckpointJournal(
            str(tmp_path / "fresh.journal.jsonl")
        )
        journal.append({"cell": "stale", "result": {"bogus": True}})
        result = run_table(
            TINY, str(tmp_path), workers=2, tag="fresh"
        )
        assert result.resumed == 0
        assert "stale" not in result.artifact["results"]

    def test_sharded_runs_cover_the_table(self, tmp_path):
        full = run_table(TINY, str(tmp_path), workers=2, tag="whole")
        merged = {}
        for index in range(2):
            shard = run_table(
                TINY,
                str(tmp_path),
                workers=2,
                tag="whole",
                shard=(index, 2),
            )
            assert shard.cells == 4
            merged.update(shard.artifact["results"])
        assert merged == full.artifact["results"]

    def test_quarantine_is_checkpointed_and_resumable(self, tmp_path):
        spec = RunTableSpec(
            name="q",
            runner="sec4d",
            axes=(("trials", (100, 200)),),
            retries=1,
        )
        faults = FaultPlan(
            cells=(
                ("q/trials=200/r0", FaultSpec("crash", until_attempt=99)),
            )
        )
        first = run_table(
            spec, str(tmp_path), workers=2, faults=faults, tag="q1"
        )
        assert first.quarantined == 1 and first.errors == 1
        bad = first.artifact["results"]["q/trials=200/r0"]
        assert bad["quarantined"] and bad["attempts"] == [
            "worker-lost", "worker-lost"
        ]
        # Resume with no faults: the quarantined record is kept as-is,
        # nothing re-executes.
        resumed = run_table(
            spec, str(tmp_path), workers=2, tag="q1", resume=True
        )
        assert resumed.executed == 0 and resumed.resumed == 2
        assert resumed.artifact["results"] == first.artifact["results"]

    def test_serial_workers_with_faults_refused(self, tmp_path):
        spec, faults = RUNTABLE_SETS["chaos"]()
        with pytest.raises(ValueError, match="workers >= 2"):
            run_table(
                spec, str(tmp_path), workers=1, faults=faults
            )


class TestCLI:
    def test_list_and_bad_shard(self, tmp_path, capsys):
        assert runtable_main(["--set", "demo", "--list"]) == 0
        out = capsys.readouterr().out
        assert "demo/channels=1/defense=None/r0" in out
        with pytest.raises(SystemExit):
            runtable_main(["--set", "demo", "--shard", "nope"])

    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        """The issue's headline acceptance criterion, end to end."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src, env.get("PYTHONPATH")) if part
        )
        cmd = [
            sys.executable, "-m", "repro.eval", "runtable",
            "--set", "demo", "--out", str(tmp_path), "--workers", "2",
        ]
        subprocess.run(
            cmd + ["--tag", "ref"], env=env, check=True,
            capture_output=True,
        )
        reference = json.load(open(tmp_path / "RUNTABLE_ref.json"))

        victim = subprocess.Popen(
            cmd + ["--tag", "victim"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        journal = tmp_path / "victim.journal.jsonl"
        deadline = time.time() + 120
        while time.time() < deadline and victim.poll() is None:
            if journal.exists() and journal.read_text().count("\n") >= 1:
                break
            time.sleep(0.005)
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        assert not (tmp_path / "RUNTABLE_victim.json").exists()

        subprocess.run(
            cmd + ["--tag", "victim", "--resume"], env=env, check=True,
            capture_output=True,
        )
        resumed = json.load(open(tmp_path / "RUNTABLE_victim.json"))
        assert resumed["results"] == reference["results"]
        assert resumed["cells"] == reference["cells"]


# ----------------------------------------------------------------------
# Replicate aggregation
# ----------------------------------------------------------------------
class TestSummarize:
    @staticmethod
    def _artifact() -> dict:
        return {
            "results": {
                "t/a=1/r0": {"score": 1.0, "nested": {"depth": 10}},
                "t/a=1/r1": {"score": 2.0, "nested": {"depth": 20}},
                "t/a=1/r2": {"score": 3.0, "nested": {"depth": 30}},
                "t/a=2/r0": {"score": 7.0, "flag": True, "label": "x"},
                "t/a=3/r0": {"error": "boom"},
                "t/a=3/r1": {"score": 4.0},
            }
        }

    def test_mean_and_ci95_over_replicates(self):
        summary = summarize_groups(self._artifact())
        stats = summary["t/a=1"]["score"]
        assert stats["n"] == 3
        assert stats["mean"] == pytest.approx(2.0)
        # Sample std 1.0, t(df=2) = 4.303: half-width 4.303/sqrt(3).
        assert stats["ci95"] == pytest.approx(4.303 / 3**0.5, rel=1e-3)
        assert summary["t/a=1"]["nested.depth"]["mean"] == pytest.approx(20.0)

    def test_single_replicate_has_no_interval(self):
        summary = summarize_groups(self._artifact())
        stats = summary["t/a=2"]["score"]
        assert stats["n"] == 1 and stats["ci95"] is None

    def test_errored_cells_excluded_not_fatal(self):
        summary = summarize_groups(self._artifact())
        # r0 errored; the group aggregates its surviving replicate.
        assert summary["t/a=3"]["score"]["n"] == 1

    def test_non_numeric_leaves_are_not_metrics(self):
        summary = summarize_groups(self._artifact())
        assert set(summary["t/a=2"]) == {"score"}  # no flag, no label

    def test_metric_patterns_filter_paths(self):
        summary = summarize_groups(
            self._artifact(), metrics=["nested.*"]
        )
        assert set(summary["t/a=1"]) == {"nested.depth"}
        assert summary["t/a=2"] == {}

    def test_merge_refuses_conflicting_cells(self, tmp_path):
        for name, score in (("s0", 1.0), ("s1", 2.0)):
            (tmp_path / f"{name}.json").write_text(
                json.dumps({"results": {"t/a=1/r0": {"score": score}}})
            )
        with pytest.raises(ValueError, match="refusing to merge"):
            _merge_artifacts(
                [str(tmp_path / "s0.json"), str(tmp_path / "s1.json")]
            )

    def test_cli_summarize(self, tmp_path, capsys):
        path = tmp_path / "RUNTABLE_t.json"
        path.write_text(json.dumps(self._artifact()))
        assert runtable_main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "t/a=1  score  n=3  2 +/-" in out
        assert "(single replicate)" in out
        # --list tolerates artifacts that do not exist yet (the docs
        # checker appends it to documented commands).
        missing = str(tmp_path / "nope.json")
        assert runtable_main(["summarize", missing, "--list"]) == 0
        assert "not generated yet" in capsys.readouterr().out
