"""Batch-vs-scalar equivalence: the batched engine's contract.

``MemoryController.execute_batch`` must be observationally identical to
calling ``execute`` in a loop on the same request stream: same
``RequestResult`` fields, same ``MemoryStats`` (bit-for-bit, including
the float energy accumulators), same RowHammer counters, same locker
bookkeeping, same stored bytes.
"""

import numpy as np
import pytest

from repro.controller import Kind, MemRequest, MemoryController
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.locker import DRAMLocker, LockerConfig


def build_system(
    protected: bool,
    trh: int = 100,
    half_double: float | None = None,
    relock_interval: int = 150,
):
    config = DRAMConfig.tiny()
    vulnerability = VulnerabilityMap(config, seed=3, weak_cell_fraction=1e-4)
    device = DRAMDevice(
        config,
        vulnerability=vulnerability,
        trh=trh,
        half_double_factor=half_double,
    )
    locker = None
    if protected:
        locker = DRAMLocker(
            device,
            LockerConfig(
                copy_error_rate=0.05,
                relock_interval=relock_interval,
                seed=7,
            ),
        )
        locker.lock_rows([9, 11, 21])
    controller = MemoryController(device, locker=locker)
    device.vulnerability.register_template(10, [3])
    return device, controller, locker


def adversarial_stream() -> list[MemRequest]:
    """Inference reads, hammering of locked and free rows, unlock-SWAPs,
    writes -- every path the batch engine special-cases, interleaved."""
    requests = []
    for row in range(30, 40):
        requests.append(
            MemRequest(Kind.READ, row, size=512, privileged=True, tag="w")
        )
    for _ in range(3):
        for aggressor in (9, 11):
            requests += [
                MemRequest(Kind.ACT, aggressor) for _ in range(130)
            ]
        requests.append(MemRequest(Kind.READ, 21, privileged=True))
        requests += [MemRequest(Kind.ACT, 21) for _ in range(60)]
        requests.append(MemRequest(Kind.WRITE, 33, size=256, privileged=True))
        requests += [MemRequest(Kind.ACT, 50) for _ in range(250)]
    return requests


def assert_results_equal(scalar_results, batch_results):
    assert len(scalar_results) == len(batch_results)
    for scalar, batch in zip(scalar_results, batch_results):
        assert scalar.status is batch.status
        assert scalar.latency_ns == batch.latency_ns
        assert scalar.defense_ns == batch.defense_ns
        assert scalar.physical_row == batch.physical_row
        assert scalar.row_hit == batch.row_hit
        assert scalar.swapped == batch.swapped
        assert [(f.row, f.bit, f.time_ns) for f in scalar.flips] == [
            (f.row, f.bit, f.time_ns) for f in batch.flips
        ]


@pytest.mark.parametrize("protected", [False, True])
@pytest.mark.parametrize("half_double", [None, 2.5])
def test_batch_equals_scalar(protected, half_double):
    requests = adversarial_stream()

    device_a, controller_a, locker_a = build_system(protected, half_double=half_double)
    scalar_results = [controller_a.execute(r) for r in requests]

    device_b, controller_b, locker_b = build_system(protected, half_double=half_double)
    batch_results = controller_b.execute_batch(requests)

    assert_results_equal(scalar_results, batch_results)
    # Stats identical bit-for-bit, floats included.
    assert device_a.stats.as_dict() == device_b.stats.as_dict()
    assert device_a.now_ns == device_b.now_ns
    assert device_a.rowhammer.counters == device_b.rowhammer.counters
    assert device_a.refresh.cursor == device_b.refresh.cursor
    assert device_a.refresh.next_ref_ns == device_b.refresh.next_ref_ns
    for row in (9, 10, 11, 21, 33, 50):
        assert np.array_equal(device_a.peek_row(row), device_b.peek_row(row))
    if protected:
        assert locker_a.table.snapshot() == locker_b.table.snapshot()
        assert locker_a.table.lookups == locker_b.table.lookups
        assert locker_a.table.hits == locker_b.table.hits
        assert locker_a.rw_instructions == locker_b.rw_instructions
        assert locker_a.blocked_requests == locker_b.blocked_requests
        assert locker_a.unlock_swaps == locker_b.unlock_swaps
        assert locker_a.failed_unlock_swaps == locker_b.failed_unlock_swaps
        assert locker_a.restores == locker_b.restores
        assert locker_a.failed_restores == locker_b.failed_restores
        assert locker_a.exposed == locker_b.exposed


def test_hammer_uses_batch_engine_and_matches_scalar():
    device_a, controller_a, _ = build_system(protected=True)
    scalar = [
        controller_a.execute(MemRequest(Kind.ACT, 9, privileged=False))
        for _ in range(500)
    ]
    device_b, controller_b, _ = build_system(protected=True)
    batched = controller_b.hammer(9, count=500)
    assert_results_equal(scalar, batched)
    assert device_a.stats.as_dict() == device_b.stats.as_dict()


def test_batch_crosses_thresholds_like_scalar():
    """Flips triggered mid-batch land on the same request index."""
    device_a, controller_a, _ = build_system(protected=False, trh=50)
    scalar = [
        controller_a.execute(MemRequest(Kind.ACT, 9, privileged=False))
        for _ in range(120)
    ]
    device_b, controller_b, _ = build_system(protected=False, trh=50)
    batched = controller_b.hammer(9, count=120)
    scalar_flips = [i for i, r in enumerate(scalar) if r.flips]
    batched_flips = [i for i, r in enumerate(batched) if r.flips]
    # The template on row 10 flips exactly at the threshold crossing...
    assert 49 in batched_flips
    # ...and every crossing lands on the same request index as scalar.
    assert scalar_flips == batched_flips
    assert device_b.rowhammer.activation_count(9) == 120
    assert device_a.stats.as_dict() == device_b.stats.as_dict()


def test_blocked_run_skips_array_and_charges_lookup_only():
    device, controller, locker = build_system(protected=True)
    results = controller.hammer(9, count=200)
    assert all(r.blocked for r in results)
    assert device.stats.activates == 0
    assert locker.blocked_requests == 200
    assert device.stats.blocked_requests == 200


def test_results_log_preserved_by_batch():
    _, controller, _ = build_system(protected=True)
    controller.results_log_enabled = True
    stream = [MemRequest(Kind.ACT, 9) for _ in range(10)]
    stream += [MemRequest(Kind.READ, 30, privileged=True)]
    results = controller.execute_batch(stream)
    assert controller.results == results


def test_read_write_burst_runs_match_scalar_loops():
    config = DRAMConfig.tiny()
    vulnerability = VulnerabilityMap(config, weak_cell_fraction=0.0)

    device_a = DRAMDevice(config, vulnerability=vulnerability, trh=500)
    controller_a = MemoryController(device_a)
    device_b = DRAMDevice(config, vulnerability=vulnerability, trh=500)
    controller_b = MemoryController(device_b)

    stream = [
        MemRequest(Kind.WRITE, 5, column=64, size=300, privileged=True),
        MemRequest(Kind.READ, 5, size=config.row_bytes, privileged=True),
        MemRequest(Kind.READ, 5, column=128, size=64),
    ]
    scalar = [controller_a.execute(r) for r in stream]
    batched = controller_b.execute_batch(stream)
    assert_results_equal(scalar, batched)
    assert device_a.stats.as_dict() == device_b.stats.as_dict()
    assert np.array_equal(device_a.peek_row(5), device_b.peek_row(5))
