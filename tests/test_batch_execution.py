"""Batch-vs-scalar equivalence: the batched engine's contract.

``MemoryController.execute_batch`` must be observationally identical to
calling ``execute`` in a loop on the same request stream: same
``RequestResult`` fields, same ``MemoryStats`` (bit-for-bit, including
the float energy accumulators), same RowHammer counters, same locker
bookkeeping, same stored bytes.  With a baseline defense installed the
contract extends to the defense itself: same tracker tables, same
mitigation accounting, same RNG stream position.  Summary mode
(``execute_run`` / ``execute_summary``) must leave identical device
state while reducing the stream to one ``RunSummary``.
"""

import numpy as np
import pytest

from repro.controller import Kind, MemRequest, MemoryController, RequestRun
from repro.defenses import PARA
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.dram.stats import walk_add, walk_add_many
from repro.eval.harness import DEFENSE_BUILDERS
from repro.locker import DRAMLocker, LockerConfig


def build_system(
    protected: bool,
    trh: int = 100,
    half_double: float | None = None,
    relock_interval: int = 150,
):
    config = DRAMConfig.tiny()
    vulnerability = VulnerabilityMap(config, seed=3, weak_cell_fraction=1e-4)
    device = DRAMDevice(
        config,
        vulnerability=vulnerability,
        trh=trh,
        half_double_factor=half_double,
    )
    locker = None
    if protected:
        locker = DRAMLocker(
            device,
            LockerConfig(
                copy_error_rate=0.05,
                relock_interval=relock_interval,
                seed=7,
            ),
        )
        locker.lock_rows([9, 11, 21])
    controller = MemoryController(device, locker=locker)
    device.vulnerability.register_template(10, [3])
    return device, controller, locker


def adversarial_stream() -> list[MemRequest]:
    """Inference reads, hammering of locked and free rows, unlock-SWAPs,
    writes -- every path the batch engine special-cases, interleaved."""
    requests = []
    for row in range(30, 40):
        requests.append(
            MemRequest(Kind.READ, row, size=512, privileged=True, tag="w")
        )
    for _ in range(3):
        for aggressor in (9, 11):
            requests += [
                MemRequest(Kind.ACT, aggressor) for _ in range(130)
            ]
        requests.append(MemRequest(Kind.READ, 21, privileged=True))
        requests += [MemRequest(Kind.ACT, 21) for _ in range(60)]
        requests.append(MemRequest(Kind.WRITE, 33, size=256, privileged=True))
        requests += [MemRequest(Kind.ACT, 50) for _ in range(250)]
    return requests


def assert_results_equal(scalar_results, batch_results):
    assert len(scalar_results) == len(batch_results)
    for scalar, batch in zip(scalar_results, batch_results):
        assert scalar.status is batch.status
        assert scalar.latency_ns == batch.latency_ns
        assert scalar.defense_ns == batch.defense_ns
        assert scalar.physical_row == batch.physical_row
        assert scalar.row_hit == batch.row_hit
        assert scalar.swapped == batch.swapped
        assert [(f.row, f.bit, f.time_ns) for f in scalar.flips] == [
            (f.row, f.bit, f.time_ns) for f in batch.flips
        ]


@pytest.mark.parametrize("protected", [False, True])
@pytest.mark.parametrize("half_double", [None, 2.5])
def test_batch_equals_scalar(protected, half_double):
    requests = adversarial_stream()

    device_a, controller_a, locker_a = build_system(protected, half_double=half_double)
    scalar_results = [controller_a.execute(r) for r in requests]

    device_b, controller_b, locker_b = build_system(protected, half_double=half_double)
    batch_results = controller_b.execute_batch(requests)

    assert_results_equal(scalar_results, batch_results)
    # Stats identical bit-for-bit, floats included.
    assert device_a.stats.as_dict() == device_b.stats.as_dict()
    assert device_a.now_ns == device_b.now_ns
    assert device_a.rowhammer.counters == device_b.rowhammer.counters
    assert device_a.refresh.cursor == device_b.refresh.cursor
    assert device_a.refresh.next_ref_ns == device_b.refresh.next_ref_ns
    for row in (9, 10, 11, 21, 33, 50):
        assert np.array_equal(device_a.peek_row(row), device_b.peek_row(row))
    if protected:
        assert locker_a.table.snapshot() == locker_b.table.snapshot()
        assert locker_a.table.lookups == locker_b.table.lookups
        assert locker_a.table.hits == locker_b.table.hits
        assert locker_a.rw_instructions == locker_b.rw_instructions
        assert locker_a.blocked_requests == locker_b.blocked_requests
        assert locker_a.unlock_swaps == locker_b.unlock_swaps
        assert locker_a.failed_unlock_swaps == locker_b.failed_unlock_swaps
        assert locker_a.restores == locker_b.restores
        assert locker_a.failed_restores == locker_b.failed_restores
        assert locker_a.exposed == locker_b.exposed


def test_hammer_uses_batch_engine_and_matches_scalar():
    device_a, controller_a, _ = build_system(protected=True)
    scalar = [
        controller_a.execute(MemRequest(Kind.ACT, 9, privileged=False))
        for _ in range(500)
    ]
    device_b, controller_b, _ = build_system(protected=True)
    batched = controller_b.hammer(9, count=500)
    assert_results_equal(scalar, batched)
    assert device_a.stats.as_dict() == device_b.stats.as_dict()


def test_batch_crosses_thresholds_like_scalar():
    """Flips triggered mid-batch land on the same request index."""
    device_a, controller_a, _ = build_system(protected=False, trh=50)
    scalar = [
        controller_a.execute(MemRequest(Kind.ACT, 9, privileged=False))
        for _ in range(120)
    ]
    device_b, controller_b, _ = build_system(protected=False, trh=50)
    batched = controller_b.hammer(9, count=120)
    scalar_flips = [i for i, r in enumerate(scalar) if r.flips]
    batched_flips = [i for i, r in enumerate(batched) if r.flips]
    # The template on row 10 flips exactly at the threshold crossing...
    assert 49 in batched_flips
    # ...and every crossing lands on the same request index as scalar.
    assert scalar_flips == batched_flips
    assert device_b.rowhammer.activation_count(9) == 120
    assert device_a.stats.as_dict() == device_b.stats.as_dict()


def test_blocked_run_skips_array_and_charges_lookup_only():
    device, controller, locker = build_system(protected=True)
    results = controller.hammer(9, count=200)
    assert all(r.blocked for r in results)
    assert device.stats.activates == 0
    assert locker.blocked_requests == 200
    assert device.stats.blocked_requests == 200


def test_results_log_preserved_by_batch():
    _, controller, _ = build_system(protected=True)
    controller.results_log_enabled = True
    stream = [MemRequest(Kind.ACT, 9) for _ in range(10)]
    stream += [MemRequest(Kind.READ, 30, privileged=True)]
    results = controller.execute_batch(stream)
    assert controller.results == results


def test_read_write_burst_runs_match_scalar_loops():
    config = DRAMConfig.tiny()
    vulnerability = VulnerabilityMap(config, weak_cell_fraction=0.0)

    device_a = DRAMDevice(config, vulnerability=vulnerability, trh=500)
    controller_a = MemoryController(device_a)
    device_b = DRAMDevice(config, vulnerability=vulnerability, trh=500)
    controller_b = MemoryController(device_b)

    stream = [
        MemRequest(Kind.WRITE, 5, column=64, size=300, privileged=True),
        MemRequest(Kind.READ, 5, size=config.row_bytes, privileged=True),
        MemRequest(Kind.READ, 5, column=128, size=64),
    ]
    scalar = [controller_a.execute(r) for r in stream]
    batched = controller_b.execute_batch(stream)
    assert_results_equal(scalar, batched)
    assert device_a.stats.as_dict() == device_b.stats.as_dict()
    assert np.array_equal(device_a.peek_row(5), device_b.peek_row(5))


# ----------------------------------------------------------------------
# Sequential-accumulator helpers (the vectorized float walks)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "acc,step",
    [
        (0.0, 18.0),
        (1.2, 46.25),
        (1e16, 0.1),  # step partially absorbed by the accumulator
        (3.7e-3, 1e-18),  # step fully absorbed
        (123456.789, 0.0),
        (-5.5, 1.0 / 3.0),
    ],
)
@pytest.mark.parametrize("count", [0, 1, 7, 15, 16, 17, 1000])
def test_walk_add_bitwise_matches_python_fold(acc, step, count):
    expected = acc
    for _ in range(count):
        expected += step
    assert walk_add(acc, step, count) == expected


def test_walk_add_many_bitwise_matches_python_folds():
    rng = np.random.default_rng(11)
    accs = tuple(float(v) for v in rng.normal(scale=1e9, size=6))
    steps = tuple(float(v) for v in rng.random(6) * 50.0)
    for count in (0, 3, 16, 257):
        expected = []
        for acc, step in zip(accs, steps):
            for _ in range(count):
                acc += step
            expected.append(acc)
        assert walk_add_many(accs, steps, count) == tuple(expected)


def test_para_vectorized_draws_match_scalar_stream():
    """numpy's Generator.random(n) must be the same draw sequence as n
    scalar .random() calls -- the PARA bulk planner's equivalence
    argument."""
    scalar_rng = np.random.default_rng(42)
    vector_rng = np.random.default_rng(42)
    scalar = [scalar_rng.random() for _ in range(257)]
    vector = vector_rng.random(257)
    assert scalar == list(vector)
    assert scalar_rng.bit_generator.state == vector_rng.bit_generator.state


# ----------------------------------------------------------------------
# RequestRun: run-length request representation
# ----------------------------------------------------------------------
def test_request_run_is_an_o1_sequence():
    request = MemRequest(Kind.ACT, 9)
    run = RequestRun(request, 5)
    assert len(run) == 5
    assert run[0] is request and run[4] is request and run[-1] is request
    assert len(run[1:3]) == 2
    with pytest.raises(IndexError):
        run[5]
    assert list(run) == [request] * 5


def test_hammer_issues_run_length_requests():
    device_a, controller_a, _ = build_system(protected=False)
    scalar = [
        controller_a.execute(MemRequest(Kind.ACT, 9, privileged=False))
        for _ in range(50)
    ]
    device_b, controller_b, _ = build_system(protected=False)
    batched = controller_b.hammer(9, count=50)
    assert_results_equal(scalar, batched)
    assert device_a.stats.as_dict() == device_b.stats.as_dict()


# ----------------------------------------------------------------------
# Defense-matrix equivalence: every registered defense, three engines
# ----------------------------------------------------------------------
DEFENSE_NAMES = sorted(
    name for name, builder in DEFENSE_BUILDERS.items() if builder is not None
)


def build_defended_system(name: str, engine: str, trh: int = 64):
    config = DRAMConfig.tiny()
    vulnerability = VulnerabilityMap(config, seed=5, weak_cell_fraction=1e-4)
    device = DRAMDevice(config, vulnerability=vulnerability, trh=trh)
    defense = DEFENSE_BUILDERS[name]()
    controller = MemoryController(device, defense=defense, engine=engine)
    device.vulnerability.register_template(10, [3])
    device.vulnerability.register_template(49, [2])
    return device, controller, defense


def defended_stream(trh: int = 64) -> list[MemRequest]:
    """Interleaved double-sided bursts, privileged reads, and a long
    single-row run: crosses TRH, defense thresholds, Hydra escalation,
    TWiCE prunes, swap/shuffle periods, and refresh ticks."""
    requests: list[MemRequest] = []
    for _ in range(4):
        for aggressor in (9, 11):
            requests += [MemRequest(Kind.ACT, aggressor)] * (trh // 2 + 7)
        requests.append(MemRequest(Kind.READ, 21, privileged=True))
        requests += [MemRequest(Kind.ACT, 50)] * (2 * trh + 3)
    return requests


def defense_state(defense) -> dict:
    """Every observable a defense carries, in comparable form."""
    state = {
        "mitigation_ns_total": defense.mitigation_ns_total,
        "actions": defense.actions,
        "windows_seen": defense._windows_seen,
    }
    if hasattr(defense, "rng"):
        state["rng"] = defense.rng.bit_generator.state
    if isinstance(defense, PARA):
        state["pending_draws"] = defense.pending_draws()
    for attr in (
        "_counts",
        "_group_counts",
        "_row_counts",
        "_escalated",
        "row_counter_accesses",
        "_since_prune",
        "pruned_entries",
        "_subarray_acts",
        "shuffles_performed",
        "swaps_performed",
        "splits",
    ):
        if hasattr(defense, attr):
            value = getattr(defense, attr)
            state[attr] = value.copy() if hasattr(value, "copy") else value
    if hasattr(defense, "_tables"):
        state["_tables"] = {
            bank: (dict(t.counters), t.decrements, t.observations)
            for bank, t in defense._tables.items()
        }
    if hasattr(defense, "_nodes"):
        state["_nodes"] = {
            key: (node.count, node.split)
            for key, node in defense._nodes.items()
        }
    if hasattr(defense, "permutation"):
        state["permutation"] = dict(defense.permutation._where)
    return state


def assert_devices_equal(device_a, device_b):
    assert device_a.stats.as_dict() == device_b.stats.as_dict()
    assert device_a.now_ns == device_b.now_ns
    assert device_a.rowhammer.counters == device_b.rowhammer.counters
    assert device_a.refresh.cursor == device_b.refresh.cursor
    assert device_a.refresh.next_ref_ns == device_b.refresh.next_ref_ns
    for row in (9, 10, 11, 21, 49, 50, 51):
        assert np.array_equal(device_a.peek_row(row), device_b.peek_row(row))


@pytest.mark.parametrize("name", DEFENSE_NAMES)
def test_defended_batch_matches_scalar(name):
    requests = defended_stream()

    device_a, controller_a, defense_a = build_defended_system(name, "scalar")
    scalar_results = [controller_a.execute(r) for r in requests]

    device_b, controller_b, defense_b = build_defended_system(name, "bulk")
    batch_results = controller_b.execute_batch(requests)

    assert_results_equal(scalar_results, batch_results)
    assert_devices_equal(device_a, device_b)
    assert defense_state(defense_a) == defense_state(defense_b)


@pytest.mark.parametrize("name", DEFENSE_NAMES)
def test_defended_summary_matches_scalar(name):
    requests = defended_stream()

    device_a, controller_a, defense_a = build_defended_system(name, "scalar")
    scalar_results = [controller_a.execute(r) for r in requests]

    device_b, controller_b, defense_b = build_defended_system(name, "bulk")
    summary = controller_b.execute_summary(requests)

    assert_devices_equal(device_a, device_b)
    assert defense_state(defense_a) == defense_state(defense_b)

    # The summary is the in-order reduction of the scalar results.
    assert summary.requested == len(requests)
    assert summary.issued == sum(1 for r in scalar_results if not r.blocked)
    assert summary.blocked == sum(1 for r in scalar_results if r.blocked)
    latency = 0.0
    defense_ns = 0.0
    flips = []
    for result in scalar_results:
        latency += result.latency_ns
        defense_ns += result.defense_ns
        flips.extend(result.flips)
    assert summary.latency_ns == latency
    assert summary.defense_ns == defense_ns
    assert [(f.row, f.bit, f.time_ns) for f in summary.flips] == [
        (f.row, f.bit, f.time_ns) for f in flips
    ]


@pytest.mark.parametrize("name", ["TRR", "Hydra", "Graphene"])
def test_defense_plus_locker_batch_matches_scalar(name):
    """Locker and baseline defense installed together: the bulk engine
    must respect both protection layers' chunk boundaries."""
    requests = defended_stream()

    def build(engine):
        config = DRAMConfig.tiny()
        vulnerability = VulnerabilityMap(
            config, seed=5, weak_cell_fraction=1e-4
        )
        device = DRAMDevice(config, vulnerability=vulnerability, trh=64)
        locker = DRAMLocker(
            device,
            LockerConfig(copy_error_rate=0.05, relock_interval=90, seed=7),
        )
        locker.lock_rows([9, 21])
        defense = DEFENSE_BUILDERS[name]()
        controller = MemoryController(
            device, defense=defense, locker=locker, engine=engine
        )
        device.vulnerability.register_template(10, [3])
        return device, controller, locker, defense

    device_a, controller_a, locker_a, defense_a = build("scalar")
    scalar_results = [controller_a.execute(r) for r in requests]
    device_b, controller_b, locker_b, defense_b = build("bulk")
    batch_results = controller_b.execute_batch(requests)

    assert_results_equal(scalar_results, batch_results)
    assert_devices_equal(device_a, device_b)
    assert defense_state(defense_a) == defense_state(defense_b)
    assert locker_a.table.lookups == locker_b.table.lookups
    assert locker_a.table.hits == locker_b.table.hits
    assert locker_a.rw_instructions == locker_b.rw_instructions
    assert locker_a.blocked_requests == locker_b.blocked_requests
    assert locker_a.exposed == locker_b.exposed


def test_hammer_run_blocked_path_is_summary_only():
    device, controller, locker = build_system(protected=True)
    summary = controller.hammer_run(9, count=200)
    assert summary.requested == 200
    assert summary.blocked == 200
    assert summary.issued == 0
    assert summary.flips == []
    assert device.stats.activates == 0
    assert device.stats.blocked_requests == 200
    assert locker.blocked_requests == 200


def test_hammer_run_matches_hammer_reduction():
    device_a, controller_a, _ = build_system(protected=True)
    results = controller_a.hammer(9, count=300)
    device_b, controller_b, _ = build_system(protected=True)
    summary = controller_b.hammer_run(9, count=300)
    assert device_a.stats.as_dict() == device_b.stats.as_dict()
    assert summary.issued == sum(1 for r in results if not r.blocked)
    assert summary.blocked == sum(1 for r in results if r.blocked)
    latency = 0.0
    for result in results:
        latency += result.latency_ns
    assert summary.latency_ns == latency


def test_scalar_engine_is_the_reference_loop():
    requests = defended_stream()
    device_a, controller_a, defense_a = build_defended_system("TRR", "scalar")
    via_batch = controller_a.execute_batch(requests)

    config = DRAMConfig.tiny()
    vulnerability = VulnerabilityMap(config, seed=5, weak_cell_fraction=1e-4)
    device_b = DRAMDevice(config, vulnerability=vulnerability, trh=64)
    defense_b = DEFENSE_BUILDERS["TRR"]()
    controller_b = MemoryController(device_b, defense=defense_b)
    device_b.vulnerability.register_template(10, [3])
    device_b.vulnerability.register_template(49, [2])
    loop = [controller_b.execute(r) for r in requests]

    assert_results_equal(via_batch, loop)
    assert device_a.stats.as_dict() == device_b.stats.as_dict()


def test_engine_validated():
    config = DRAMConfig.tiny()
    device = DRAMDevice(config, trh=64)
    with pytest.raises(ValueError):
        MemoryController(device, engine="turbo")
