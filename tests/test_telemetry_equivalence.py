"""Telemetry is observationally inert, and its streams are deterministic.

The two halves of the :mod:`repro.obs` contract:

* **On/off bit-identity** -- payloads, device/locker state (including
  the swap-engine RNG stream), and SLA fingerprints are identical with
  telemetry enabled vs disabled, across all three engines.  Telemetry
  only *reads* values the simulation already computed.
* **Stream determinism** -- the canonical audit snapshot of a serving
  cell is a pure function of the cell (identical across repeats and
  across the bulk/events engines), and merged matrix metrics are
  invariant to the worker count.
"""

import pytest

from repro import obs
from repro.controller import Kind, MemRequest, MemoryController
from repro.controller.controller import ENGINES
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.eval.harness import (
    DEFENDED_HAMMER_DEFENSES,
    run_matrix,
    serving_scenarios,
    shutdown_worker_pool,
)
from repro.locker import DRAMLocker, LockerConfig
from repro.serving import HealthConfig, ServingConfig, run_serving


@pytest.fixture(autouse=True)
def _telemetry_disabled_around_each_test():
    """Tests must never leak an enabled instance into each other."""
    obs.disable()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# On/off bit-identity: controller grid
# ----------------------------------------------------------------------
def _controller_state(engine, defense_name):
    """Full observable state after an adversarial stream: results,
    device stats, locker bookkeeping, and the swap-RNG stream."""
    config = DRAMConfig.tiny()
    vulnerability = VulnerabilityMap(config, seed=3, weak_cell_fraction=1e-4)
    device = DRAMDevice(config, vulnerability=vulnerability, trh=100)
    locker = DRAMLocker(
        device,
        LockerConfig(copy_error_rate=0.05, relock_interval=150, seed=7),
    )
    locker.lock_rows([9, 11, 21])
    defense = (
        DEFENDED_HAMMER_DEFENSES[defense_name]() if defense_name else None
    )
    controller = MemoryController(
        device, defense=defense, locker=locker, engine=engine
    )
    device.vulnerability.register_template(10, [3])

    requests = []
    for _ in range(3):
        requests.append(MemRequest(Kind.READ, 21, privileged=True))
        requests += [MemRequest(Kind.ACT, 21) for _ in range(60)]
        for aggressor in (9, 11):
            requests += [MemRequest(Kind.ACT, aggressor) for _ in range(130)]
        requests += [MemRequest(Kind.ACT, 50) for _ in range(400)]
    if engine == "scalar":
        results = [controller.execute(request) for request in requests]
    else:
        results = controller.execute_batch(requests)
    return (
        [
            (r.status, r.latency_ns, r.defense_ns, r.row_hit, r.swapped,
             tuple(r.flips))
            for r in results
        ],
        device.stats.as_dict(),
        device.now_ns,
        device.rowhammer.counters,
        [device.peek_row(row).tobytes() for row in (9, 10, 11, 21, 50)],
        locker.table.lookups,
        locker.blocked_requests,
        locker.exposure_windows,
        locker.swap_engine.rng.bit_generator.state,
        defense.mitigation_ns_total if defense else None,
    )


@pytest.mark.parametrize("engine", list(ENGINES))
@pytest.mark.parametrize("defense_name", [None, "TRR", "Graphene"])
def test_controller_state_identical_with_telemetry_on_and_off(
    engine, defense_name
):
    reference = _controller_state(engine, defense_name)
    with obs.enabled_scope() as tel:
        instrumented = _controller_state(engine, defense_name)
    assert instrumented == reference
    # ...and the run was actually observed, not silently skipped.
    assert tel.metrics.snapshot()["updates"] > 0


# ----------------------------------------------------------------------
# On/off bit-identity: whole serving payloads
# ----------------------------------------------------------------------
def _serving_payload(engine, defense):
    return run_serving(
        ServingConfig(
            tenants=3,
            channels=2,
            slices=8,
            ops_per_slice=4.0,
            colocated=True,
            engine=engine,
            seed=1,
            defense=defense,
        ),
        protected=defense == "DRAM-Locker",
    )


@pytest.mark.parametrize("engine", list(ENGINES))
@pytest.mark.parametrize("defense", ["None", "DRAM-Locker"])
def test_serving_payload_identical_with_telemetry_on_and_off(engine, defense):
    reference = _serving_payload(engine, defense)
    with obs.enabled_scope() as tel:
        instrumented = _serving_payload(engine, defense)
    assert instrumented == reference
    assert tel.metrics.snapshot()["updates"] > 0
    if defense == "DRAM-Locker":
        assert len(tel.audit) > 0


# ----------------------------------------------------------------------
# Audit-stream determinism: chaos cell, bulk vs events
# ----------------------------------------------------------------------
def _chaos_audit_snapshot(engine, victim):
    """Canonical audit snapshot of a RADAR serving cell with a
    co-located attacker and a deterministic weight-row corruption
    injected at slice boundary 3."""
    from repro.defenses.builders import resolve_serving_defense

    protected, builder = resolve_serving_defense("RADAR")
    with obs.enabled_scope() as tel:
        payload = run_serving(
            ServingConfig(
                channels=1,
                slices=12,
                ops_per_slice=6.0,
                colocated=True,
                engine=engine,
                seed=0,
                defense="RADAR",
            ),
            protected=protected,
            defense_builder=builder,
            model_victim=victim,
            health=HealthConfig(
                probe_interval=4, quarantine_slices=1, inject_at=(3,)
            ),
        )
    assert payload["health"]["all_injections_detected"]
    return tel.audit.snapshot(), tel.audit.kind_counts()


@pytest.fixture(scope="module")
def chaos_victim():
    from repro.eval.experiments import Scale, build_victim

    return build_victim("resnet20", Scale.quick())


def test_chaos_audit_stream_deterministic_across_repeats(chaos_victim):
    first = _chaos_audit_snapshot("bulk", chaos_victim)
    second = _chaos_audit_snapshot("bulk", chaos_victim)
    assert first == second
    events, kinds = first
    assert events, "chaos cell produced no audit events"
    assert "quarantine" in kinds
    assert [event["seq"] for event in events] == list(range(len(events)))


def test_chaos_audit_stream_identical_bulk_vs_events(chaos_victim):
    bulk_events, bulk_kinds = _chaos_audit_snapshot("bulk", chaos_victim)
    events_events, events_kinds = _chaos_audit_snapshot(
        "events", chaos_victim
    )
    assert events_kinds == bulk_kinds
    assert events_events == bulk_events


# ----------------------------------------------------------------------
# Metrics: worker-count invariance through run_matrix
# ----------------------------------------------------------------------
def test_matrix_metrics_invariant_to_worker_count(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    scenarios = [
        scenario
        for scenario in serving_scenarios()
        if scenario.name in ("serving-none-ch1", "serving-dram-locker-ch1")
    ]
    assert len(scenarios) == 2
    # Fresh pool: the workers must fork after REPRO_TELEMETRY is set.
    shutdown_worker_pool(force=True)
    try:
        serial = run_matrix(scenarios, workers=1, tag="obs-serial")
        parallel = run_matrix(scenarios, workers=2, tag="obs-parallel")
    finally:
        shutdown_worker_pool(force=True)
    for result in serial.results + parallel.results:
        assert result.ok, result.error
        assert result.telemetry is not None
    summary_serial = serial.telemetry_summary()
    summary_parallel = parallel.telemetry_summary()
    assert summary_serial["metrics"]["updates"] > 0
    assert summary_parallel == summary_serial


def test_telemetry_excluded_from_artifact_payloads(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    scenarios = [
        scenario
        for scenario in serving_scenarios()
        if scenario.name == "serving-none-ch1"
    ]
    matrix = run_matrix(
        scenarios, workers=1, tag="obs-artifact", artifact_dir=str(tmp_path)
    )
    assert matrix.results[0].telemetry is not None
    import json

    with open(matrix.artifact_path, encoding="utf-8") as handle:
        artifact = json.load(handle)
    assert "telemetry" not in json.dumps(artifact)
    assert artifact["meta"]["python"]
    assert "cpu_count" in artifact["meta"]


# ----------------------------------------------------------------------
# Scoping discipline
# ----------------------------------------------------------------------
def test_enabled_scope_restores_disabled_state():
    assert obs.ACTIVE is None
    with obs.enabled_scope() as tel:
        assert obs.ACTIVE is tel
        with obs.enabled_scope() as inner:
            assert obs.ACTIVE is inner
        assert obs.ACTIVE is tel
    assert obs.ACTIVE is None


def test_run_scenario_without_telemetry_records_none(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    from repro.eval.harness import Scenario, run_scenario
    from repro.eval.experiments import Scale

    result = run_scenario(
        Scenario("obs-off-probe", "fig1b", Scale.quick(), seed=0)
    )
    assert result.ok
    assert result.telemetry is None
