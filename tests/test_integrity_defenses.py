"""The detect-and-recover integrity layer: RADAR, DNN-Defender, the
serving victim-health monitor, the defended attack path, and the
bake-off's nightly gate.

Pins the PR's contracts:

* RADAR detects corruption on inference reads and scheduled scrubs,
  restores locatable groups bit-exactly, zeroes digest-only groups,
  and re-snapshots its checksums after out-of-band rewrites;
* DNN-Defender swaps the highest-priority threatened victim away from
  a hot aggressor, spends its per-window budget only on ranked
  victims, and never relocates ranked data into the hammer zone;
* the victim-health monitor detects injected corruption, recovers the
  model to the clean baseline, quarantines the victim's channel
  (sheds booked as ``integrity_fault``), and keeps the payload
  bit-identical across the bulk and events engines;
* ``run_attack_scenario(defense=...)`` reports the defense section
  only when a defense is named (payload-shape preservation);
* the ``compare_bakeoff`` regression gate.
"""

import copy

import numpy as np
import pytest

from repro.controller import MemoryController
from repro.defenses import DNNDefender, Radar
from repro.defenses.builders import resolve_serving_defense
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.eval.harness import _run_defense_bakeoff, bakeoff_scenarios
from repro.eval.experiments import Scale, run_attack_scenario
from repro.eval.regression import BAKEOFF_SCHEMA, compare_bakeoff
from repro.serving import HealthConfig


def make_system(defense, trh=40):
    cfg = DRAMConfig.tiny()
    vuln = VulnerabilityMap(cfg, weak_cell_fraction=0.0)
    device = DRAMDevice(cfg, vulnerability=vuln, trh=trh)
    controller = MemoryController(device, defense=defense)
    return device, controller


class FakeStore:
    """The slice of the WeightStore surface RADAR binds against."""

    def __init__(self, data_rows):
        self.data_rows = list(data_rows)
        self.syncs = 0

    def sync_model(self, force=False, row_source=None):
        self.syncs += 1


# ----------------------------------------------------------------------
# RADAR
# ----------------------------------------------------------------------
class TestRadar:
    def _bound(self, scrub_interval=10, group_rows=2, **bind_kwargs):
        defense = Radar(scrub_interval=scrub_interval, group_rows=group_rows)
        device, controller = make_system(defense)
        store = FakeStore([2, 3, 4, 5])
        for row in store.data_rows:
            device.poke_bytes(row, 0, [0xA0 + row])
        groups = defense.bind_store(store, **bind_kwargs)
        return device, controller, defense, store, groups

    def test_bind_store_partitions_rows_into_groups(self):
        device, _, defense, _, groups = self._bound()
        assert groups == 2
        assert [group.rows for group in defense.groups] == [(2, 3), (4, 5)]
        assert all(group.locatable for group in defense.groups)
        assert all(group.digest for group in defense.groups)

    def test_golden_limit_caps_locatable_groups(self):
        _, _, defense, _, _ = self._bound(golden_limit=2)
        locatable = [group.locatable for group in defense.groups]
        assert locatable == [True, False]
        assert defense.groups[1].golden == {}

    def test_read_path_detects_and_restores_bit_exactly(self):
        device, controller, defense, store, _ = self._bound()
        golden = device.peek_row(3).copy()
        device.flip_bit(3, 5)  # silent corruption: no flip listeners
        controller.read(3)
        assert defense.corruptions_detected == 1
        assert defense.rows_restored == 1
        assert np.array_equal(device.peek_row(3), golden)
        assert defense.detection_log[-1]["via"] == "read"
        assert defense.detection_log[-1]["mode"] == "restore"
        assert store.syncs == 1  # repaired bytes pushed to the model

    def test_scheduled_scrub_detects_untouched_rows(self):
        device, controller, defense, _, _ = self._bound(scrub_interval=5)
        device.flip_bit(4, 1)
        controller.hammer(20, count=5)  # unprotected traffic only
        assert defense.scrubs == 1
        assert defense.corruptions_detected == 1
        assert defense.detection_log[-1]["via"] == "scrub"

    def test_zero_out_fallback_beyond_golden_budget(self):
        device, controller, defense, _, _ = self._bound(golden_limit=0)
        device.flip_bit(2, 1)
        found = defense.scrub_now()
        assert found == 1
        assert defense.rows_zeroed == 2  # the whole group, not the row
        assert not device.peek_row(2).any()
        assert not device.peek_row(3).any()
        assert defense.detection_log[-1]["mode"] == "zero"
        # Row 5's group was clean and is untouched.
        assert device.peek_row(5)[0] == 0xA5

    def test_scrub_now_charges_defense_ns(self):
        device, _, defense, _, _ = self._bound()
        before = defense.mitigation_ns_total
        assert defense.scrub_now() == 0
        assert defense.mitigation_ns_total > before

    def test_refresh_checksums_adopts_out_of_band_rewrites(self):
        device, _, defense, _, _ = self._bound()
        device.poke_bytes(2, 0, [0x11])  # legitimate rewrite
        defense.refresh_checksums()
        assert defense.scrub_now() == 0  # not re-"detected"
        assert defense.groups[0].golden[2][0] == 0x11

    def test_plan_is_quiet_until_scrub_and_breaks_on_corruption(self):
        device, _, defense, _, _ = self._bound(scrub_interval=10)
        plan = defense.plan_activate_run(20, 100)
        assert plan.count == 9 and plan.extra_ns == 0.0
        plan = defense.plan_activate_run(3, 100)
        assert plan.count == 9 and plan.extra_ns == defense.check_ns
        device.flip_bit(3, 0)
        assert defense.plan_activate_run(3, 100).count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Radar(scrub_interval=0)
        with pytest.raises(ValueError):
            Radar(group_rows=0)


# ----------------------------------------------------------------------
# DNN-Defender
# ----------------------------------------------------------------------
class TestDNNDefender:
    def test_swaps_ranked_victim_away_from_hot_aggressor(self):
        defense = DNNDefender(hot_threshold=4, seed=1)
        device, controller = make_system(defense)
        defense.prioritize([11])
        device.poke_bytes(11, 0, [0x5A])
        controller.hammer(10, count=4)
        assert defense.swaps_performed == 1
        location = defense.translate(11)
        assert location != 11
        # The data followed the swap; the controller follows translate.
        assert device.peek_row(location)[0] == 0x5A
        assert controller.read(11).physical_row == location
        # Whatever now sits in the hammer zone is sacrificial.
        assert defense._priority.get(defense.permutation.resident(11), 0) == 0

    def test_budget_reserved_for_ranked_victims(self):
        defense = DNNDefender(hot_threshold=4, seed=1)
        device, controller = make_system(defense)
        defense.prioritize([20])  # ranked data lives elsewhere
        controller.hammer(10, count=16)
        assert defense.swaps_performed == 0

    def test_bare_instance_swaps_unconditionally(self):
        defense = DNNDefender(hot_threshold=4, seed=1)
        device, controller = make_system(defense)
        controller.hammer(10, count=4)
        assert defense.swaps_performed == 1

    def test_window_budget_and_reset(self):
        defense = DNNDefender(swaps_per_window=1, hot_threshold=2, seed=1)
        device, controller = make_system(defense)
        defense.prioritize([11, 13])
        controller.hammer(10, count=2)
        controller.hammer(12, count=2)
        assert defense.swaps_performed == 1  # budget spent
        defense.on_refresh_window()
        assert defense._window_swaps == 0 and defense._counts == {}
        controller.hammer(12, count=2)
        assert defense.swaps_performed == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DNNDefender(swaps_per_window=0)
        with pytest.raises(ValueError):
            DNNDefender(hot_threshold=0)


# ----------------------------------------------------------------------
# Serving victim-health monitor
# ----------------------------------------------------------------------
def _chaos_payload(defense="RADAR", engine="bulk", **overrides):
    kwargs = dict(
        attack="none",
        defense=defense,
        serving=True,
        slices=8,
        ops_per_slice=4.0,
        engine=engine,
        inject_slice=3,
        inject_rows=2,
    )
    kwargs.update(overrides)
    return _run_defense_bakeoff(Scale.quick(), 0, **kwargs)


class TestVictimHealthMonitor:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(probe_interval=0)
        with pytest.raises(ValueError):
            HealthConfig(quarantine_slices=-1)
        with pytest.raises(ValueError):
            HealthConfig(inject_rows=0)

    def test_monitor_requires_model_victim(self):
        from repro.serving import ServingConfig, ServingSimulation

        with pytest.raises(ValueError, match="model victim"):
            ServingSimulation(
                ServingConfig(slices=2), health=HealthConfig()
            )

    def test_radar_detects_and_recovers_injection(self):
        health = _chaos_payload()["serving_phase"]["health"]
        assert health["injected_corruptions"] == 1
        assert health["all_injections_detected"]
        entry = health["injections"][0]
        assert entry["detection_latency_ns"] is not None
        assert entry["detected_slice"] >= entry["slice"]
        assert health["post_recovery_accuracy"] == health["clean_accuracy"]
        assert health["quarantines"] >= 1
        assert health["conserved"]

    def test_quarantine_sheds_book_as_integrity_fault(self):
        serving = _chaos_payload()["serving_phase"]
        health = serving["health"]
        assert health["shed_ops"] > 0
        reasons = set()
        for tenant in serving["sla"]["tenants"].values():
            reasons.update(tenant.get("shed", {}))
        assert "integrity_fault" in reasons
        assert (
            health["offered_ops"]
            == health["served_ops"] + health["shed_ops"]
        )

    def test_payload_bit_identical_across_engines(self):
        def neutral(payload):
            clean = copy.deepcopy(payload)
            clean["serving_phase"]["config"].pop("engine")
            return clean

        bulk = _chaos_payload(engine="bulk")
        events = _chaos_payload(engine="events")
        assert neutral(bulk) == neutral(events)

    def test_undefended_probe_misses_low_magnitude_corruption(self):
        """The bake-off's comparison story: without checksums, a
        low-magnitude flip slips past the accuracy probe."""
        health = _chaos_payload(defense="None")["serving_phase"]["health"]
        assert health["injected_corruptions"] == 1
        assert not health["all_injections_detected"]
        assert "radar" not in health


# ----------------------------------------------------------------------
# Defended attack path + canned set
# ----------------------------------------------------------------------
class TestDefendedAttackPath:
    def test_defense_section_only_when_named(self):
        undefended = run_attack_scenario(
            scale=Scale.quick(), attack="bfa", iterations=2
        )
        assert "defense" not in undefended  # payload shape preserved
        defended = run_attack_scenario(
            scale=Scale.quick(), attack="bfa", iterations=2,
            defense="RADAR",
        )
        section = defended["defense"]
        assert section["name"] == "RADAR"
        assert section["corruptions_detected"] > 0
        assert defended["final_accuracy"] == defended["clean_accuracy"]

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError):
            resolve_serving_defense("Tinfoil")

    def test_bakeoff_set_shape(self):
        scenarios = bakeoff_scenarios()
        names = [scenario.name for scenario in scenarios]
        assert len(names) == len(set(names))
        assert "bakeoff-bfa-radar" in names
        assert "bakeoff-serving-dnn-defender-ch2" in names
        assert names[-1] == "bakeoff-chaos-radar"
        chaos = dict(scenarios[-1].params)
        assert chaos["defense"] == "RADAR" and chaos["inject_slice"] >= 0


# ----------------------------------------------------------------------
# Nightly gate
# ----------------------------------------------------------------------
def _bakeoff_artifact() -> dict:
    return {
        "schema": BAKEOFF_SCHEMA,
        "chaos": {
            "injected_corruptions": 1,
            "injections_detected": 1,
            "all_injections_detected": True,
            "detection_latency_ns": [120.0],
            "accuracy_delta_pct": 0.0,
            "accuracy_budget_pct": 0.5,
        },
        "serving_cells": {
            "bakeoff-serving-radar-ch1": {
                "defense": "RADAR",
                "victim_flip_events": 50,
                "sla_fingerprint": {"requests": 100},
                "engine_check": {"identical": True},
            },
            "bakeoff-serving-dram-locker-ch1": {
                "defense": "DRAM-Locker",
                "victim_flip_events": 0,
                "sla_fingerprint": {"requests": 120},
                "engine_check": {"identical": True},
            },
        },
        "frontier": {
            "RADAR": {"worst_defended_accuracy": 95.0},
            "DRAM-Locker": {"worst_defended_accuracy": 99.0},
        },
    }


class TestBakeoffGate:
    def test_identical_artifacts_pass(self):
        report = compare_bakeoff(_bakeoff_artifact(), _bakeoff_artifact())
        assert report.ok, report.summary()

    def test_missed_injection_fails(self):
        current = _bakeoff_artifact()
        current["chaos"]["injections_detected"] = 0
        current["chaos"]["all_injections_detected"] = False
        assert not compare_bakeoff(current, _bakeoff_artifact()).ok

    def test_accuracy_over_budget_fails(self):
        current = _bakeoff_artifact()
        current["chaos"]["accuracy_delta_pct"] = 0.8
        assert not compare_bakeoff(current, _bakeoff_artifact()).ok

    def test_missing_detection_latency_fails(self):
        current = _bakeoff_artifact()
        current["chaos"]["detection_latency_ns"] = [None]
        assert not compare_bakeoff(current, _bakeoff_artifact()).ok

    def test_latency_growth_fails(self):
        current = _bakeoff_artifact()
        current["chaos"]["detection_latency_ns"] = [200.0]
        assert not compare_bakeoff(current, _bakeoff_artifact()).ok

    def test_engine_divergence_fails(self):
        current = _bakeoff_artifact()
        cell = current["serving_cells"]["bakeoff-serving-radar-ch1"]
        cell["engine_check"]["identical"] = False
        assert not compare_bakeoff(current, _bakeoff_artifact()).ok

    def test_locker_flip_drift_fails(self):
        current = _bakeoff_artifact()
        current["serving_cells"]["bakeoff-serving-dram-locker-ch1"][
            "victim_flip_events"
        ] = 1
        assert not compare_bakeoff(current, _bakeoff_artifact()).ok

    def test_sla_drift_fails(self):
        current = _bakeoff_artifact()
        current["serving_cells"]["bakeoff-serving-radar-ch1"][
            "sla_fingerprint"
        ] = {"requests": 99}
        assert not compare_bakeoff(current, _bakeoff_artifact()).ok

    def test_frontier_shrink_fails(self):
        current = _bakeoff_artifact()
        current["frontier"]["RADAR"]["worst_defended_accuracy"] = 80.0
        assert not compare_bakeoff(current, _bakeoff_artifact()).ok

    def test_missing_cell_fails(self):
        current = _bakeoff_artifact()
        del current["serving_cells"]["bakeoff-serving-dram-locker-ch1"]
        assert not compare_bakeoff(current, _bakeoff_artifact()).ok

    def test_missing_chaos_fails(self):
        current = _bakeoff_artifact()
        current["chaos"] = None
        assert not compare_bakeoff(current, _bakeoff_artifact()).ok
