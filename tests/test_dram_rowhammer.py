"""RowHammer model: thresholds, multiples, half-double, vulnerability."""

import numpy as np
import pytest

from repro.dram import AddressMapper, DRAMConfig, RowHammerModel, VulnerabilityMap
from repro.dram.rowhammer import double_sided_pair


@pytest.fixture()
def cfg():
    return DRAMConfig.tiny()


@pytest.fixture()
def mapper(cfg):
    return AddressMapper(cfg)


def make_model(cfg, mapper, trh=10, fraction=0.0, half_double=None):
    vuln = VulnerabilityMap(cfg, seed=3, weak_cell_fraction=fraction)
    return RowHammerModel(cfg, mapper, vuln, trh=trh, half_double_factor=half_double)


class TestThreshold:
    def test_no_event_below_threshold(self, cfg, mapper):
        model = make_model(cfg, mapper)
        for _ in range(9):
            assert model.on_activate(5, 0.0) == []

    def test_event_at_threshold_multiples(self, cfg, mapper):
        model = make_model(cfg, mapper)
        model.vulnerability.register_template(4, [1])
        events = []
        for _ in range(30):
            events += model.on_activate(5, 0.0)
        flips = [f for e in events for f in e.flips if f.row == 4]
        assert len(flips) == 3  # at activations 10, 20, 30

    def test_victims_are_both_neighbors(self, cfg, mapper):
        model = make_model(cfg, mapper)
        events = []
        for _ in range(10):
            events += model.on_activate(5, 0.0)
        assert events and sorted(events[0].victims) == [4, 6]

    def test_trh_must_be_positive(self, cfg, mapper):
        vuln = VulnerabilityMap(cfg)
        with pytest.raises(ValueError):
            RowHammerModel(cfg, mapper, vuln, trh=0)


class TestHalfDouble:
    def test_distance_two_ring_at_higher_threshold(self, cfg, mapper):
        model = make_model(cfg, mapper, trh=10, half_double=2.0)
        model.vulnerability.register_template(3, [0])  # distance 2 from row 5
        flips = []
        for _ in range(20):
            for event in model.on_activate(5, 0.0):
                flips += [f for f in event.flips if f.row == 3]
        assert len(flips) == 1  # only at activation 20

    def test_half_double_factor_validated(self, cfg, mapper):
        vuln = VulnerabilityMap(cfg)
        with pytest.raises(ValueError):
            RowHammerModel(cfg, mapper, vuln, trh=10, half_double_factor=0.5)


class TestResets:
    def test_reset_rows_clears_range(self, cfg, mapper):
        model = make_model(cfg, mapper)
        model.on_activate(5, 0.0)
        model.on_activate(70, 0.0)
        model.reset_rows(0, 64)
        assert model.activation_count(5) == 0
        assert model.activation_count(70) == 1

    def test_neutralize_victim_resets_aggressors(self, cfg, mapper):
        model = make_model(cfg, mapper)
        for _ in range(5):
            model.on_activate(5, 0.0)
        model.neutralize_victim(4)  # rows within radius 2 of row 4 reset
        assert model.activation_count(5) == 0

    def test_reset_all(self, cfg, mapper):
        model = make_model(cfg, mapper)
        model.on_activate(5, 0.0)
        model.reset_all()
        assert model.counters == {}


class TestVulnerabilityMap:
    def test_intrinsic_bits_deterministic(self, cfg):
        a = VulnerabilityMap(cfg, seed=7, weak_cell_fraction=0.01)
        b = VulnerabilityMap(cfg, seed=7, weak_cell_fraction=0.01)
        assert np.array_equal(a.intrinsic_weak_bits(12), b.intrinsic_weak_bits(12))

    def test_different_seeds_differ(self, cfg):
        a = VulnerabilityMap(cfg, seed=7, weak_cell_fraction=0.05)
        b = VulnerabilityMap(cfg, seed=8, weak_cell_fraction=0.05)
        assert not np.array_equal(
            a.intrinsic_weak_bits(12), b.intrinsic_weak_bits(12)
        )

    def test_fraction_zero_means_no_intrinsic_bits(self, cfg):
        vuln = VulnerabilityMap(cfg, weak_cell_fraction=0.0)
        assert vuln.intrinsic_weak_bits(3).size == 0

    def test_templates_merge_with_intrinsic(self, cfg):
        vuln = VulnerabilityMap(cfg, seed=1, weak_cell_fraction=0.01)
        intrinsic = set(vuln.intrinsic_weak_bits(9).tolist())
        vuln.register_template(9, [0, 1])
        combined = set(vuln.flippable_bits(9).tolist())
        assert combined == intrinsic | {0, 1}

    def test_clear_templates(self, cfg):
        vuln = VulnerabilityMap(cfg, weak_cell_fraction=0.0)
        vuln.register_template(9, [0])
        vuln.clear_templates(9)
        assert vuln.flippable_bits(9).size == 0

    def test_template_bounds_checked(self, cfg):
        vuln = VulnerabilityMap(cfg)
        with pytest.raises(ValueError):
            vuln.register_template(9, [cfg.row_bits])

    def test_fraction_validated(self, cfg):
        with pytest.raises(ValueError):
            VulnerabilityMap(cfg, weak_cell_fraction=1.5)


class TestDoubleSided:
    def test_pair_for_interior_victim(self, mapper):
        assert double_sided_pair(mapper, 10) == [9, 11]
