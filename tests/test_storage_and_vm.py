"""WeightStore layout/sync and the virtual-memory substrate."""

import pytest

from repro.controller import MemoryController
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.nn import QuantizedModel, WeightStore, resnet20
from repro.vm import (
    MMU,
    PTE,
    PTEFlags,
    PageFault,
    PageTable,
    decode_pte,
    encode_pte,
    pfn_bit_positions,
    pte_from_bytes,
    pte_to_bytes,
)


@pytest.fixture(scope="module")
def qmodel():
    model = resnet20(num_classes=4, width=4, input_hw=8, seed=0)
    return QuantizedModel(model)


def make_device():
    cfg = DRAMConfig.small()
    return DRAMDevice(
        cfg, vulnerability=VulnerabilityMap(cfg, weak_cell_fraction=0.0), trh=100
    )


class TestWeightStoreLayout:
    def test_guard_layout_interleaves(self, qmodel):
        device = make_device()
        store = WeightStore(device, qmodel, guard_rows=True)
        mapper = device.mapper
        for row in store.data_rows:
            assert mapper.row_address(row).row % 2 == 0
        # every neighbor of a data row is a guard, never another data row
        data = set(store.data_rows)
        for row in store.data_rows:
            assert not data.intersection(mapper.neighbors(row))

    def test_contiguous_layout_packs(self, qmodel):
        device = make_device()
        store = WeightStore(device, qmodel, guard_rows=False)
        locals_ = [device.mapper.row_address(r).row for r in store.data_rows[:4]]
        assert locals_ == [0, 1, 2, 3]

    def test_dram_holds_exact_payload(self, qmodel):
        device = make_device()
        store = WeightStore(device, qmodel, guard_rows=True)
        name, tensor = next(iter(qmodel.tensors.items()))
        row, row_bit = store.bit_location(name, 0, 0)
        byte = device.peek_bytes(row, row_bit // 8, 1)[0]
        assert byte == tensor.to_bytes()[0]

    def test_bit_location_round_trip(self, qmodel):
        device = make_device()
        store = WeightStore(device, qmodel, guard_rows=True)
        name = list(qmodel.tensors)[1]
        for index in (0, 7, qmodel.tensors[name].q.size - 1):
            for bit in (0, 7):
                row, row_bit = store.bit_location(name, index, bit)
                assert store.locate_bit(row, row_bit) == (name, index, bit)

    def test_locate_bit_outside_weights_is_none(self, qmodel):
        device = make_device()
        store = WeightStore(device, qmodel, guard_rows=True)
        guard = store.guard_row_indices[0]
        assert store.locate_bit(guard, 0) is None

    def test_store_too_big_raises(self):
        big = QuantizedModel(resnet20(num_classes=4, width=16, input_hw=8, seed=0))
        with pytest.raises(RuntimeError):
            WeightStore(
                DRAMDevice(DRAMConfig.tiny(), trh=100), big, guard_rows=True
            )


class TestWeightStoreSync:
    def test_flip_in_dram_reaches_model(self, qmodel):
        device = make_device()
        store = WeightStore(device, qmodel, guard_rows=True)
        name = next(iter(qmodel.tensors))
        tensor = qmodel.tensors[name]
        before = int(tensor.q.reshape(-1)[0])
        row, row_bit = store.bit_location(name, 0, 7)
        # a disturbance flip lands in DRAM...
        device.vulnerability.register_template(row, [row_bit])
        aggressor = device.mapper.neighbors(row)[0]
        for _ in range(device.timing.trh):
            device.activate(aggressor)
        assert store.sync_model()
        after = int(tensor.q.reshape(-1)[0])
        assert after != before

    def test_sync_is_noop_when_clean(self, qmodel):
        device = make_device()
        store = WeightStore(device, qmodel, guard_rows=True)
        store.sync_model()
        assert not store.sync_model()

    def test_inference_requests_cover_data_rows(self, qmodel):
        device = make_device()
        store = WeightStore(device, qmodel, guard_rows=True)
        requests = store.inference_requests()
        assert [r.row for r in requests] == store.data_rows
        assert all(r.privileged for r in requests)


class TestPTE:
    def test_encode_decode_round_trip(self):
        pte = PTE(valid=True, pfn=0x1234, flags=PTEFlags(writable=False))
        assert decode_pte(encode_pte(pte)) == pte

    def test_byte_image_round_trip(self):
        value = encode_pte(PTE(valid=True, pfn=77))
        assert pte_from_bytes(pte_to_bytes(value)) == value

    def test_pfn_bit_positions(self):
        # PFN starts at bit 12 of the PTE; entry at byte offset 16.
        assert pfn_bit_positions(16, 0) == 16 * 8 + 12
        assert pfn_bit_positions(0, 3) == 15

    def test_pfn_range_checked(self):
        with pytest.raises(ValueError):
            encode_pte(PTE(valid=True, pfn=1 << 40))


class TestPageTable:
    def make_table(self):
        device = make_device()
        mapper = device.mapper
        bank = device.config.banks - 1
        rows = [mapper.row_index((bank, 0, i)) for i in range(0, 12, 2)]
        return device, PageTable(device, rows)

    def test_map_and_walk(self):
        device, table = self.make_table()
        table.map(5, 1234)
        assert table.walk(5).pfn == 1234

    def test_unmapped_vpn_faults(self):
        device, table = self.make_table()
        table.map(5, 1234)
        with pytest.raises(PageFault):
            table.walk(6)

    def test_unmap(self):
        device, table = self.make_table()
        table.map(5, 1234)
        table.unmap(5)
        with pytest.raises(PageFault):
            table.walk(5)

    def test_pte_corruption_via_dram_changes_walk(self):
        """Flipping a stored PFN bit redirects translation -- the PTA core."""
        device, table = self.make_table()
        table.map(5, 0b1000)
        row, offset = table.pte_location(5)
        device.flip_bit(row, pfn_bit_positions(offset, 0))
        assert table.walk(5).pfn == 0b1001

    def test_table_rows_reported(self):
        device, table = self.make_table()
        table.map(0, 1)
        table.map(200, 2)  # second L2 table
        assert len(table.table_rows()) == 3  # root + two leaves

    def test_out_of_rows(self):
        device = make_device()
        table = PageTable(device, [device.mapper.row_index((3, 0, 0))])
        with pytest.raises(RuntimeError):
            table.map(0, 1)


class TestMMU:
    def test_translate_through_controller(self):
        device, table = TestPageTable().make_table()
        controller = MemoryController(device)
        mmu = MMU(controller, table)
        table.map(9, 4321)
        assert mmu.translate(9) == 4321
        assert mmu.walks == 1
        assert device.stats.reads >= 2  # two PTE reads

    def test_tlb_caches_translations(self):
        device, table = TestPageTable().make_table()
        controller = MemoryController(device)
        mmu = MMU(controller, table, tlb_entries=4)
        table.map(9, 4321)
        mmu.translate(9)
        mmu.translate(9)
        assert mmu.tlb_hits == 1
        assert mmu.walks == 1

    def test_flush_tlb_forces_rewalk(self):
        device, table = TestPageTable().make_table()
        controller = MemoryController(device)
        mmu = MMU(controller, table, tlb_entries=4)
        table.map(9, 4321)
        mmu.translate(9)
        mmu.flush_tlb()
        mmu.translate(9)
        assert mmu.walks == 2
