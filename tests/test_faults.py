"""Deterministic fault injection: worker faults, channel faults, and
the degraded-but-conserving serving paths they exercise.

The acceptance properties from the fleet-orchestration issue:

* a crash-once cell recovers via supervised retry and its payload is
  identical to the fault-free run (faults perturb *scheduling*, never
  results);
* an always-crashing cell quarantines with its attempt history instead
  of poisoning the matrix;
* a hung cell times out, the pool is rebuilt, and sibling cells still
  complete;
* a serving run with an injected channel fault degrades gracefully:
  ``offered == served + shed`` with the ``channel_fault`` shed reason,
  zero victim flips under DRAM-Locker, and the replay-equivalence
  contract still holds under the fault;
* the channel scaler fails over: tenants homed on the failed channel
  are force-spilled onto spares.
"""

import threading

import pytest

from repro.eval.faults import (
    CRASH_EXIT_CODE,
    ChannelFault,
    FaultPlan,
    FaultSpec,
)
from repro.eval.harness import (
    Scale,
    Scenario,
    SupervisorConfig,
    _POOL_STATE,
    run_matrix,
    shutdown_worker_pool,
)
from repro.serving import (
    LiveServingError,
    LiveServer,
    ScalingConfig,
    ServingConfig,
    ServingSimulation,
    record_serving_trace,
    replay_neutral,
    replay_trace,
    run_serving,
)

QUICK = Scale.quick()

#: Cheap cells for the chaos matrices (sub-second each).
CHAOS_MATRIX = [
    Scenario("chaos-a", "rowclone", QUICK),
    Scenario("chaos-b", "fig7b", QUICK),
    Scenario("chaos-c", "sec4d", QUICK, params=(("trials", 200),)),
]

FAST_SUPERVISE = SupervisorConfig(
    retries=2, backoff_base_s=0.01, poll_interval_s=0.005
)


# ----------------------------------------------------------------------
# FaultPlan semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_pinned_cell_first_match_wins(self):
        plan = FaultPlan(
            cells=(
                ("chaos-a", FaultSpec("crash")),
                ("chaos-*", FaultSpec("slow")),
            )
        )
        assert plan.worker_fault("chaos-a", attempt=0).kind == "crash"
        assert plan.worker_fault("chaos-b", attempt=0).kind == "slow"
        assert plan.worker_fault("other", attempt=0) is None

    def test_until_attempt_window(self):
        plan = FaultPlan(
            cells=(("x", FaultSpec("crash", until_attempt=2)),)
        )
        assert plan.worker_fault("x", attempt=0) is not None
        assert plan.worker_fault("x", attempt=1) is not None
        assert plan.worker_fault("x", attempt=2) is None

    def test_rates_are_seeded_and_deterministic(self):
        plan = FaultPlan(seed=7, crash_rate=0.5, slow_rate=0.3)
        names = [f"cell-{i}" for i in range(40)]
        first = [plan.worker_fault(n, 0) and plan.worker_fault(n, 0).kind
                 for n in names]
        second = [plan.worker_fault(n, 0) and plan.worker_fault(n, 0).kind
                  for n in names]
        assert first == second
        assert "crash" in first and None in first  # both bands hit

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("meltdown")
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            ChannelFault(channel=0, kind="vanish")
        with pytest.raises(ValueError):
            ChannelFault(channel=-1)


# ----------------------------------------------------------------------
# Worker faults through the supervised matrix
# ----------------------------------------------------------------------
class TestWorkerFaults:
    def test_crash_once_recovers_and_results_unchanged(self):
        clean = run_matrix(CHAOS_MATRIX, workers=2, tag="clean")
        plan = FaultPlan(
            cells=(("chaos-b", FaultSpec("crash", until_attempt=1)),)
        )
        chaotic = run_matrix(
            CHAOS_MATRIX,
            workers=2,
            tag="crash-once",
            supervise=FAST_SUPERVISE,
            faults=plan,
        )
        assert chaotic.attempt_log["chaos-b"] == ["worker-lost"]
        assert [r.payload for r in chaotic.results] == [
            r.payload for r in clean.results
        ]
        assert chaotic.as_artifact()["results"] == (
            clean.as_artifact()["results"]
        )

    def test_crash_always_quarantines_without_poisoning_siblings(self):
        plan = FaultPlan(
            cells=(("chaos-a", FaultSpec("crash", until_attempt=99)),)
        )
        matrix = run_matrix(
            CHAOS_MATRIX,
            workers=2,
            tag="crash-always",
            supervise=FAST_SUPERVISE,
            faults=plan,
        )
        by_name = {r.name: r for r in matrix.results}
        victim = by_name["chaos-a"]
        assert victim.quarantined and not victim.ok
        assert victim.attempts == ("worker-lost",) * 3  # retries=2 -> 3
        assert "quarantined after 3 attempt(s)" in victim.error
        assert by_name["chaos-b"].ok and by_name["chaos-c"].ok
        # The pool survives for the next matrix.
        again = run_matrix(CHAOS_MATRIX, workers=2, tag="after-chaos")
        assert all(r.ok for r in again.results)

    def test_hang_times_out_and_siblings_complete(self):
        plan = FaultPlan(
            cells=(
                ("chaos-c", FaultSpec("hang", until_attempt=99,
                                      delay_s=60.0)),
            )
        )
        matrix = run_matrix(
            CHAOS_MATRIX,
            workers=2,
            tag="hang",
            supervise=SupervisorConfig(
                timeout_s=0.6,
                retries=1,
                backoff_base_s=0.01,
                poll_interval_s=0.005,
            ),
            faults=plan,
        )
        by_name = {r.name: r for r in matrix.results}
        hung = by_name["chaos-c"]
        assert hung.quarantined
        assert hung.attempts == ("timeout", "timeout")
        assert by_name["chaos-a"].ok and by_name["chaos-b"].ok

    def test_serial_path_ignores_faults(self):
        # A crash fault on the in-process path would exit the test
        # runner itself; the serial matrix documents that faults are a
        # worker-pool feature and ignores the plan.
        plan = FaultPlan(cells=(("chaos-a", FaultSpec("crash", 99)),))
        matrix = run_matrix(
            CHAOS_MATRIX[:1], workers=1, tag="serial", faults=plan
        )
        assert matrix.results[0].ok

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE != 0


# ----------------------------------------------------------------------
# Pool lifecycle hardening
# ----------------------------------------------------------------------
class TestPoolLifecycle:
    def test_healthy_shutdown_closes_and_resets(self):
        run_matrix(CHAOS_MATRIX[:1], workers=2, tag="pre-shutdown")
        assert _POOL_STATE["pool"] is not None
        shutdown_worker_pool()  # close/join, not terminate
        assert _POOL_STATE["pool"] is None
        assert _POOL_STATE["events"] is None
        assert _POOL_STATE["segments"] == []
        # The next matrix transparently rebuilds.
        matrix = run_matrix(CHAOS_MATRIX[:1], workers=2, tag="rebuilt")
        assert matrix.results[0].ok

    def test_graceful_shutdown_after_worker_loss_does_not_hang(self):
        # A crashed worker leaves its apply_async entry in the pool's
        # result cache forever; a close()+join() shutdown would block
        # in _handle_results waiting for it.  shutdown_worker_pool must
        # detect the abandoned entries and fall back to terminate.
        faults = FaultPlan(
            cells=(("chaos-a", FaultSpec("crash", until_attempt=99)),)
        )
        matrix = run_matrix(
            CHAOS_MATRIX[:2],
            workers=2,
            tag="abandoned",
            supervise=FAST_SUPERVISE,
            faults=faults,
        )
        assert matrix.results[0].quarantined
        done = threading.Event()

        def graceful():
            shutdown_worker_pool()
            done.set()

        worker = threading.Thread(target=graceful, daemon=True)
        worker.start()
        worker.join(timeout=30.0)
        if not done.is_set():
            shutdown_worker_pool(force=True)
            pytest.fail("graceful shutdown hung on abandoned handles")
        assert _POOL_STATE["pool"] is None

    def test_shutdown_releases_segments_without_a_pool(self):
        # The partial-creation contract: segments registered before a
        # Pool() that then failed (pool is None, segments populated)
        # must still be released.
        class FakeSegment:
            closed = unlinked = False

            def close(self):
                self.closed = True

            def unlink(self):
                self.unlinked = True

        shutdown_worker_pool(force=True)
        segment = FakeSegment()
        _POOL_STATE["segments"] = [segment]
        try:
            shutdown_worker_pool()
        finally:
            _POOL_STATE["segments"] = [
                s for s in _POOL_STATE["segments"]
                if not isinstance(s, FakeSegment)
            ]
        assert segment.closed and segment.unlinked
        assert _POOL_STATE["segments"] == []


# ----------------------------------------------------------------------
# Channel faults in the serving stack
# ----------------------------------------------------------------------
def _fault_config(**overrides) -> ServingConfig:
    defaults = dict(
        tenants=3, channels=2, slices=8, ops_per_slice=4.0, seed=0
    )
    defaults.update(overrides)
    return ServingConfig(**defaults)


class TestChannelFaults:
    def test_fail_fault_conserves_and_protects(self):
        fault = ChannelFault(channel=1, kind="fail", at_slice=3)
        payload = run_serving(_fault_config(), fault=fault)
        section = payload["fault"]
        assert section["active"] and section["failed_channels"] == [1]
        assert section["conserved"]
        assert section["shed_ops"] > 0
        assert (
            section["offered_ops"]
            == section["served_ops"] + section["shed_ops"]
        )
        assert payload["victim"]["victim_flip_events"] == 0
        # Tenant books carry the op sheds; the victim-owner/attacker
        # books record their own skipped slice work under the same
        # reason and are excluded from the op tally.
        booked = sum(
            book.get("shed", {}).get("channel_fault", 0)
            for name, book in payload["sla"]["tenants"].items()
            if name.startswith("tenant-")
        )
        assert booked == section["shed_ops"]

    def test_fault_free_payload_shape_unchanged(self):
        config = _fault_config()
        assert run_serving(config) == run_serving(config, fault=None)
        assert "fault" not in run_serving(config)

    def test_replay_equivalence_holds_under_fault(self):
        config = _fault_config(channels=2)
        trace = record_serving_trace(config)
        fault = ChannelFault(channel=1, kind="fail", at_slice=2)
        closed = run_serving(config, fault=fault)
        replayed = replay_trace(trace, config=config, fault=fault)
        assert replay_neutral(replayed) == replay_neutral(closed)

    def test_stall_fault_inflates_makespan(self):
        config = _fault_config(channels=2)
        clean = run_serving(config)
        stalled = run_serving(
            config,
            fault=ChannelFault(
                channel=0, kind="stall", at_slice=0, stall_ns=5e7
            ),
        )
        assert stalled["makespan_ns"] > clean["makespan_ns"]
        assert stalled["fault"]["kind"] == "stall"
        assert stalled["fault"]["conserved"]

    def test_fault_channel_must_exist(self):
        with pytest.raises(ValueError):
            ServingSimulation(
                _fault_config(channels=2),
                fault=ChannelFault(channel=5),
            )

    def test_scaler_fails_over_homed_tenants(self):
        config = _fault_config(
            channels=2,
            tenants=4,
            policy="block",
            scaling=ScalingConfig(max_channels=4, p99_target_ns=1e6),
        )
        fault = ChannelFault(channel=1, kind="fail", at_slice=2)
        payload = run_serving(config, fault=fault)
        scaling = payload["scaling"]
        assert scaling.get("forced"), "no tenant was force-spilled"
        # Spilled replicas are served on spares, not shed wholesale:
        # conservation holds and some ops were still served post-fault.
        assert payload["fault"]["conserved"]
        assert payload["fault"]["served_ops"] > 0


# ----------------------------------------------------------------------
# Live serving under faults and failures
# ----------------------------------------------------------------------
class TestLiveFaults:
    def test_live_run_conserves_under_channel_fault(self):
        config = _fault_config(channels=2)
        trace = record_serving_trace(config)
        fault = ChannelFault(channel=1, kind="fail", at_slice=2)
        sim = ServingSimulation(config, fault=fault)
        speedup = max(trace.duration_s / 0.2, 1e-6)
        server = LiveServer(sim, trace, speedup=speedup)
        payload = server.run()
        pacing = payload["live"]["pacing"]
        assert pacing["offered"] == pacing["served"] + pacing["shed"]
        assert payload["fault"]["conserved"]

    def test_executor_failure_joins_ingestion_and_reports_context(self):
        config = _fault_config(channels=1)
        trace = record_serving_trace(config)
        sim = ServingSimulation(config)

        def explode(*args, **kwargs):
            raise RuntimeError("backend on fire")

        sim.serve_op = explode
        server = LiveServer(sim, trace, speedup=1e6)
        before = threading.active_count()
        with pytest.raises(LiveServingError) as info:
            server.run()
        assert info.value.context["phase"] == "executor"
        assert "backend on fire" in info.value.context["error"]
        assert not info.value.context["ingest_alive"]
        assert threading.active_count() == before  # no leaked thread
