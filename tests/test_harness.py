"""The parallel scenario harness: determinism, seeds, artifacts."""

import json

import pytest

from repro.attacks import available_attacks
from repro.eval import (
    MatrixFailure,
    Scale,
    Scenario,
    derive_seed,
    run_matrix,
    run_scenario,
)
from repro.eval.harness import (
    DEFENSE_BUILDERS,
    SCENARIO_RUNNERS,
    attack_scenarios,
    cheap_scenarios,
    quick_scenarios,
    smoke_scenarios,
)

QUICK = Scale.quick()

TINY_MATRIX = [
    Scenario("mc", "sec4d", QUICK, seed=0, params=(("trials", 500),)),
    Scenario("rowclone", "rowclone", QUICK),
    Scenario("fig7b", "fig7b", QUICK),
    Scenario("relock", "ablation_relock", QUICK, seed=3,
             params=(("intervals", (60, 400)),)),
]


class TestSeeds:
    def test_derived_seed_is_stable(self):
        assert derive_seed("fig8-resnet20") == derive_seed("fig8-resnet20")
        assert derive_seed("fig8-resnet20") != derive_seed("fig8-vgg11")
        assert derive_seed("x", base_seed=1) != derive_seed("x", base_seed=2)

    def test_explicit_seed_wins(self):
        scenario = Scenario("s", "rowclone", QUICK, seed=42)
        assert scenario.resolved_seed(base_seed=7) == 42

    def test_derived_seed_independent_of_matrix_order(self):
        a = Scenario("alpha", "rowclone", QUICK)
        b = Scenario("beta", "rowclone", QUICK)
        assert a.resolved_seed() == Scenario("alpha", "fig7b", QUICK).resolved_seed()
        assert a.resolved_seed() != b.resolved_seed()


class TestRunScenario:
    def test_payload_matches_direct_runner(self):
        result = run_scenario(TINY_MATRIX[1])
        assert result.ok
        from repro.eval import run_rowclone_savings

        assert result.payload == run_rowclone_savings()

    def test_unknown_runner_reports_error(self):
        result = run_scenario(Scenario("bad", "nope", QUICK))
        assert not result.ok
        assert "unknown runner" in result.error

    def test_runner_exception_is_captured(self):
        result = run_scenario(
            Scenario("boom", "fig8", QUICK, params=(("arch", "nonsense"),))
        )
        assert not result.ok
        assert "nonsense" in result.error


class TestRunMatrix:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_matrix([TINY_MATRIX[0], TINY_MATRIX[0]], workers=1)

    def test_serial_matrix_and_artifact(self, tmp_path):
        matrix = run_matrix(
            TINY_MATRIX, workers=1, tag="tiny", artifact_dir=str(tmp_path)
        )
        assert not matrix.failures
        assert matrix.workers == 1
        path = tmp_path / "BENCH_tiny.json"
        assert path.exists()
        artifact = json.loads(path.read_text())
        assert artifact["schema"] == "dram-locker-bench/1"
        assert set(artifact["results"]) == {s.name for s in TINY_MATRIX}
        assert artifact["timing"]["per_scenario_s"].keys() == artifact["results"].keys()
        # Lookup helper
        assert matrix["mc"].payload["rows"][0]["trials"] == 500

    def test_same_seed_gives_identical_artifact(self, tmp_path):
        first = run_matrix(TINY_MATRIX, workers=1, tag="a",
                           artifact_dir=str(tmp_path))
        second = run_matrix(TINY_MATRIX, workers=1, tag="b",
                            artifact_dir=str(tmp_path))
        doc_a = first.as_artifact()
        doc_b = second.as_artifact()
        # Everything except wall-clock timing is deterministic.
        assert doc_a["results"] == doc_b["results"]
        assert doc_a["scenarios"] == doc_b["scenarios"]

    def test_parallel_results_equal_serial(self):
        serial = run_matrix(TINY_MATRIX, workers=1, tag="s")
        parallel = run_matrix(TINY_MATRIX, workers=2, tag="p")
        assert parallel.workers == 2
        assert serial.as_artifact()["results"] == parallel.as_artifact()["results"]

    def test_failure_does_not_poison_matrix(self):
        scenarios = [
            TINY_MATRIX[1],
            Scenario("bad", "fig8", QUICK, params=(("arch", "nope"),)),
        ]
        matrix = run_matrix(scenarios, workers=1)
        assert len(matrix.failures) == 1
        assert matrix["rowclone"].ok

    def test_strict_raises_on_failure(self, tmp_path):
        scenarios = [
            TINY_MATRIX[1],
            Scenario("bad", "fig8", QUICK, params=(("arch", "nope"),)),
        ]
        with pytest.raises(MatrixFailure, match="bad"):
            run_matrix(
                scenarios, workers=1, tag="strict",
                artifact_dir=str(tmp_path), strict=True,
            )
        # The artifact is still written (failures are recorded, not lost).
        assert (tmp_path / "BENCH_strict.json").exists()

    def test_strict_passes_clean_matrix(self):
        matrix = run_matrix([TINY_MATRIX[1]], workers=1, strict=True)
        assert not matrix.failures


class TestCannedSets:
    def test_sets_are_well_formed(self):
        for scenarios in (
            cheap_scenarios(),
            smoke_scenarios(),
            quick_scenarios(),
            attack_scenarios(),
        ):
            names = [s.name for s in scenarios]
            assert len(set(names)) == len(names)
            for scenario in scenarios:
                assert scenario.runner in SCENARIO_RUNNERS, scenario

    def test_smoke_superset_of_cheap(self):
        cheap = {s.name for s in cheap_scenarios()}
        smoke = {s.name for s in smoke_scenarios()}
        assert cheap < smoke

    def test_defense_builders_cover_locker(self):
        assert "DRAM-Locker" in DEFENSE_BUILDERS

    def test_attack_set_covers_every_registered_attack(self):
        """Register an attack, and the matrix picks it up -- both sides
        of the defense axis, all sharing one victim seed (the cache)."""
        scenarios = attack_scenarios()
        covered = {dict(s.params)["attack"] for s in scenarios}
        assert covered == set(available_attacks())
        assert all(s.seed == 0 for s in scenarios)
        for name in available_attacks():
            variants = {
                dict(s.params)["protected"]
                for s in scenarios
                if dict(s.params)["attack"] == name
            }
            assert variants == {False, True}


class TestMatrixCLIExitCodes:
    """`python -m repro.eval matrix` must fail loudly, not just record
    scenario errors in the artifact."""

    def _with_bad_set(self, monkeypatch):
        from repro.eval import harness

        bad = [Scenario("boom", "fig8", QUICK, params=(("arch", "nope"),))]
        monkeypatch.setitem(harness._SCENARIO_SETS, "bad", lambda scale: bad)

    def test_harness_cli_nonzero_on_failure(self, monkeypatch, capsys, tmp_path):
        from repro.eval.harness import main as harness_main

        self._with_bad_set(monkeypatch)
        rc = harness_main(
            ["--set", "bad", "--workers", "1", "--out", str(tmp_path)]
        )
        assert rc != 0
        out = capsys.readouterr().out
        assert "FAILED" in out and "boom" in out
        # The artifact still records the failure for post-mortems.
        artifact = json.loads((tmp_path / "BENCH_bad.json").read_text())
        assert "error" in artifact["results"]["boom"]

    def test_eval_main_propagates_matrix_exit(self, monkeypatch, capsys):
        from repro.eval.__main__ import main as eval_main

        self._with_bad_set(monkeypatch)
        assert eval_main(["matrix", "--set", "bad", "--workers", "1"]) != 0

    def test_harness_cli_zero_on_success(self, monkeypatch, capsys):
        from repro.eval import harness

        good = [TINY_MATRIX[1]]
        monkeypatch.setitem(harness._SCENARIO_SETS, "good", lambda scale: good)
        assert harness.main(["--set", "good", "--workers", "1"]) == 0


class TestCampaignRunner:
    def test_locker_campaign_blocks(self):
        result = run_scenario(
            Scenario(
                "c", "defense_campaign", QUICK, seed=0,
                params=(("defense", "DRAM-Locker"), ("trh", 200)),
            )
        )
        assert result.ok
        assert not result.payload["flipped"]
        assert result.payload["blocked"] > 0

    def test_undefended_campaign_flips(self):
        result = run_scenario(
            Scenario(
                "c", "defense_campaign", QUICK, seed=0,
                params=(("defense", "None"), ("trh", 200)),
            )
        )
        assert result.ok
        assert result.payload["flipped"]


class TestDefendedHammerRunner:
    def _payload(self, defense, engine, trh=400):
        result = run_scenario(
            Scenario(
                "dh", "defended_hammer", QUICK, seed=0,
                params=(
                    ("defense", defense), ("trh", trh),
                    ("victims", 1), ("engine", engine),
                ),
            )
        )
        assert result.ok, result.error
        return result.payload

    def test_engines_agree_and_defense_protects(self):
        def strip(payload):
            return {k: v for k, v in payload.items() if k != "engine"}

        bulk = self._payload("Graphene", "bulk")
        scalar = self._payload("Graphene", "scalar")
        assert strip(bulk) == strip(scalar)
        assert bulk["protected_bits_flipped"] == 0
        assert bulk["defense_actions"] > 0

    def test_undefended_campaign_flips_the_bit(self):
        payload = self._payload("None", "bulk")
        assert payload["protected_bits_flipped"] == 1

    def test_locker_cell_blocks_everything(self):
        payload = self._payload("DRAM-Locker", "bulk")
        assert payload["protected_bits_flipped"] == 0
        assert all(o["issued"] == 0 for o in payload["outcomes"])
        assert all(o["blocked"] > 0 for o in payload["outcomes"])

    def test_unknown_defense_reported(self):
        result = run_scenario(
            Scenario(
                "dh", "defended_hammer", QUICK, seed=0,
                params=(("defense", "nope"),),
            )
        )
        assert not result.ok
        assert "unknown defense" in result.error


class TestPersistentPoolAndProfiling:
    def test_pool_persists_across_matrices(self):
        from repro.eval import harness

        harness.shutdown_worker_pool()
        first = run_matrix(TINY_MATRIX, workers=2, tag="pp1")
        assert first.pool_startup_s > 0.0
        pool = harness._POOL_STATE["pool"]
        assert pool is not None
        second = run_matrix(TINY_MATRIX, workers=2, tag="pp2")
        assert second.pool_startup_s == 0.0
        assert harness._POOL_STATE["pool"] is pool
        assert (
            first.as_artifact()["results"] == second.as_artifact()["results"]
        )
        # A different worker count forces a rebuild.
        third = run_matrix(TINY_MATRIX, workers=3, tag="pp3")
        assert third.pool_startup_s > 0.0
        assert harness._POOL_STATE["pool"] is not pool
        harness.shutdown_worker_pool()

    def test_serial_matrix_needs_no_pool(self):
        from repro.eval import harness

        harness.shutdown_worker_pool()
        matrix = run_matrix(TINY_MATRIX[:2], workers=1, tag="serial")
        assert matrix.pool_startup_s == 0.0
        assert harness._POOL_STATE["pool"] is None

    def test_prewarm_runs_in_parent_and_is_timed(self):
        seen = []
        matrix = run_matrix(
            TINY_MATRIX[:2], workers=1, tag="warm",
            prewarm=lambda: seen.append(True),
        )
        assert seen == [True]
        assert matrix.prewarm_s >= 0.0
        assert matrix.as_artifact()["timing"]["prewarm_s"] == matrix.prewarm_s

    def test_profile_flag_dumps_pstats(self, tmp_path):
        import pstats

        matrix = run_matrix(
            TINY_MATRIX[:2], workers=1, tag="prof",
            artifact_dir=str(tmp_path), profile_dir=str(tmp_path),
        )
        assert not matrix.failures
        for scenario in TINY_MATRIX[:2]:
            path = tmp_path / f"profile_{scenario.name}.pstats"
            assert path.exists()
            stats = pstats.Stats(str(path))
            assert stats.total_calls > 0

    def test_profile_cli_requires_out(self, capsys):
        from repro.eval.harness import main as harness_main

        with pytest.raises(SystemExit):
            harness_main(["--set", "cheap", "--profile"])
        assert "--profile requires --out" in capsys.readouterr().err

    def test_shared_memory_round_trip(self):
        """The spawn-path shipping: exported victim arrays re-attach
        bitwise through multiprocessing.shared_memory."""
        import numpy as np

        from repro.eval import harness
        from repro.nn import cache as nncache

        saved = nncache.memory_cache_entries()
        nncache.memory_cache_clear()
        try:
            state = {
                "param:w": np.arange(12, dtype=np.float32).reshape(3, 4),
                "buffer:b": np.ones(5, dtype=np.float32),
            }
            nncache.memory_cache_put("/cache/dir", "deadbeef", state)
            manifest, segments = harness._export_shared_victims()
            nncache.memory_cache_clear()
            try:
                harness._attach_shared_victims(manifest, unregister=False)
                entries = nncache.memory_cache_entries()
                attached = entries[("/cache/dir", "deadbeef")]
                assert set(attached) == set(state)
                for name, value in state.items():
                    assert np.array_equal(attached[name], value)
            finally:
                for segment in harness._ATTACHED_SEGMENTS:
                    try:
                        segment.close()
                    except OSError:
                        pass
                harness._ATTACHED_SEGMENTS.clear()
                for segment in segments:
                    segment.close()
                    segment.unlink()
        finally:
            nncache.memory_cache_clear()
            for (directory, key), value in saved.items():
                nncache.memory_cache_put(directory, key, value)

    def test_memory_layer_serves_hits_without_disk(self, tmp_path):
        from repro.nn import cache as nncache
        from repro.nn.cache import VictimCache

        saved = nncache.memory_cache_entries()
        nncache.memory_cache_clear()
        try:
            import numpy as np

            cache = VictimCache(directory=str(tmp_path), memory=True)
            state = {"param:w": np.zeros(3, dtype=np.float32)}
            cache.store("k", state)
            path = cache.path_for("k")
            assert (tmp_path / path.split("/")[-1]).exists()
            # Remove the npz: the memory layer must still hit.
            (tmp_path / path.split("/")[-1]).unlink()
            assert cache.load("k") is not None
            assert cache.stats.memory_hits == 1
            # A memory-less cache on the same directory now misses.
            cold = VictimCache(directory=str(tmp_path))
            assert cold.load("k") is None
        finally:
            nncache.memory_cache_clear()
            for (directory, key), value in saved.items():
                nncache.memory_cache_put(directory, key, value)

    def test_failed_dispatch_drops_poisoned_pool(self, monkeypatch):
        from repro.eval import harness

        harness.shutdown_worker_pool()

        class PoisonedPool:
            def apply_async(self, fn, args):
                raise RuntimeError("worker died")

            def terminate(self):
                pass

            def close(self):
                pass

            def join(self):
                pass

        harness._POOL_STATE.update(
            pool=PoisonedPool(),
            method="fork",
            processes=2,
            generation=harness._shareable_generation(),
        )
        with pytest.raises(RuntimeError, match="worker died"):
            run_matrix(TINY_MATRIX, workers=2, tag="poison")
        # The broken pool must not be reused by the next matrix.
        assert harness._POOL_STATE["pool"] is None
        recovered = run_matrix(TINY_MATRIX, workers=2, tag="recovered")
        assert not recovered.failures
        harness.shutdown_worker_pool()

    def test_memory_env_knob_disables_memory_layer(self, monkeypatch, tmp_path):
        from repro.nn.cache import CACHE_ENV_VAR, MEMORY_ENV_VAR, VictimCache

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        assert VictimCache.from_env().memory
        monkeypatch.setenv(MEMORY_ENV_VAR, "off")
        assert not VictimCache.from_env().memory
