"""Hardening baselines, window rollover, and sequence/locker integration."""

import numpy as np
import pytest

from repro.controller import Kind, MemRequest, MemoryController, Sequence
from repro.defenses import Graphene, TWiCE
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.locker import DRAMLocker, LockerConfig
from repro.nn import (
    TrainConfig,
    make_dataset,
    train_baseline,
    train_binary_weight,
    train_piecewise_clustering,
)


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(
        "hard", 4, hw=8, train_per_class=24, test_per_class=8, seed=5
    )


@pytest.fixture(scope="module")
def quick_config():
    return TrainConfig(epochs=4, batch_size=16, lr=0.1, seed=5)


class TestHardening:
    def test_baseline_trains(self, dataset, quick_config):
        hardened = train_baseline(dataset, quick_config, width=4)
        assert hardened.clean_accuracy > 60.0
        assert hardened.repair is None and not hardened.binary

    def test_piecewise_clustering_pulls_weights_to_two_clusters(
        self, dataset, quick_config
    ):
        hardened = train_piecewise_clustering(
            dataset, quick_config, clustering_lambda=0.05, width=4
        )
        # Strong clustering -> per-layer weight distribution concentrates
        # near +/- mean|W|: the normalized spread around the two centers
        # is small.
        layer = next(iter(hardened.model.weight_layers().values()))
        weight = layer.weight.value
        center = np.mean(np.abs(weight))
        spread = np.mean(np.abs(np.abs(weight) - center)) / (center + 1e-9)
        assert spread < 0.9

    def test_binary_weights_are_two_valued_in_forward(self, dataset, quick_config):
        hardened = train_binary_weight(dataset, quick_config, width=4)
        assert hardened.binary
        layer = next(iter(hardened.model.weight_layers().values()))
        effective = layer.effective_weight()
        assert len(np.unique(np.abs(np.round(effective, 6)))) == 1


class TestWindowRollover:
    def test_defense_tables_reset_each_refresh_window(self):
        cfg = DRAMConfig.tiny()
        device = DRAMDevice(
            cfg, vulnerability=VulnerabilityMap(cfg, weak_cell_fraction=0.0), trh=500
        )
        defense = Graphene(table_entries=8)
        controller = MemoryController(device, defense=defense)
        controller.hammer(9, count=20)
        assert defense._tables[0].estimate(9) == 20
        device.advance(device.timing.tref_w * 1.01)
        controller.hammer(9, count=1)
        assert defense._tables[0].estimate(9) == 1

    def test_twice_window_reset(self):
        cfg = DRAMConfig.tiny()
        device = DRAMDevice(
            cfg, vulnerability=VulnerabilityMap(cfg, weak_cell_fraction=0.0), trh=500
        )
        defense = TWiCE(prune_period=10_000)
        controller = MemoryController(device, defense=defense)
        controller.hammer(9, count=5)
        device.advance(device.timing.tref_w * 1.01)
        controller.hammer(9, count=1)
        assert defense._counts[9] == 1


class TestSequenceIntegration:
    def test_mixed_attacker_and_victim_traffic(self):
        cfg = DRAMConfig.tiny()
        device = DRAMDevice(
            cfg, vulnerability=VulnerabilityMap(cfg, weak_cell_fraction=0.0), trh=30
        )
        locker = DRAMLocker(device, LockerConfig(relock_interval=50))
        controller = MemoryController(device, locker=locker)
        weight_row = 20
        device.vulnerability.register_template(weight_row, [0])
        locker.protect([weight_row])

        seq = Sequence(controller)
        for _ in range(100):
            seq.push(MemRequest(Kind.ACT, 19))  # attacker
            seq.push(MemRequest(Kind.READ, weight_row, privileged=True))  # victim
        report = seq.drain()
        assert report.blocked == 100
        assert report.executed == 100
        assert report.blocked_latency_saved_ns > 0
        assert not device.peek_row(weight_row).any()

    def test_lock_table_occupancy_tracks_protection(self):
        cfg = DRAMConfig.small()
        device = DRAMDevice(cfg, trh=1000)
        locker = DRAMLocker(device)
        plan = locker.protect(range(0, 40, 2))
        assert len(locker.table) == len(plan.locked_rows)
        assert 0 < locker.table.occupancy < 0.01
