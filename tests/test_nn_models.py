"""Models, datasets, training, quantization."""

import numpy as np
import pytest

from repro.nn import (
    QuantizedModel,
    TrainConfig,
    make_dataset,
    resnet20,
    synthetic_cifar10,
    synthetic_cifar100,
    train,
    vgg11,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return make_dataset("tiny", 4, hw=8, train_per_class=24, test_per_class=12, seed=3)


@pytest.fixture(scope="module")
def trained(tiny_dataset):
    # Small batches: batch-norm running stats need enough updates to
    # converge before eval-mode inference is meaningful.
    model = resnet20(num_classes=4, width=4, input_hw=8, seed=1)
    history = train(
        model, tiny_dataset, TrainConfig(epochs=8, batch_size=16, lr=0.1, seed=1)
    )
    return model, history


class TestArchitectures:
    def test_resnet20_has_20_weight_layers_plus_shortcuts(self):
        model = resnet20(width=8, input_hw=16)
        convs_and_linears = model.weight_layers()
        # 1 stem + 18 block convs + 1 classifier + 2 projection shortcuts
        assert len(convs_and_linears) == 22

    def test_resnet20_forward_shape(self):
        model = resnet20(num_classes=10, width=4, input_hw=16)
        logits = model.forward(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert logits.shape == (2, 10)

    def test_vgg11_forward_shape(self):
        model = vgg11(num_classes=100, width=8, input_hw=32)
        logits = model.forward(np.zeros((2, 3, 32, 32), dtype=np.float32))
        assert logits.shape == (2, 100)

    def test_vgg11_has_8_convs_and_classifier(self):
        model = vgg11(width=8, input_hw=32)
        assert len(model.weight_layers()) == 9

    def test_parameter_names_unique_and_hierarchical(self):
        model = resnet20(width=4, input_hw=8)
        names = list(model.parameters())
        assert len(names) == len(set(names))
        assert any("conv1.weight" in n for n in names)

    def test_width_scales_parameters(self):
        small = resnet20(width=4, input_hw=8).parameter_count()
        big = resnet20(width=8, input_hw=8).parameter_count()
        assert 3 < big / small < 5  # ~4x parameters for 2x width


class TestDatasets:
    def test_shapes_and_determinism(self):
        a = make_dataset("d", 3, hw=8, train_per_class=4, test_per_class=2, seed=9)
        b = make_dataset("d", 3, hw=8, train_per_class=4, test_per_class=2, seed=9)
        assert a.train_x.shape == (12, 3, 8, 8)
        assert np.array_equal(a.train_x, b.train_x)

    def test_different_seeds_differ(self):
        a = make_dataset("d", 3, hw=8, seed=1)
        b = make_dataset("d", 3, hw=8, seed=2)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_presets(self):
        c10 = synthetic_cifar10(hw=8, train_per_class=2, test_per_class=2)
        c100 = synthetic_cifar100(hw=8)
        assert c10.num_classes == 10
        assert c100.num_classes == 100

    def test_attack_batch_sampling(self):
        ds = synthetic_cifar10(hw=8, train_per_class=2, test_per_class=4)
        x, y = ds.sample_attack_batch(16, np.random.default_rng(0))
        assert x.shape[0] == 16 and y.shape == (16,)

    def test_batches_cover_all_training_data(self):
        ds = make_dataset("d", 2, hw=8, train_per_class=10, test_per_class=2)
        seen = 0
        for x, _ in ds.batches(8, np.random.default_rng(0)):
            seen += x.shape[0]
        assert seen == 20


class TestTraining:
    def test_model_learns_synthetic_task(self, trained, tiny_dataset):
        model, history = trained
        assert history.final_accuracy > 80.0
        assert history.train_loss[-1] < history.train_loss[0]

    def test_untrained_model_scores_chance(self, tiny_dataset):
        model = resnet20(num_classes=4, width=4, input_hw=8, seed=2)
        accuracy = model.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert accuracy < 60.0  # 4 classes: chance is 25%


class TestQuantization:
    def test_quantization_preserves_accuracy(self, trained, tiny_dataset):
        model, _ = trained
        before = model.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        QuantizedModel(model)
        after = model.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert abs(before - after) < 5.0

    def test_dequantize_round_trip_error_bounded(self, trained):
        model, _ = trained
        qmodel = QuantizedModel(model)
        for name, layer in model.weight_layers().items():
            tensor = qmodel.tensors[name]
            assert np.max(np.abs(layer.weight.value - tensor.dequantize())) <= (
                tensor.scale / 2 + 1e-6
            )

    def test_flip_msb_changes_weight_sign_region(self, trained):
        model, _ = trained
        qmodel = QuantizedModel(model)
        name = next(iter(qmodel.tensors))
        tensor = qmodel.tensors[name]
        before = int(tensor.q.reshape(-1)[0])
        qmodel.flip_bit(name, 0, 7)
        after = int(tensor.q.reshape(-1)[0])
        assert after == ((before + 256) ^ 0x80) - 256 or after == before ^ -128

    def test_double_flip_restores(self, trained):
        model, _ = trained
        qmodel = QuantizedModel(model)
        name = next(iter(qmodel.tensors))
        before = qmodel.tensors[name].q.copy()
        qmodel.flip_bit(name, 3, 5)
        qmodel.flip_bit(name, 3, 5)
        assert np.array_equal(qmodel.tensors[name].q, before)

    def test_snapshot_restore(self, trained):
        model, _ = trained
        qmodel = QuantizedModel(model)
        snapshot = qmodel.snapshot()
        name = next(iter(qmodel.tensors))
        qmodel.flip_bit(name, 0, 7)
        qmodel.restore(snapshot)
        assert np.array_equal(qmodel.tensors[name].q, snapshot[name])

    def test_bytes_round_trip(self, trained):
        model, _ = trained
        qmodel = QuantizedModel(model)
        tensor = next(iter(qmodel.tensors.values()))
        image = tensor.to_bytes()
        tensor.from_bytes(image)
        assert np.array_equal(tensor.to_bytes(), image)
