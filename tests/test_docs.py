"""The docs cannot drift from the code: every fenced ``python`` block
in ``docs/*.md`` must execute, and every ``python -m repro.eval``
command in a fenced ``bash`` block must run (list-mode, so the check
stays seconds-scale).  CI runs this module as its docs job.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = os.path.join(REPO, "docs")

DOC_FILES = sorted(
    name for name in os.listdir(DOCS) if name.endswith(".md")
)

_FENCE = re.compile(r"```(\w+)\n(.*?)```", re.S)


def _blocks(path: str, language: str) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return [
        body for lang, body in _FENCE.findall(text) if lang == language
    ]


@pytest.fixture()
def pristine_registries():
    """Docs snippets register demo attacks/defenses/runners; none of
    that may leak into the rest of the suite."""
    from repro.attacks import registry
    from repro.eval import harness

    saved = (
        dict(registry.ATTACKS),
        dict(harness.DEFENDED_HAMMER_DEFENSES),
        dict(harness.SCENARIO_RUNNERS),
    )
    try:
        yield
    finally:
        registry.ATTACKS.clear()
        registry.ATTACKS.update(saved[0])
        harness.DEFENDED_HAMMER_DEFENSES.clear()
        harness.DEFENDED_HAMMER_DEFENSES.update(saved[1])
        harness.SCENARIO_RUNNERS.clear()
        harness.SCENARIO_RUNNERS.update(saved[2])


def test_docs_exist_and_are_linked():
    assert "ARCHITECTURE.md" in DOC_FILES
    assert "DEFENSES.md" in DOC_FILES
    assert "EXTENDING.md" in DOC_FILES
    assert "FLEET.md" in DOC_FILES
    assert "OBSERVABILITY.md" in DOC_FILES
    with open(os.path.join(REPO, "README.md"), encoding="utf-8") as handle:
        readme = handle.read()
    for name in (
        "docs/ARCHITECTURE.md",
        "docs/DEFENSES.md",
        "docs/EXTENDING.md",
        "docs/FLEET.md",
        "docs/OBSERVABILITY.md",
    ):
        assert name in readme, f"README does not link {name}"


@pytest.mark.parametrize("doc", DOC_FILES)
def test_python_snippets_execute(doc, pristine_registries):
    """Blocks of one file share a namespace (later blocks may build on
    earlier definitions), in order, like a reader following along."""
    blocks = _blocks(os.path.join(DOCS, doc), "python")
    namespace: dict = {}
    for index, block in enumerate(blocks):
        code = compile(block, f"{doc}[python #{index}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs


def _checkable(command: str) -> list[str] | None:
    """Rewrite one documented shell command into a fast, side-effect
    free invocation, or None when it is not a repro CLI call."""
    try:
        argv = shlex.split(command)
    except ValueError:
        return None
    if argv[:3] != ["python", "-m", "repro.eval"]:
        return None
    argv[0] = sys.executable
    cleaned: list[str] = []
    skip_value = False
    for arg in argv:
        if skip_value:
            skip_value = False
            continue
        if arg in ("--out", "--workers", "--tag"):
            skip_value = True
            continue
        cleaned.append(arg)
    if (
        "matrix" in cleaned or "runtable" in cleaned
    ) and "--list" not in cleaned:
        cleaned.append("--list")
    return cleaned


@pytest.mark.parametrize("doc", DOC_FILES)
def test_cli_invocations_run(doc):
    commands = [
        line.strip()
        for block in _blocks(os.path.join(DOCS, doc), "bash")
        for line in block.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    checkable = [argv for argv in map(_checkable, commands) if argv]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for argv in checkable:
        proc = subprocess.run(
            argv, cwd=REPO, env=env, capture_output=True, text=True,
            timeout=120,
        )
        assert proc.returncode == 0, (
            f"{doc}: `{' '.join(argv)}` failed:\n{proc.stderr}"
        )
