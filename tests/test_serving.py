"""Tier-1 coverage for the multi-tenant serving subsystem.

The three properties the issue pins down, plus the surrounding
plumbing:

* workload-generator determinism (same seed -> same stream; per-tenant
  streams independent of the tenant set, via name-derived seeds);
* streaming-percentile correctness: bit-equality with
  ``numpy.percentile`` on the materialized sample stream;
* single-channel ``ShardedMemorySystem`` equivalence to a bare
  ``MemoryController`` (identical stats, flips, stored bytes, and
  locker state);
* serving-cell determinism across harness worker counts, and the
  channel-scaling / protection acceptance criteria.
"""

import numpy as np
import pytest

from repro.controller.controller import MemoryController
from repro.controller.request import Kind, MemRequest, RequestRun
from repro.dram.config import DRAMConfig
from repro.dram.device import DRAMDevice
from repro.dram.vulnerability import VulnerabilityMap
from repro.eval.harness import Scenario, run_matrix, serving_scenarios
from repro.eval.regression import compare_serving
from repro.locker.locker import DRAMLocker, LockerConfig
from repro.serving import (
    ServingConfig,
    ShardedMemorySystem,
    StreamingPercentiles,
    TenantSink,
    TenantSpec,
    WorkloadConfig,
    WorkloadGenerator,
    make_tenants,
    run_serving,
    zipf_weights,
)


# ----------------------------------------------------------------------
# Workload generator determinism
# ----------------------------------------------------------------------
def _materialize(generator: WorkloadGenerator) -> list[tuple]:
    ops = []
    for _, slice_ops in generator.run():
        for op in slice_ops:
            rows = tuple(request.row for request in op.requests)
            kinds = tuple(request.kind.name for request in op.requests)
            ops.append((op.tenant, op.kind, rows, kinds))
    return ops


def _tenants(count: int = 3) -> list[TenantSpec]:
    return make_tenants(count, rows_first=64, rows_total=900)


class TestWorkloadGenerator:
    def test_same_seed_same_stream(self):
        config = WorkloadConfig(slices=6, seed=7)
        first = _materialize(WorkloadGenerator(_tenants(), config))
        second = _materialize(WorkloadGenerator(_tenants(), config))
        assert first == second
        assert first  # the stream is non-empty

    def test_different_seed_different_stream(self):
        first = _materialize(
            WorkloadGenerator(_tenants(), WorkloadConfig(slices=6, seed=1))
        )
        second = _materialize(
            WorkloadGenerator(_tenants(), WorkloadConfig(slices=6, seed=2))
        )
        assert first != second

    def test_tenant_streams_independent_of_tenant_set(self):
        """Per-tenant RNG derives from the tenant *name*: dropping one
        tenant must not perturb another's draws."""
        config = WorkloadConfig(slices=6, seed=3)
        all_three = _materialize(WorkloadGenerator(_tenants(3), config))
        # Rebuild with only tenant-1 (same spec as in the trio).
        spec = _tenants(3)[1]
        only_one = _materialize(WorkloadGenerator([spec], config))
        trio_tenant1 = [op for op in all_three if op[0] == spec.name]
        assert trio_tenant1 == only_one

    def test_bursty_and_closed_loop_modes(self):
        bursty = WorkloadGenerator(
            _tenants(), WorkloadConfig(slices=8, arrival="bursty", seed=0)
        )
        assert _materialize(bursty)
        closed = WorkloadGenerator(
            _tenants(2),
            WorkloadConfig(slices=3, ops_per_slice=2.0, closed_loop=True, seed=0),
        )
        ops = _materialize(closed)
        # Closed loop: every tenant issues exactly round(rate) ops/slice.
        per_tenant = {spec.name: 0 for spec in closed.tenants}
        for op in ops:
            per_tenant[op[0]] += 1
        assert all(count % 3 == 0 for count in per_tenant.values())

    def test_rows_stay_in_partition(self):
        spec = TenantSpec("t", rows=(100, 50))
        generator = WorkloadGenerator(
            [spec], WorkloadConfig(slices=10, ops_per_slice=8.0, seed=0)
        )
        for op in _materialize(generator):
            assert all(100 <= row < 150 for row in op[2])

    def test_mix_fractions_validated(self):
        with pytest.raises(ValueError):
            TenantSpec("t", rows=(0, 10), read_fraction=0.9, write_fraction=0.3)
        with pytest.raises(ValueError):
            WorkloadConfig(arrival="fractal")
        with pytest.raises(ValueError):
            WorkloadGenerator([], WorkloadConfig())

    def test_zipf_weights(self):
        weights = zipf_weights(5, 1.0)
        assert weights[0] == pytest.approx(weights[4] * 5.0)
        assert weights.sum() == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Streaming percentiles vs numpy
# ----------------------------------------------------------------------
class TestStreamingPercentiles:
    QS = (0.0, 5.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0)

    def _check_against_numpy(self, samples):
        tracker = StreamingPercentiles()
        for value in samples:
            tracker.add(value)
        materialized = np.asarray(samples, dtype=np.float64)
        for q in self.QS:
            assert tracker.percentile(q) == np.percentile(materialized, q), q

    def test_quantized_latency_stream(self):
        rng = np.random.default_rng(0)
        values = [47.01, 31.25, 58.59, 2.0, 47.01 + 1e-9]
        samples = [values[i] for i in rng.integers(len(values), size=4000)]
        self._check_against_numpy(samples)

    def test_continuous_stream(self):
        rng = np.random.default_rng(1)
        self._check_against_numpy(rng.normal(50.0, 10.0, size=777).tolist())

    def test_tiny_streams(self):
        self._check_against_numpy([3.5])
        self._check_against_numpy([2.0, 1.0])
        self._check_against_numpy([1.0, 1.0, 1.0])

    def test_bulk_counts_equal_scalar_adds(self):
        bulk = StreamingPercentiles()
        scalar = StreamingPercentiles()
        bulk.add(10.0, 500)
        bulk.add(20.0, 250)
        for _ in range(500):
            scalar.add(10.0)
        for _ in range(250):
            scalar.add(20.0)
        for q in self.QS:
            assert bulk.percentile(q) == scalar.percentile(q)

    def test_merge(self):
        rng = np.random.default_rng(2)
        samples = rng.choice([1.0, 2.5, 9.0], size=300).tolist()
        merged = StreamingPercentiles()
        half = StreamingPercentiles()
        for value in samples[:150]:
            merged.add(value)
        for value in samples[150:]:
            half.add(value)
        merged.merge(half)
        materialized = np.asarray(samples)
        assert merged.count == 300
        for q in self.QS:
            assert merged.percentile(q) == np.percentile(materialized, q)

    def test_errors(self):
        tracker = StreamingPercentiles()
        with pytest.raises(ValueError):
            tracker.percentile(50.0)
        tracker.add(1.0)
        with pytest.raises(ValueError):
            tracker.percentile(101.0)
        with pytest.raises(ValueError):
            tracker.add(1.0, count=-1)


# ----------------------------------------------------------------------
# Single-channel equivalence to a bare MemoryController
# ----------------------------------------------------------------------
def _traffic(rows_base: int) -> list[MemRequest]:
    requests = []
    for offset in range(6):
        requests.append(MemRequest(Kind.READ, rows_base + offset, size=128))
        requests.append(
            MemRequest(Kind.WRITE, rows_base + offset, privileged=True)
        )
    return requests


class TestSingleChannelEquivalence:
    def _bare(self, config, trh, seed, locker_config):
        device = DRAMDevice(
            config,
            vulnerability=VulnerabilityMap(
                config, seed=seed, weak_cell_fraction=0.0
            ),
            trh=trh,
        )
        locker = DRAMLocker(device, locker_config)
        controller = MemoryController(device, locker=locker)
        return device, controller, locker

    def test_identical_stats_flips_and_locker_state(self):
        config = DRAMConfig.small()
        trh, seed = 600, 5
        locker_config = LockerConfig(
            copy_error_rate=0.05, relock_interval=150, seed=seed
        )
        system = ShardedMemorySystem(
            config.with_channels(1),
            trh=trh,
            protected=True,
            locker_config=locker_config,
            seed=seed,
        )
        device, controller, locker = self._bare(
            config, trh, seed, locker_config
        )

        victim = 40
        system.register_template(victim, [5])
        device.vulnerability.register_template(victim, [5])
        system.protect([victim])
        locker.protect([victim])

        aggressors = system.neighbors(victim)
        assert aggressors == device.mapper.neighbors(victim)

        def drive(execute, hammer, read):
            for request in _traffic(200):
                execute(request)
            for aggressor in aggressors:
                hammer(aggressor, 2 * trh)
            read(aggressors[0], privileged=True)  # unlock-SWAP path
            for aggressor in aggressors:
                hammer(aggressor, trh // 2)

        drive(
            system.execute,
            lambda row, count: system.hammer_run(row, count),
            lambda row, privileged: system.read(row, privileged=privileged),
        )
        drive(
            controller.execute,
            lambda row, count: controller.hammer_run(row, count),
            lambda row, privileged: controller.read(row, privileged=privileged),
        )

        channel = system.channels[0]
        assert channel.device.stats.as_dict() == device.stats.as_dict()
        assert channel.device.now_ns == device.now_ns
        assert channel.device.rowhammer.counters == device.rowhammer.counters
        shard_locker = channel.locker
        assert shard_locker.exposure_summary() == locker.exposure_summary()
        assert shard_locker._where == locker._where
        assert shard_locker.exposed == locker.exposed
        assert shard_locker.rw_instructions == locker.rw_instructions
        for row in (victim, *aggressors, 200, 201):
            assert np.array_equal(
                system.peek_bytes(row, 0, 64), device.peek_bytes(row, 0, 64)
            )

    def test_multi_channel_routes_by_policy(self):
        config = DRAMConfig.tiny().with_channels(2)
        system = ShardedMemorySystem(config, policy="row", seed=0)
        assert system.system_rows == 2 * config.total_rows
        state, local = system.locate(5)
        assert (state.index, local) == (1, 2)
        assert system.system_row(1, 2) == 5
        # Adjacency stays channel-local.
        neighbors = system.neighbors(6)
        assert all(system.locate(row)[0].index == 0 for row in neighbors)
        system.execute(MemRequest(Kind.READ, 5))
        assert system.channels[1].device.stats.reads > 0
        assert system.channels[0].device.stats.reads == 0

    def test_tenant_sink_matches_batch_results(self):
        config = DRAMConfig.tiny()
        system = ShardedMemorySystem(config.with_channels(1), seed=0)
        reference = MemoryController(
            DRAMDevice(
                config,
                vulnerability=VulnerabilityMap(
                    config, seed=0, weak_cell_fraction=0.0
                ),
            )
        )
        requests = _traffic(8) + list(
            RequestRun(MemRequest(Kind.ACT, 30), 50)
        )
        sink = TenantSink()
        system.execute_stream(requests, sink)
        results = reference.execute_batch(requests)
        assert sink.summary.issued == len(results)
        assert sink.summary.blocked == 0
        assert sink.latency.count == len(results)
        latencies = np.asarray([r.latency_ns for r in results])
        for q in (50.0, 99.0, 99.9):
            assert sink.latency.percentile(q) == np.percentile(latencies, q)
        assert sink.summary.latency_ns == pytest.approx(latencies.sum())


# ----------------------------------------------------------------------
# The serving runner: determinism, scaling, protection
# ----------------------------------------------------------------------
class TestServingRuns:
    def test_payload_deterministic(self):
        config = ServingConfig(channels=2, slices=8, seed=11)
        assert run_serving(config) == run_serving(config)

    def test_worker_count_invariance(self):
        """The harness property, on serving cells: the results section
        is identical across worker counts (seed derivation included)."""
        cells = [
            Scenario(
                "serving-wc-locker", "serving", params=(
                    ("channels", 2), ("defense", "DRAM-Locker"),
                    ("slices", 8),
                ),
            ),
            Scenario(
                "serving-wc-open", "serving", params=(
                    ("channels", 1), ("defense", "None"), ("slices", 8),
                ),
            ),
        ]
        serial = run_matrix(cells, workers=1, tag="serving-wc")
        parallel = run_matrix(cells, workers=2, tag="serving-wc")
        assert (
            serial.as_artifact()["results"]
            == parallel.as_artifact()["results"]
        )

    def test_channel_scaling_and_protection(self):
        """The acceptance criteria: aggregate requests/sec scales >= 2x
        from 1 to 4 channels with per-channel protection intact."""
        rps = {}
        for channels in (1, 4):
            payload = run_serving(
                ServingConfig(channels=channels, slices=12, seed=0)
            )
            rps[channels] = payload["sla"]["aggregate"]["requests_per_sim_sec"]
            assert payload["victim"]["victim_flip_events"] == 0
            assert payload["sla"]["aggregate"]["blocked"] > 0
            locker = payload["sla"]["locker"]
            assert len(locker) == channels
            assert all(
                entry["blocked_requests"] > 0 for entry in locker.values()
            )
        assert rps[4] >= 2.0 * rps[1]

    def test_block_policy_partitions_avoid_victim_zones(self):
        """Under block interleaving every tenant partition must stay
        inside one channel's tenant zone -- never touching the victim
        locals below TENANT_FIRST_LOCAL of *any* channel."""
        from repro.serving.engine import TENANT_FIRST_LOCAL, ServingSimulation

        for channels, tenants in ((4, 6), (2, 3), (4, 2)):
            sim = ServingSimulation(
                ServingConfig(
                    channels=channels, tenants=tenants, slices=4,
                    policy="block", seed=0,
                )
            )
            for spec in sim.generator.tenants:
                first, count = spec.rows
                start = sim.system.locate(first)
                end = sim.system.locate(first + count - 1)
                assert start[0] is end[0]  # one channel per tenant
                assert start[1] >= TENANT_FIRST_LOCAL
        payload = ServingSimulation(
            ServingConfig(channels=4, tenants=6, slices=6, policy="block",
                          seed=0)
        ).run()
        assert payload["victim"]["victim_flip_events"] == 0

    def test_undefended_victims_take_flips(self):
        payload = run_serving(
            ServingConfig(channels=2, slices=12, seed=0), protected=False
        )
        assert payload["victim"]["victim_flip_events"] > 0
        assert payload["sla"]["aggregate"]["blocked"] == 0
        assert "locker" not in payload["sla"]

    def test_sla_report_shape(self):
        payload = run_serving(ServingConfig(channels=1, slices=8, seed=0))
        tenants = payload["sla"]["tenants"]
        assert "attacker" in tenants and "victim-owner" in tenants
        tenant0 = tenants["tenant-0"]
        latency = tenant0["latency_ns"]
        assert set(latency) == {"p50", "p99", "p99.9", "mean"}
        assert latency["p50"] <= latency["p99"] <= latency["p99.9"]
        assert tenant0["throughput_rps"] > 0
        assert payload["memory_stats"]["activates"] > 0
        assert len(payload["channels"]) == 1

    def test_serving_scenarios_canned_set(self):
        scenarios = serving_scenarios()
        names = [scenario.name for scenario in scenarios]
        assert len(names) == len(set(names))
        assert len(scenarios) >= 12
        params = [dict(scenario.params) for scenario in scenarios]
        assert {p.get("channels") for p in params} >= {1, 2, 4}
        assert {p.get("defense") for p in params} >= {
            "None", "DRAM-Locker", "TRR", "Graphene",
        }
        assert any(p.get("colocated") is False for p in params)
        assert any(p.get("tenants") == 8 for p in params)


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------
def _serving_artifact() -> dict:
    return {
        "schema": "dram-locker-serving-bench/1",
        "cells": {
            "dram-locker-ch1": {
                "protected": True,
                "victim_flip_events": 0,
                "sla_fingerprint": {"requests": 100, "blocked": 40},
            },
            "none-ch1": {
                "protected": False,
                "victim_flip_events": 9,
                "sla_fingerprint": {"requests": 100, "blocked": 0},
            },
        },
        "scaling": {"DRAM-Locker": {"ratio": 3.5}},
        "victim": {
            "clean_accuracy": 99.0,
            "post_attack_accuracy": 99.0,
            "accuracy_unchanged": True,
        },
    }


class TestCompareServing:
    def test_identical_artifacts_pass(self):
        report = compare_serving(_serving_artifact(), _serving_artifact())
        assert report.ok
        assert report.checks

    def test_sla_drift_fails(self):
        current = _serving_artifact()
        current["cells"]["none-ch1"]["sla_fingerprint"]["blocked"] = 1
        report = compare_serving(current, _serving_artifact())
        assert not report.ok
        assert any("fingerprint" in v for v in report.violations)

    def test_scaling_shrink_fails_within_tolerance_passes(self):
        current = _serving_artifact()
        current["scaling"]["DRAM-Locker"]["ratio"] = 3.0
        assert compare_serving(current, _serving_artifact()).ok
        current["scaling"]["DRAM-Locker"]["ratio"] = 2.0
        report = compare_serving(current, _serving_artifact())
        assert not report.ok

    def test_protected_victim_flip_fails(self):
        current = _serving_artifact()
        current["cells"]["dram-locker-ch1"]["victim_flip_events"] = 1
        report = compare_serving(current, _serving_artifact())
        assert not report.ok
        # Unprotected cells may flip freely.
        current = _serving_artifact()
        current["cells"]["none-ch1"]["victim_flip_events"] = 99
        assert compare_serving(current, _serving_artifact()).ok

    def test_pinned_flip_count_matches_baseline(self):
        # A known exposure event (nonzero flips in the committed
        # baseline) is pinned exactly, not treated as a regression.
        baseline = _serving_artifact()
        baseline["cells"]["dram-locker-ch1"]["victim_flip_events"] = 1
        current = _serving_artifact()
        current["cells"]["dram-locker-ch1"]["victim_flip_events"] = 1
        assert compare_serving(current, baseline).ok
        # ...but drifting away from the pinned count (even to zero) fails.
        assert not compare_serving(_serving_artifact(), baseline).ok

    def test_engine_check_divergence_fails(self):
        current = _serving_artifact()
        current["cells"]["dram-locker-ch1"]["engine_check"] = {
            "identical": False, "bulk_wall_s": 0.1, "events_wall_s": 0.1,
        }
        report = compare_serving(current, _serving_artifact())
        assert not report.ok
        assert any("events engine" in v for v in report.violations)
        current["cells"]["dram-locker-ch1"]["engine_check"]["identical"] = True
        report = compare_serving(current, _serving_artifact())
        assert report.ok
        assert any("bit-identical" in c for c in report.checks)

    def test_accuracy_change_fails(self):
        current = _serving_artifact()
        current["victim"].update(
            post_attack_accuracy=90.0, accuracy_unchanged=False
        )
        assert not compare_serving(current, _serving_artifact()).ok

    def test_silently_dropped_victim_probe_fails(self):
        current = _serving_artifact()
        del current["victim"]
        report = compare_serving(current, _serving_artifact())
        assert any("missing" in v for v in report.violations)

    def test_explicitly_skipped_victim_probe_passes(self):
        current = _serving_artifact()
        current["victim"] = {"skipped": True}
        report = compare_serving(current, _serving_artifact())
        assert report.ok
        assert any("skipped" in c for c in report.checks)

    def test_missing_cell_fails(self):
        current = _serving_artifact()
        del current["cells"]["none-ch1"]
        report = compare_serving(current, _serving_artifact())
        assert any("missing" in v for v in report.violations)
