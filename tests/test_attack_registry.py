"""The attack registry and the three new attack families.

Each family must show its teeth on an unprotected victim (accuracy
drops, or ASR rises) and be neutralised by DRAM-Locker -- the
"general-purpose" claim the registry exists to stress.
"""

import numpy as np
import pytest

from repro.attacks import (
    ATTACKS,
    AttackContext,
    HammerDriver,
    HammerableProfile,
    MultiRoundBFA,
    MultiRoundConfig,
    TBFAConfig,
    TBFAttack,
    TBFA_VARIANTS,
    available_attacks,
    build_attack,
    run_attack,
)
from repro.attacks.registry import AttackSpec, register_attack, summarize_generic
from repro.controller import MemoryController
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.locker import DRAMLocker, LockMode, LockerConfig
from repro.nn import QuantizedModel, WeightStore, make_dataset, resnet20, train
from repro.nn.train import TrainConfig

TRH = 60
TARGET, SOURCE = 0, 1


@pytest.fixture(scope="module")
def dataset():
    return make_dataset("t", 4, hw=8, train_per_class=24, test_per_class=12, seed=3)


@pytest.fixture(scope="module")
def trained_model(dataset):
    model = resnet20(num_classes=4, width=4, input_hw=8, seed=1)
    train(model, dataset, TrainConfig(epochs=8, batch_size=16, lr=0.1, seed=1))
    return model


@pytest.fixture()
def qmodel(trained_model):
    q = QuantizedModel(trained_model)
    snapshot = q.snapshot()
    yield q
    q.restore(snapshot)


def make_system(qmodel, protected, copy_error_rate=0.0):
    cfg = DRAMConfig.small()
    device = DRAMDevice(
        cfg, vulnerability=VulnerabilityMap(cfg, weak_cell_fraction=0.0), trh=TRH
    )
    locker = None
    if protected:
        locker = DRAMLocker(
            device,
            LockerConfig(copy_error_rate=copy_error_rate, relock_interval=2 * TRH + 10),
        )
    controller = MemoryController(device, locker=locker)
    store = WeightStore(device, qmodel, guard_rows=True)
    if locker is not None:
        plan = locker.protect(store.data_rows, mode=LockMode.ADJACENT)
        assert plan.is_complete
    return device, controller, store, HammerDriver(controller, patience=2.0), locker


def dram_context(qmodel, dataset, protected, copy_error_rate=0.0, hook=None):
    device, controller, store, driver, locker = make_system(
        qmodel, protected, copy_error_rate
    )
    return AttackContext(
        qmodel, dataset, store=store, driver=driver,
        before_execute=hook, seed=0, attack_batch=32,
    )


class TestRegistry:
    def test_all_families_registered(self):
        names = available_attacks()
        for expected in (
            "bfa", "random", "pta",
            "tbfa-n-to-1", "tbfa-1-to-1", "tbfa-stealthy",
            "backdoor", "multi-round-bfa",
        ):
            assert expected in names

    def test_unknown_attack_raises(self, qmodel, dataset):
        ctx = AttackContext(qmodel, dataset)
        with pytest.raises(KeyError, match="unknown attack"):
            build_attack("nope", ctx)
        with pytest.raises(KeyError, match="unknown attack"):
            run_attack("nope", ctx, 1)

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError, match="registered twice"):
            register_attack("bfa")(lambda ctx: None)

    def test_specs_carry_metadata(self):
        for name, spec in ATTACKS.items():
            assert isinstance(spec, AttackSpec)
            assert spec.name == name
            assert spec.description

    def test_uniform_payload(self, qmodel, dataset):
        ctx = AttackContext(qmodel, dataset, seed=0, attack_batch=32)
        payload = run_attack("bfa", ctx, 2)
        for key in ("attack", "iterations", "accuracies", "final_accuracy",
                    "executed_flips", "metrics", "targeted"):
            assert key in payload
        assert payload["attack"] == "bfa"
        assert payload["iterations"] == 2

    def test_summarize_generic_handles_asr(self):
        class R:
            accuracies = [50.0, 40.0]
            asr = [10.0, 90.0]
            flips = []
            executed_flips = 1

        payload = summarize_generic(R())
        assert payload["metrics"]["final_asr"] == 90.0
        assert payload["executed_flips"] == 1


class TestTBFA:
    @pytest.mark.parametrize("variant", TBFA_VARIANTS)
    def test_software_variants_reach_high_asr(self, qmodel, dataset, variant):
        attack = TBFAttack(
            qmodel, dataset,
            TBFAConfig(variant=variant, target_class=TARGET,
                       source_class=SOURCE, attack_batch=32, seed=0),
        )
        before = attack.attack_success_rate()
        result = attack.run(8)
        assert result.executed_flips >= 1
        assert result.final_asr > before + 30.0

    def test_stealthy_preserves_other_classes_better(self, qmodel, dataset):
        snapshot = qmodel.snapshot()
        plain = TBFAttack(
            qmodel, dataset,
            TBFAConfig(variant="1-to-1", target_class=TARGET,
                       source_class=SOURCE, attack_batch=32, seed=0,
                       stop_at_asr=90.0),
        ).run(8)
        qmodel.restore(snapshot)
        stealthy = TBFAttack(
            qmodel, dataset,
            TBFAConfig(variant="1-to-1-stealthy", target_class=TARGET,
                       source_class=SOURCE, attack_batch=32, seed=0,
                       stop_at_asr=90.0),
        ).run(8)
        qmodel.restore(snapshot)
        assert plain.final_asr >= 90.0 and stealthy.final_asr >= 90.0
        # Accuracy over all classes is the stealth metric: the stealthy
        # variant must keep more of it once both attacks have landed.
        assert stealthy.accuracies[-1] >= plain.accuracies[-1]

    def test_invalid_variant_rejected(self, qmodel, dataset):
        with pytest.raises(ValueError, match="variant"):
            TBFAttack(qmodel, dataset, TBFAConfig(variant="bogus"))
        with pytest.raises(ValueError, match="differ"):
            TBFAttack(
                qmodel, dataset,
                TBFAConfig(variant="1-to-1", target_class=0, source_class=0),
            )

    def test_locker_blocks_tbfa(self, qmodel, dataset):
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        ctx = dram_context(qmodel, dataset, protected=True)
        payload = run_attack("tbfa-n-to-1", ctx, 4, target_class=TARGET)
        assert payload["executed_flips"] == 0
        assert payload["final_accuracy"] == pytest.approx(clean)

    def test_dram_tbfa_executes_unprotected(self, qmodel, dataset):
        ctx = dram_context(qmodel, dataset, protected=False)
        payload = run_attack("tbfa-n-to-1", ctx, 6, target_class=TARGET)
        assert payload["executed_flips"] == 6
        assert payload["metrics"]["final_asr"] > 30.0


class TestBackdoor:
    def test_software_backdoor_raises_asr_keeps_clean(self, qmodel, dataset):
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        ctx = AttackContext(qmodel, dataset, seed=0, attack_batch=32)
        payload = run_attack("backdoor", ctx, 8, target_class=TARGET)
        assert payload["metrics"]["final_asr"] > 40.0
        # The joint objective must not trade all clean accuracy away.
        assert payload["final_accuracy"] > clean - 30.0
        assert payload["final_accuracy"] > 50.0

    def test_locker_blocks_backdoor(self, qmodel, dataset):
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        ctx = dram_context(qmodel, dataset, protected=True)
        payload = run_attack("backdoor", ctx, 4, target_class=TARGET)
        assert payload["executed_flips"] == 0
        assert payload["final_accuracy"] == pytest.approx(clean)

    def test_hammerable_profile_is_deterministic_and_directional(self):
        profile = HammerableProfile(fraction=0.5, seed=7)
        cells = [("w", i, b) for i in range(64) for b in range(8)]
        hammerable = [c for c in cells if profile.is_hammerable(*c)]
        assert 0 < len(hammerable) < len(cells)
        assert hammerable == [c for c in cells if profile.is_hammerable(*c)]
        for cell in hammerable[:16]:
            direction = profile.flip_direction(*cell)
            assert profile.feasible(*cell, current=1 - direction)
            assert not profile.feasible(*cell, current=direction)

    def test_constraint_restricts_search(self, qmodel, dataset):
        ctx = AttackContext(qmodel, dataset, seed=0, attack_batch=32)
        attack = build_attack(
            "backdoor", ctx, target_class=TARGET, trigger_steps=5
        )
        result = attack.run(3)
        profile = attack.profile
        for flip in result.flips:
            assert profile.is_hammerable(flip.tensor, flip.flat_index, flip.bit)


class TestMultiRoundBFA:
    def test_unprotected_behaves_like_bfa(self, qmodel, dataset):
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        ctx = dram_context(qmodel, dataset, protected=False)
        payload = run_attack("multi-round-bfa", ctx, 6, rounds=2)
        assert payload["executed_flips"] == 6
        assert payload["final_accuracy"] < clean - 15.0
        assert [r["retries"] for r in payload["metrics"]["rounds"]] == [0, 0]

    def test_perfect_locker_blocks_all_rounds(self, qmodel, dataset):
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        ctx = dram_context(qmodel, dataset, protected=True)
        payload = run_attack("multi-round-bfa", ctx, 6, rounds=3)
        assert payload["executed_flips"] == 0
        assert payload["final_accuracy"] == pytest.approx(clean)

    def test_retries_ride_swap_windows(self, qmodel, dataset):
        """With a guaranteed-failing SWAP and tenant traffic, retried
        flips land through the exposure windows single-round BFA
        forfeits."""
        device, controller, store, driver, locker = make_system(
            qmodel, protected=True, copy_error_rate=0.999999
        )
        rng = np.random.default_rng(0)

        def tenant(name, index, bit):
            row, _ = store.bit_location(name, index, bit)
            guard = int(rng.choice(device.mapper.neighbors(row)))
            controller.read(guard, privileged=True)

        attack = MultiRoundBFA(
            qmodel,
            dataset,
            MultiRoundConfig(rounds=3, attack_batch=32, seed=0,
                             tenant_accesses_per_retry=2),
            store=store,
            driver=driver,
            tenant_hook=tenant,
        )
        result = attack.run(6)
        assert result.retried_flips >= 1
        assert result.executed_flips >= 1

    def test_store_and_driver_must_pair(self, qmodel, dataset):
        with pytest.raises(ValueError):
            MultiRoundBFA(qmodel, dataset, store=None, driver=object())

    def test_budget_never_overspent(self, qmodel, dataset):
        """``iterations`` is the total attempt budget, even when it is
        smaller than the round count."""
        for budget in (1, 2, 5):
            attack = MultiRoundBFA(
                qmodel, dataset,
                MultiRoundConfig(rounds=3, attack_batch=32, seed=0),
            )
            result = attack.run(budget)
            assert len(result.flips) == budget
            assert sum(r["attempts"] for r in result.rounds) == budget


class TestPTAViaRegistry:
    def test_pta_requires_dram(self, qmodel, dataset):
        ctx = AttackContext(qmodel, dataset)
        with pytest.raises(ValueError, match="DRAM-resident"):
            build_attack("pta", ctx)

    def test_pta_locked_vs_open(self, qmodel, dataset):
        open_ctx = dram_context(qmodel, dataset, protected=False)
        payload = run_attack("pta", open_ctx, 3)
        assert payload["executed_flips"] >= 1

    def test_pta_registry_locks_page_table(self, qmodel, dataset):
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        ctx = dram_context(qmodel, dataset, protected=True)
        payload = run_attack("pta", ctx, 3)
        assert payload["executed_flips"] == 0
        assert payload["final_accuracy"] == pytest.approx(clean)
