"""The attack x defense matrix, driven entirely by the attack registry.

Every attack family registered with ``repro.attacks.registry`` runs
twice -- against an unprotected DRAM-resident victim and against the
same victim behind DRAM-Locker -- and the outcomes print as one table:
accuracy damage (untargeted attacks), attack success rate (targeted
ones), and how many flips actually landed.

All scenarios share a single trained victim through the content-
addressed victim cache, so the whole matrix trains exactly one model
however many attacks are registered.

Run with:  python examples/attack_matrix.py [--iterations N] [--workers N]
"""

import argparse

from repro.attacks import ATTACKS
from repro.eval import Scale, format_table, run_matrix
from repro.eval.harness import attack_scenarios


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--arch", default="resnet20",
                        choices=["resnet20", "vgg11"])
    args = parser.parse_args(argv)

    scenarios = attack_scenarios(
        Scale.quick(), arch=args.arch, iterations=args.iterations
    )
    matrix = run_matrix(
        scenarios, workers=args.workers, tag="attack-matrix", strict=True
    )

    rows = []
    for result in matrix.results:
        payload = result.payload
        attack = payload["attack"]
        asr = payload["metrics"].get("final_asr")
        final = payload["final_accuracy"]
        rows.append(
            (
                attack,
                "DRAM-Locker" if payload["protected"] else "none",
                f"{payload['clean_accuracy']:.1f}",
                f"{final:.1f}" if final is not None else "-",
                f"{asr:.1f}" if asr is not None else "-",
                payload["executed_flips"],
                "targeted" if ATTACKS[attack].targeted else "untargeted",
            )
        )
    print(
        format_table(
            ["attack", "defense", "clean %", "final %", "ASR %", "flips", "kind"],
            rows,
            title=f"Attack x defense matrix ({args.arch}, "
            f"{args.iterations}-flip budget)",
        )
    )
    print(
        f"\n{len(matrix.results)} scenarios in {matrix.wall_clock_s:.2f}s "
        f"across {matrix.workers} worker(s); one shared cached victim"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
