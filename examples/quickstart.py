"""Quickstart: lock rows, block an attacker, unlock via SWAP.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    DRAMConfig,
    DRAMDevice,
    DRAMLocker,
    HammerDriver,
    LockerConfig,
    MemoryController,
)


def main() -> None:
    # A small DDR4-like device with the paper's worst-case TRH of 1k.
    device = DRAMDevice(DRAMConfig.small(), trh=1000)
    locker = DRAMLocker(device, LockerConfig(relock_interval=1000))
    controller = MemoryController(device, locker=locker)
    mapper = device.mapper

    # Pretend row 50 holds sensitive data (e.g. DNN weights).
    secret_row = mapper.row_index((0, 0, 50))
    device.poke_bytes(secret_row, 0, np.arange(64, dtype=np.uint8))

    # Protect it: DRAM-Locker locks the adjacent (aggressor) rows.
    plan = locker.protect([secret_row])
    print(f"protected row {secret_row}; locked aggressors: {sorted(plan.locked_rows)}")
    print(f"protection complete (no hammerable holes): {plan.is_complete}")

    # 1. The attacker hammers an aggressor row -> every ACT is skipped.
    aggressor = sorted(plan.locked_rows)[0]
    driver = HammerDriver(controller)
    outcome = driver.hammer_bit(secret_row, victim_bit=7)
    print(
        f"attack on bit 7 of the secret row: flipped={outcome.flipped}, "
        f"activations blocked={outcome.activations_blocked}"
    )

    # 2. A legitimate (privileged) program needs the locked row's data:
    #    DRAM-Locker unlocks it with a 3x RowClone SWAP and serves it at
    #    the new location.
    result = controller.read(aggressor, privileged=True)
    print(
        f"privileged read of locked row {aggressor}: allowed={not result.blocked}, "
        f"swapped={result.swapped}, served at physical row {result.physical_row}, "
        f"latency {result.latency_ns:.0f} ns"
    )

    # 3. After the re-lock interval (1,000 R/W instructions) the data is
    #    swapped back home and the lock is fully enforced again.
    for _ in range(1001):
        controller.read(secret_row)
    print(f"after re-lock: row {aggressor} is home again "
          f"(translate -> {locker.translate(aggressor)})")

    stats = device.stats
    print(
        f"\nmemory stats: {stats.activates} ACTs, {stats.rowclones} RowClones, "
        f"{stats.swaps} swaps, {stats.blocked_requests} blocked requests, "
        f"{stats.bit_flips} bit flips"
    )
    print(f"total energy: {stats.energy.total / 1e3:.1f} uJ")
    assert not outcome.flipped and stats.bit_flips == 0
    print("\nthe secret row was never disturbed. done.")


if __name__ == "__main__":
    main()
