"""Defend page tables against PTA (the Fig. 3(b) threat).

The victim's weight pages are reached through a two-level page table in
simulated DRAM.  The attacker redirects a leaf PTE's frame number with
a single RowHammer bit flip, making inference stream weights from an
attacker-controlled frame.  DRAM-Locker then locks the page-table
rows' aggressors and the same attack is skipped at the controller.

Run with:  python examples/page_table_protection.py
"""

from repro.attacks import PagedWeights, PageTableAttack
from repro.eval import Scale, build_system, build_victim
from repro.locker import LockMode
from repro.vm import MMU, PageTable


def main() -> None:
    scale = Scale(input_hw=16, resnet_width=8, epochs=4, attack_batch=48)
    print("training the victim model...")
    dataset, qmodel = build_victim("resnet20", scale)
    clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
    print(f"clean accuracy: {clean:.1f}%")
    snapshot = qmodel.snapshot()

    for protected in (False, True):
        qmodel.restore(snapshot)
        system = build_system(qmodel, protected=protected)
        mapper = system.device.mapper
        bank = system.device.config.banks - 1
        pt_rows = [mapper.row_index((bank, 0, local)) for local in range(0, 32, 2)]
        page_table = PageTable(system.device, pt_rows)
        mmu = MMU(system.controller, page_table)
        paged = PagedWeights(system.store, page_table, mmu)
        label = "WITH DRAM-Locker" if protected else "WITHOUT protection"
        if protected:
            plan = system.locker.protect(
                page_table.table_rows(), mode=LockMode.ADJACENT
            )
            print(f"\n--- PTA {label} "
                  f"(locked {len(plan.locked_rows)} PT-adjacent rows) ---")
        else:
            print(f"\n--- PTA {label} ---")

        attack = PageTableAttack(qmodel, dataset, paged, system.driver)
        result = attack.run(6)
        for record in result.records:
            status = "REDIRECTED" if record.executed else "blocked   "
            print(
                f"  iter {record.iteration}: vpn {record.vpn:3d} via PTE row "
                f"{record.pte_row} {status} -> accuracy {record.accuracy_after:5.1f}%"
            )
        print(
            f"redirected pages: {len(paged.redirected_pages())}, "
            f"final accuracy {result.accuracies[-1]:.1f}%"
        )


if __name__ == "__main__":
    main()
