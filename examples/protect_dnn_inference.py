"""Protect a quantized DNN's weights against BFA (the Fig. 8 story).

Trains a scaled ResNet-20 on the synthetic CIFAR-10 stand-in, places
its 8-bit weights in simulated DRAM with guard-row interleaving, and
runs the progressive-bit-search attack twice: against the bare system
and against the DRAM-Locker-protected one (charged with the +/-20%
process corner's 9.6% SWAP failure rate).

Run with:  python examples/protect_dnn_inference.py
"""

from repro.attacks import BFAConfig, ProgressiveBitSearch
from repro.eval import Scale, build_system, build_victim
from repro.eval.experiments import _background_tenant_hook


def main() -> None:
    scale = Scale(
        input_hw=16, resnet_width=8, epochs=4, attack_iterations=12, attack_batch=48
    )
    print("training the victim model (scaled ResNet-20)...")
    dataset, qmodel = build_victim("resnet20", scale)
    clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
    print(f"clean accuracy: {clean:.1f}%  (chance: 10.0%)")
    snapshot = qmodel.snapshot()

    for protected in (False, True):
        qmodel.restore(snapshot)
        system = build_system(qmodel, protected=protected)
        label = "WITH DRAM-Locker" if protected else "WITHOUT protection"
        print(f"\n--- BFA {label} ---")
        if protected:
            locked = len(system.locker.table)
            print(f"lock-table holds {locked} guard rows "
                  f"({system.locker.table.occupancy:.1%} of its capacity)")
        attack = ProgressiveBitSearch(
            qmodel,
            dataset,
            BFAConfig(attack_batch=scale.attack_batch),
            store=system.store,
            driver=system.driver,
            before_execute=(
                _background_tenant_hook(system) if protected else None
            ),
        )
        result = attack.run(scale.attack_iterations)
        for record in result.flips:
            status = "FLIPPED " if record.executed else "blocked "
            print(
                f"  iter {record.iteration:2d}: {status} "
                f"{record.tensor}[{record.flat_index}] bit {record.bit} "
                f"-> accuracy {record.accuracy_after:5.1f}%"
            )
        print(
            f"executed flips: {result.executed_flips}/{len(result.flips)}, "
            f"final accuracy {result.accuracies[-1]:.1f}%"
        )
        stats = system.device.stats
        print(f"device: {stats.blocked_requests} blocked requests, "
              f"{stats.swaps} swaps, {stats.bit_flips} bit flips")


if __name__ == "__main__":
    main()
