"""Compare RowHammer mitigations on the same templated attack.

Runs a double-sided hammering campaign against one victim bit under
each baseline defense plus DRAM-Locker, then prints Table I (overhead)
alongside the measured behaviour: whether the flip landed, how much
mitigation latency the defense charged, and what it did (refreshes,
row moves, blocks).

Run with:  python examples/compare_defenses.py
"""

from repro.controller import MemoryController
from repro.core import DRAMLocker, LockerConfig
from repro.defenses import (
    PARA,
    RRS,
    SRS,
    TRR,
    CounterPerRow,
    CounterTree,
    Graphene,
    Hydra,
    NoDefense,
    Shadow,
    TWiCE,
    format_table1,
)
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.eval import format_table

TRH = 400
VICTIM_LOCAL = 20
TARGET_BIT = 5


def run_campaign(defense_factory, use_locker=False):
    config = DRAMConfig.small()
    vulnerability = VulnerabilityMap(config, weak_cell_fraction=0.0)
    device = DRAMDevice(config, vulnerability=vulnerability, trh=TRH)
    victim = device.mapper.row_index((0, 0, VICTIM_LOCAL))
    locker = None
    defense = None
    if use_locker:
        locker = DRAMLocker(device, LockerConfig())
        locker.protect([victim])
    else:
        defense = defense_factory()
    controller = MemoryController(device, defense=defense, locker=locker)

    device.vulnerability.register_template(victim, [TARGET_BIT])
    flipped = False
    for _ in range(3 * TRH):
        for aggressor in device.mapper.neighbors(victim):
            controller.hammer(aggressor)
            if device.peek_bytes(victim, 0, 1)[0] >> TARGET_BIT & 1:
                flipped = True
                break
        if flipped:
            break
    stats = device.stats
    mitigation_ms = (
        defense.mitigation_ns_total / 1e6 if defense else stats.defense_ns / 1e6
    )
    return {
        "flipped": flipped,
        "mitigation_ms": mitigation_ms,
        "blocked": stats.blocked_requests,
        "extra_refreshes": stats.refreshes,
        "rowclones": stats.rowclones,
    }


def main() -> None:
    contenders = [
        ("None", lambda: NoDefense(), False),
        ("PARA", lambda: PARA(probability=0.05), False),
        ("TRR", lambda: TRR(table_entries=16), False),
        ("Graphene", lambda: Graphene(table_entries=64), False),
        ("Hydra", lambda: Hydra(group_size=16), False),
        ("TWiCE", lambda: TWiCE(), False),
        ("Counter/Row", lambda: CounterPerRow(), False),
        ("CounterTree", lambda: CounterTree(split_threshold=8), False),
        ("RRS", lambda: RRS(seed=1), False),
        ("SRS", lambda: SRS(seed=1), False),
        ("SHADOW", lambda: Shadow(shuffle_period=100, seed=1), False),
        ("DRAM-Locker", None, True),
    ]
    rows = []
    for name, factory, use_locker in contenders:
        outcome = run_campaign(factory, use_locker)
        rows.append(
            (
                name,
                "YES" if outcome["flipped"] else "no",
                f"{outcome['mitigation_ms']:.3f}",
                outcome["blocked"],
                outcome["rowclones"],
            )
        )
    print(
        format_table(
            ["defense", "bit flipped?", "mitigation ms", "blocked reqs", "rowclones"],
            rows,
            title=f"Double-sided attack on one templated bit (TRH={TRH})",
        )
    )
    print()
    print("Table I (hardware overhead, 32GB/16-bank DDR4):")
    print(format_table1())


if __name__ == "__main__":
    main()
