"""Compare RowHammer mitigations on the same templated attack.

Runs a double-sided hammering campaign against one victim bit under
each baseline defense plus DRAM-Locker, then prints Table I (overhead)
alongside the measured behaviour: whether the flip landed, how much
mitigation latency the defense charged, and what it did (refreshes,
row moves, blocks).

Each contender is one ``defense_campaign`` harness scenario, so the
whole sweep fans out over worker processes:

Run with:  python examples/compare_defenses.py [--workers N]
"""

import argparse

from repro.defenses import format_table1
from repro.eval import Scale, Scenario, format_table, run_matrix
from repro.eval.harness import DEFENSE_BUILDERS

TRH = 400


def campaign_scenarios() -> list[Scenario]:
    return [
        Scenario(
            f"campaign-{name}",
            "defense_campaign",
            Scale.quick(),
            seed=0,
            params=(("defense", name), ("trh", TRH)),
        )
        for name in DEFENSE_BUILDERS
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)

    matrix = run_matrix(
        campaign_scenarios(), workers=args.workers, tag="compare-defenses"
    )
    if matrix.failures:
        for failure in matrix.failures:
            print(f"--- {failure.name} ---\n{failure.error}")
        return 1

    rows = []
    for result in matrix.results:
        outcome = result.payload
        rows.append(
            (
                outcome["defense"],
                "YES" if outcome["flipped"] else "no",
                f"{outcome['mitigation_ms']:.3f}",
                outcome["blocked"],
                outcome["rowclones"],
            )
        )
    print(
        format_table(
            ["defense", "bit flipped?", "mitigation ms", "blocked reqs", "rowclones"],
            rows,
            title=f"Double-sided attack on one templated bit (TRH={TRH})",
        )
    )
    print()
    print("Table I (hardware overhead, 32GB/16-bank DDR4):")
    print(format_table1())
    print(
        f"\n{len(matrix.results)} campaigns in {matrix.wall_clock_s:.2f}s "
        f"across {matrix.workers} worker(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
