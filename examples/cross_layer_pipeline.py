"""Run the paper's Fig. 6 cross-layer evaluation flow end to end.

Circuit (Monte-Carlo swap errors) -> architecture (lock-table cost)
-> system (DNN in simulated DRAM under attack) -> application
(accuracy impact), in one call.

Run with:  python examples/cross_layer_pipeline.py
"""

from repro.eval import CrossLayerPipeline, Scale


def main() -> None:
    pipeline = CrossLayerPipeline(
        arch="resnet20",
        variation_pct=20.0,
        protected=True,
        scale=Scale(input_hw=16, resnet_width=8, epochs=4, attack_iterations=12),
    )
    report = pipeline.run()

    print("=== circuit level ===")
    for key, value in report.circuit.items():
        print(f"  {key}: {value}")
    print("=== architecture level ===")
    for key, value in report.architecture.items():
        print(f"  {key}: {value:.4g}" if isinstance(value, float) else f"  {key}: {value}")
    print("=== system level ===")
    print(f"  protected: {report.system['protected']}")
    print(f"  blocked requests: {report.system['blocked_requests']}")
    print(f"  swaps: {report.system['swaps']}")
    stats = report.system["memory_stats"]
    print(f"  ACTs: {stats['activates']:.0f}, energy {stats['energy_total_nj'] / 1e3:.1f} uJ")
    print("=== application level ===")
    for key, value in report.application.items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
