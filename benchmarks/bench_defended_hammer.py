"""Records BENCH_defended_hammer.json: the bulk defense engine speedup.

Runs the ``defended_hammer`` harness scenario -- ``HammerDriver``
double-sided TRH-burst campaigns against templated victim bits -- once
per defense on the scalar reference engine (``engine="scalar"``: one
Python ``execute()``, one ``on_activate`` dispatch, one
``RequestResult`` per activation), once on the bulk engine
(``engine="bulk"``: run-length requests, defense-planned chunks,
summary-mode accounting), and once on the event-driven fast-forward
engine (``engine="events"``: fused multi-tick epochs), and records the
per-defense wall-clocks.

All three engines must produce **identical scenario payloads** (same
flip outcomes, issued/blocked tallies, memory stats bit-for-bit, same
mitigation accounting); the recorder refuses to write an artifact
otherwise.  The ``DRAM-Locker`` cell exercises the blocked-run summary
path; ``None`` is the undefended baseline (and the cell where the
events engine's cross-tick fusion applies in full).

Run with:  python benchmarks/bench_defended_hammer.py [--trh N]
"""

import argparse
import json
import os
import time

from repro.eval import Scale
from repro.eval.harness import DEFENDED_HAMMER_DEFENSES, run_scenario, Scenario
from repro.eval.regression import DEFENDED_HAMMER_SCHEMA, host_meta

ARTIFACT = "BENCH_defended_hammer.json"

#: Defense cells measured per engine, in recorded order.
DEFENSES = (
    "None",
    "TRR",
    "PARA",
    "Graphene",
    "Hydra",
    "Counter/Row",
    "CounterTree",
    "TWiCE",
    "SHADOW",
    "RRS",
    "DRAM-Locker",
)

#: The acceptance families: each must clear this bulk-engine speedup.
TARGET_FAMILIES = ("TRR", "PARA", "Graphene", "Hydra", "Counter/Row")
TARGET_SPEEDUP = 3.0


def _cell_name(defense: str) -> str:
    return defense.lower().replace("/", "-")


def _run_cell(defense: str, engine: str, trh: int, repeats: int):
    """Best-of-``repeats`` wall-clock for one defended campaign; the
    payload must be identical across repeats (campaigns are
    deterministic), which doubles as a reproducibility check."""
    best = float("inf")
    payload = None
    for _ in range(repeats):
        scenario = Scenario(
            f"defended-{_cell_name(defense)}-{engine}",
            "defended_hammer",
            Scale.quick(),
            seed=0,
            params=(("defense", defense), ("trh", trh), ("engine", engine)),
        )
        result = run_scenario(scenario)
        if not result.ok:
            raise SystemExit(f"{scenario.name} failed:\n{result.error}")
        if payload is not None and result.payload != payload:
            raise SystemExit(
                f"{scenario.name}: nondeterministic payload across repeats; "
                "refusing to record"
            )
        payload = result.payload
        best = min(best, result.wall_clock_s)
    return best, payload


def _strip_engine(payload: dict) -> dict:
    """Engine-independent view of a payload for the equivalence check."""
    return {key: value for key, value in payload.items() if key != "engine"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trh", type=int, default=3000,
                        help="RowHammer threshold of the benched device")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell (best is recorded)")
    parser.add_argument("--out", default=os.path.join("benchmarks", "artifacts"))
    args = parser.parse_args(argv)

    unknown = [d for d in DEFENSES if d not in DEFENDED_HAMMER_DEFENSES]
    if unknown:
        raise SystemExit(f"unknown defense cells: {unknown}")

    started = time.perf_counter()
    defenses = {}
    for defense in DEFENSES:
        scalar_s, scalar_payload = _run_cell(
            defense, "scalar", args.trh, args.repeats
        )
        bulk_s, bulk_payload = _run_cell(
            defense, "bulk", args.trh, args.repeats
        )
        events_s, events_payload = _run_cell(
            defense, "events", args.trh, args.repeats
        )
        reference = _strip_engine(scalar_payload)
        identical = reference == _strip_engine(bulk_payload)
        events_identical = reference == _strip_engine(events_payload)
        cell = {
            "scalar_s": round(scalar_s, 4),
            "bulk_s": round(bulk_s, 4),
            "events_s": round(events_s, 4),
            "speedup": round(scalar_s / bulk_s, 2),
            "events_speedup": round(scalar_s / events_s, 2),
            "results_identical": identical,
            "events_identical": events_identical,
            "flipped": bulk_payload["protected_bits_flipped"],
            "blocked": sum(o["blocked"] for o in bulk_payload["outcomes"]),
        }
        defenses[_cell_name(defense)] = cell
        print(
            f"{defense:12s} scalar {scalar_s * 1e3:8.1f}ms  "
            f"bulk {bulk_s * 1e3:8.1f}ms  ({cell['speedup']:5.2f}x)  "
            f"events {events_s * 1e3:8.1f}ms  "
            f"({cell['events_speedup']:5.2f}x)  "
            f"identical={identical and events_identical}"
        )
        if not identical or not events_identical:
            diverged = "bulk" if not identical else "events"
            raise SystemExit(
                f"{defense}: {diverged} engine diverged from the scalar "
                "reference; refusing to record"
            )

    document = {
        "schema": DEFENDED_HAMMER_SCHEMA,
        "meta": host_meta(),
        "trh": args.trh,
        "repeats": args.repeats,
        "defenses": defenses,
        "timing": {"total_s": round(time.perf_counter() - started, 3)},
    }
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, ARTIFACT)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"artifact: {path}")

    slow = {
        family: defenses[_cell_name(family)]["speedup"]
        for family in TARGET_FAMILIES
        if defenses[_cell_name(family)]["speedup"] < TARGET_SPEEDUP
    }
    if slow:
        raise SystemExit(
            f"defended-hammer speedups below the {TARGET_SPEEDUP}x "
            f"target: {slow}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
