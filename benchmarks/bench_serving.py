"""Records BENCH_serving.json: multi-tenant serving on sharded channels.

Runs the ``serving`` harness scenario -- Zipf-popular tenant traffic
plus a co-located attacker on a :class:`ShardedMemorySystem` -- across
a channel sweep per defense, and records:

* **aggregate requests/sec vs channel count** -- *simulated*
  throughput (total requests over the slowest channel's clock), which
  transfers across runner classes; the recorder enforces the >= 5x
  scaling target from 1 to >= 8 channels under DRAM-Locker (>= 2x for
  narrower sweeps);
* **engine equivalence** -- every cell runs on the event-driven
  fast-forward engine and is re-run on the bulk reference engine; the
  two payloads must match bit-for-bit (``engine_check`` records the
  comparison and both wall clocks), else the artifact is refused;
* **locker overhead under load** -- locked vs undefended simulated
  throughput at each channel count;
* **the protected-victim probe** -- a trained quick-scale model
  resident on channel 0 behind per-channel lock tables while the
  co-located attacker hammers its weight rows: zero victim flip events
  and bit-identical accuracy required, else the artifact is refused;
* per-cell **SLA fingerprints** (request tallies + latency
  percentiles, all deterministic simulated quantities) that the
  nightly ``compare_serving`` gate holds to exact equality.

Run with:  python benchmarks/bench_serving.py [--channels 1 4 8 16]
"""

import argparse
import copy
import json
import os
import time

from repro.eval import Scale
from repro.eval.harness import Scenario, run_scenario
from repro.eval.regression import SERVING_SCHEMA, host_meta

ARTIFACT = "BENCH_serving.json"

#: Defenses swept across the channel counts.
DEFENSES = ("None", "DRAM-Locker")

#: Required aggregate requests/sec scaling from 1 to max channels:
#: >= 5x when the sweep reaches 8+ channels, >= 2x for narrower sweeps.
TARGET_SCALING = 5.0
TARGET_SCALING_NARROW = 2.0
WIDE_SWEEP_CHANNELS = 8


def _cell_name(defense: str, channels: int) -> str:
    return f"{defense.lower().replace('/', '-')}-ch{channels}"


def _sla_fingerprint(payload: dict) -> dict:
    """The deterministic SLA stats the nightly gate pins exactly."""
    aggregate = payload["sla"]["aggregate"]
    fingerprint = {
        "requests": aggregate["requests"],
        "issued": aggregate["issued"],
        "blocked": aggregate["blocked"],
    }
    tenant0 = payload["sla"]["tenants"].get("tenant-0", {})
    latency = tenant0.get("latency_ns")
    if latency:
        fingerprint["tenant0_latency_ns"] = latency
    return fingerprint


def _run_cell(params: tuple, repeats: int) -> tuple[float, dict]:
    """Best-of-``repeats`` wall-clock; the payload must be identical
    across repeats (serving cells are deterministic)."""
    best = float("inf")
    payload = None
    name = "serving-bench-" + "-".join(
        str(value).lower().replace("/", "-") for _, value in params
    )
    for _ in range(repeats):
        result = run_scenario(
            Scenario(name, "serving", Scale.quick(), seed=0, params=params)
        )
        if not result.ok:
            raise SystemExit(f"{name} failed:\n{result.error}")
        if payload is not None and result.payload != payload:
            raise SystemExit(
                f"{name}: nondeterministic payload across repeats; "
                "refusing to record"
            )
        payload = result.payload
        best = min(best, result.wall_clock_s)
    return best, payload


def _engine_neutral(payload: dict) -> dict:
    """The payload with the engine knob removed -- what the engine
    equivalence contract (docs/ARCHITECTURE.md) requires to be
    bit-identical across ``scalar``/``bulk``/``events``."""
    neutral = copy.deepcopy(payload)
    neutral.get("config", {}).pop("engine", None)
    return neutral


def _engine_check(
    params: tuple, events_wall_s: float, events_payload: dict
) -> dict:
    """Re-run one cell on the bulk reference engine and require a
    bit-identical payload (modulo the engine knob itself)."""
    bulk_wall_s, bulk_payload = _run_cell(
        params + (("engine", "bulk"),), repeats=1
    )
    identical = _engine_neutral(bulk_payload) == _engine_neutral(events_payload)
    if not identical:
        raise SystemExit(
            "events-engine payload diverged from the bulk reference for "
            f"params {params!r}; refusing to record"
        )
    return {
        "identical": identical,
        "bulk_wall_s": round(bulk_wall_s, 4),
        "events_wall_s": round(events_wall_s, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--channels", type=int, nargs="+",
                        default=[1, 4, 8, 16])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell (best is recorded)")
    parser.add_argument("--skip-model-victim", action="store_true",
                        help="skip the trained-victim accuracy probe")
    parser.add_argument("--out", default=os.path.join("benchmarks", "artifacts"))
    args = parser.parse_args(argv)
    channel_counts = sorted(set(args.channels))

    started = time.perf_counter()
    cells = {}
    scaling = {}
    for defense in DEFENSES:
        rps = {}
        for channels in channel_counts:
            for colocated in (True, False):
                base_params = (
                    ("channels", channels),
                    ("colocated", colocated),
                    ("defense", defense),
                )
                wall_s, payload = _run_cell(
                    base_params + (("engine", "events"),), args.repeats
                )
                aggregate = payload["sla"]["aggregate"]
                victim = payload["victim"]
                cell = {
                    "wall_s": round(wall_s, 4),
                    "requests": aggregate["requests"],
                    "blocked": aggregate["blocked"],
                    "requests_per_sim_sec": aggregate["requests_per_sim_sec"],
                    "protected": victim["protected"],
                    "colocated": colocated,
                    "victim_flip_events": victim["victim_flip_events"],
                    "sla_fingerprint": _sla_fingerprint(payload),
                    "engine_check": _engine_check(base_params, wall_s, payload),
                }
                name = _cell_name(defense, channels)
                if not colocated:
                    name += "-solo"
                cells[name] = cell
                if colocated:
                    rps[channels] = aggregate["requests_per_sim_sec"]
                print(
                    f"{defense:12s} ch{channels} "
                    f"{'attacked' if colocated else 'solo    '}  "
                    f"{cell['requests_per_sim_sec']:.3e} req/s (sim)  "
                    f"wall {wall_s * 1e3:7.1f}ms  "
                    f"blocked {cell['blocked']:6d}  "
                    f"victim flips {cell['victim_flip_events']}"
                )
        low, high = min(channel_counts), max(channel_counts)
        scaling[defense] = {
            f"rps_ch{low}": rps[low],
            f"rps_ch{high}": rps[high],
            "ratio": round(rps[high] / rps[low], 3),
        }
        print(f"{defense:12s} scaling ch{low}->ch{high}: "
              f"{scaling[defense]['ratio']:.2f}x")

    # True locker cost on attacker-free traffic (lock lookups + unlock
    # swaps); the co-located comparison is reported separately as the
    # *absorption* ratio -- blocked hammer requests cost only the
    # lookup, so the locked system sustains more aggregate throughput
    # under attack than the undefended one serves.
    overhead = {
        f"ch{channels}": round(
            100.0
            * (
                1.0
                - cells[_cell_name("DRAM-Locker", channels) + "-solo"][
                    "requests_per_sim_sec"
                ]
                / cells[_cell_name("None", channels) + "-solo"][
                    "requests_per_sim_sec"
                ]
            ),
            3,
        )
        for channels in channel_counts
    }
    absorption = {
        f"ch{channels}": round(
            cells[_cell_name("DRAM-Locker", channels)]["requests_per_sim_sec"]
            / cells[_cell_name("None", channels)]["requests_per_sim_sec"],
            3,
        )
        for channels in channel_counts
    }
    print(f"locker overhead on attacker-free traffic (pct): {overhead}")
    print(f"locker attack-absorption throughput ratio: {absorption}")

    # --skip-model-victim records an explicit marker rather than
    # omitting the section: the gate treats a silently *missing* probe
    # as a regression, an explicitly skipped one as a check.
    victim_probe = {"skipped": True}
    if not args.skip_model_victim:
        probe_channels = max(channel_counts)
        _, payload = _run_cell(
            (
                ("channels", probe_channels),
                ("defense", "DRAM-Locker"),
                ("victim", "model"),
            ),
            repeats=1,
        )
        victim = payload["victim"]
        victim_probe = {
            "channels": probe_channels,
            "clean_accuracy": victim["clean_accuracy"],
            "post_attack_accuracy": victim["post_attack_accuracy"],
            "accuracy_unchanged": victim["accuracy_unchanged"],
            "victim_flip_events": victim["victim_flip_events"],
        }
        print(
            f"model victim (ch{probe_channels}, locker, co-located): "
            f"clean {victim['clean_accuracy']:.2f}% -> "
            f"{victim['post_attack_accuracy']:.2f}% "
            f"(unchanged={victim['accuracy_unchanged']})"
        )
        if not victim["accuracy_unchanged"] or victim["victim_flip_events"]:
            raise SystemExit(
                "protected model victim was not intact under the "
                "co-located attack; refusing to record"
            )

    document = {
        "schema": SERVING_SCHEMA,
        "meta": host_meta(),
        "channel_counts": channel_counts,
        "repeats": args.repeats,
        "cells": cells,
        "scaling": scaling,
        "locker_overhead_pct": overhead,
        "locker_attack_absorption": absorption,
        "timing": {"total_s": round(time.perf_counter() - started, 3)},
        "victim": victim_probe,
    }
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, ARTIFACT)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"artifact: {path}")

    locker_ratio = scaling["DRAM-Locker"]["ratio"]
    target = (
        TARGET_SCALING
        if max(channel_counts) >= WIDE_SWEEP_CHANNELS
        else TARGET_SCALING_NARROW
    )
    if len(channel_counts) > 1 and locker_ratio < target:
        raise SystemExit(
            f"aggregate requests/sec scaled only {locker_ratio:.2f}x from "
            f"{min(channel_counts)} to {max(channel_counts)} channels "
            f"under DRAM-Locker (target {target}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
