"""Section IV-D: Monte-Carlo swap-error rate under process variation.

Paper: 0%, 0.14%, 9.6% erroneous SWAPs at +/-0%, +/-10%, +/-20%
(10,000 trials).
"""

from repro.eval import format_table, run_sec4d_montecarlo


def test_sec4d_montecarlo_sweep(benchmark):
    rows = benchmark.pedantic(
        run_sec4d_montecarlo, kwargs={"trials": 10_000}, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["variation", "failures", "error rate", "paper"],
            [
                (
                    f"+/-{r['variation_pct']:.0f}%",
                    f"{r['failures']}/{r['trials']}",
                    f"{100 * r['error_rate']:.2f}%",
                    "-" if r["paper_error_rate"] is None
                    else f"{100 * r['paper_error_rate']:.2f}%",
                )
                for r in rows
            ],
            "=== Section IV-D: Monte-Carlo (10,000 trials/corner) ===",
        )
    )

    by_pct = {r["variation_pct"]: r["error_rate"] for r in rows}
    assert by_pct[0] == 0.0
    assert 0.0003 <= by_pct[10] <= 0.004  # paper: 0.14%
    assert 0.07 <= by_pct[20] <= 0.12  # paper: 9.6%
    rates = [r["error_rate"] for r in rows]
    assert rates == sorted(rates)
