"""Records BENCH_attack_search.json: the suffix-forward search speedup.

Runs every bit-search attack family through ``run_attack_scenario``
twice per cell -- once on the legacy per-candidate full-forward engine
(``engine="full"``), once on the shared suffix-forward
:class:`~repro.attacks.session.SearchSession` (``engine="suffix"``) --
and records the before/after wall-clock per family.  The two engines
must produce **identical scenario payloads** (same flip sequences,
losses, ASR/accuracy trajectories); the recorder refuses to write an
artifact otherwise.

Locked cells (behind DRAM-Locker) are where the engine bites hardest:
blocked campaigns leave the weight state untouched, so the digest-
memoized accuracy/ASR probes and gradient passes collapse to lookups.
Open cells improve less -- every committed flip invalidates downstream
state -- and are recorded for honesty.

The script also measures the ``run_matrix`` worker-pool satellite:
pool startup with a cold pool vs the persistent pool, and the
parent-side victim prewarm that ships arrays to workers by fork
inheritance (or shared memory under spawn).

Run with:  python benchmarks/bench_attack_search.py [--iterations N]
"""

import argparse
import json
import os
import time

from repro.eval import Scale, run_matrix
from repro.eval.harness import (
    attack_prewarm,
    attack_scenarios,
    shutdown_worker_pool,
)
from repro.eval.regression import ATTACK_SEARCH_SCHEMA, host_meta
from repro.eval.experiments import run_attack_scenario

ARTIFACT = "BENCH_attack_search.json"

#: (family, protected, extra params) cells measured per engine.
CELLS = (
    ("bfa", True, {}),
    ("bfa", False, {}),
    ("tbfa-n-to-1", True, {"target_class": 0}),
    ("tbfa-n-to-1", False, {"target_class": 0}),
    ("tbfa-1-to-1", True, {"target_class": 0, "source_class": 1}),
    ("tbfa-stealthy", True, {"target_class": 0, "source_class": 1}),
    ("backdoor", True, {"target_class": 0}),
    ("multi-round-bfa", True, {"rounds": 3}),
)

#: The headline scenario of the recorded target (>=2x gate).
TARGET_CELL = "tbfa-n-to-1-locked"
TARGET_SPEEDUP = 2.0


def _run_cell(scale, family, protected, extra, engine, iterations):
    started = time.perf_counter()
    payload = run_attack_scenario(
        scale=scale,
        attack=family,
        arch="resnet20",
        protected=protected,
        iterations=iterations,
        engine=engine,
        **extra,
    )
    return time.perf_counter() - started, payload


def _pool_overhead(scale, iterations):
    """Worker startup with a cold vs persistent (warm) pool, plus the
    parent-side victim prewarm cost, over a two-scenario matrix."""
    scenarios = attack_scenarios(
        scale, iterations=iterations, attacks=["bfa"]
    )
    shutdown_worker_pool()
    cold = run_matrix(
        scenarios, workers=2, tag="pool-cold", strict=True,
        prewarm=attack_prewarm(scale),
    )
    warm = run_matrix(scenarios, workers=2, tag="pool-warm", strict=True)
    identical = (
        cold.as_artifact()["results"] == warm.as_artifact()["results"]
    )
    return {
        "cold_pool_startup_s": round(cold.pool_startup_s, 4),
        "warm_pool_startup_s": round(warm.pool_startup_s, 4),
        "prewarm_s": round(cold.prewarm_s, 4),
        "results_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--iterations", type=int, default=10,
                        help="flip budget per attack cell")
    parser.add_argument("--out", default=os.path.join("benchmarks", "artifacts"))
    args = parser.parse_args(argv)

    scale = Scale.quick()
    started = time.perf_counter()
    families = {}
    for family, protected, extra in CELLS:
        cell_name = f"{family}-{'locked' if protected else 'open'}"
        full_s, full_payload = _run_cell(
            scale, family, protected, extra, "full", args.iterations
        )
        suffix_s, suffix_payload = _run_cell(
            scale, family, protected, extra, "suffix", args.iterations
        )
        identical = full_payload == suffix_payload
        families[cell_name] = {
            "full_s": round(full_s, 3),
            "suffix_s": round(suffix_s, 3),
            "speedup": round(full_s / suffix_s, 2),
            "results_identical": identical,
        }
        print(
            f"{cell_name:28s} full {full_s:6.2f}s  suffix {suffix_s:6.2f}s "
            f"({full_s / suffix_s:4.2f}x)  identical={identical}"
        )
        if not identical:
            raise SystemExit(
                f"{cell_name}: suffix engine diverged from the "
                "full-forward reference; refusing to record"
            )

    pool = _pool_overhead(scale, args.iterations)
    print(
        f"pool startup: cold {pool['cold_pool_startup_s']:.3f}s, "
        f"warm {pool['warm_pool_startup_s']:.3f}s; "
        f"prewarm {pool['prewarm_s']:.2f}s"
    )
    if not pool["results_identical"]:
        raise SystemExit("pool reuse changed matrix results; refusing to record")

    document = {
        "schema": ATTACK_SEARCH_SCHEMA,
        "meta": host_meta(),
        "arch": "resnet20",
        "iterations": args.iterations,
        "families": families,
        "pool": pool,
        "timing": {"total_s": round(time.perf_counter() - started, 3)},
    }
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, ARTIFACT)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"artifact: {path}")

    target = families.get(TARGET_CELL)
    if target is not None and target["speedup"] < TARGET_SPEEDUP:
        raise SystemExit(
            f"{TARGET_CELL} speedup {target['speedup']}x is below the "
            f"{TARGET_SPEEDUP}x target"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
