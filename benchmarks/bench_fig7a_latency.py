"""Fig. 7(a): mitigation latency per refresh window vs number of BFA
attempts -- SHADOW at thresholds 1k/2k/4k/8k vs DRAM-Locker at 1k.

Paper shape: every SHADOW curve sits far above DL; SHADOW curves stop
escalating at their defense threshold (integrity compromised); DL has
no such plateau and stays near-flat.
"""

from repro.eval import run_fig7a


def test_fig7a_latency_per_tref(benchmark):
    result = benchmark.pedantic(run_fig7a, rounds=1, iterations=1)
    counts = result["attack_counts"]
    series = result["series"]
    print()
    print("=== Fig. 7(a): latency per Tref (s) vs #BFA ===")
    header = "attacks".ljust(12) + "".join(f"{n:>12}" for n in counts)
    print(header)
    for name, values in series.items():
        print(name.ljust(12) + "".join(f"{v:12.2e}" for v in values))

    last = len(counts) - 1
    # DL is the cheapest defense at every attack count.
    for name, values in series.items():
        if name != "DL":
            assert values[last] > series["DL"][last]
    # More aggressive shuffle thresholds cost more (until saturation).
    assert series["SHADOW1000"][1] > series["SHADOW2000"][1]
    assert series["SHADOW2000"][1] > series["SHADOW4000"][1]
    assert series["SHADOW4000"][1] > series["SHADOW8000"][1]
    # SHADOW1000 saturates inside the sweep (compromised), DL never does.
    assert series["SHADOW1000"][last] == series["SHADOW1000"][last - 1]
    assert series["DL"][last] > series["DL"][last - 1]
