"""Records BENCH_serving_live.json: the live serving frontend.

Exercises the redesigned public serving API (``repro.serving.serve``)
end to end -- recorded traces, deterministic replay, admission
control, and the wall-clock-paced threaded server -- and records:

* **replay equivalence** -- an infinite-speedup replay of a recorded
  trace must be bit-identical to the closed-loop run of the same
  config outside the ``"live"`` payload section, under both the bulk
  and the event-driven engine; any divergence refuses the artifact;
* **the overload triplet** -- the same solo workload re-recorded with
  its trace clock compressed ``OVERLOAD_FACTOR`` x (identical ops,
  arriving faster), replayed with no admission vs sojourn-pressure
  shedding vs a per-tenant token bucket: sojourn p99, shed counts, and
  SLA fingerprints are all deterministic simulated quantities the
  nightly ``compare_serving_live`` gate holds to exact equality.  The
  recorder itself enforces that each admitted cell's sojourn p99 never
  exceeds the unadmitted one's and that pressure shedding lands within
  ``HOLD_SLACK`` x its target (probabilistic shedding converges to the
  target's neighbourhood, not strictly under it);
* **attack absorption under overload** -- the compressed co-located
  trace replayed under DRAM-Locker (with pressure admission) and
  undefended: the locker cell must report zero victim flip events
  while shedding load, else the artifact is refused; the undefended
  cell's flip count and the simulated-throughput absorption ratio are
  recorded alongside;
* **the live pacing smoke** -- the threaded open-loop server run at a
  speedup targeting sub-second wall clock; only the conservation
  identity (offered == served + shed) is gated, wall seconds are
  recorded for context and never compared.

Run with:  python benchmarks/bench_serving_live.py
"""

import argparse
import json
import os
import time
from dataclasses import replace

from repro.eval.regression import SERVING_LIVE_SCHEMA, host_meta
from repro.serving import (
    AdmissionConfig,
    ServingConfig,
    ServingSimulation,
    record_serving_trace,
    replay_neutral,
    serve,
)

ARTIFACT = "BENCH_serving_live.json"

#: Arrival-compression factor for the overload cells: the base trace's
#: ops re-recorded into slices this many times shorter.
OVERLOAD_FACTOR = 2.0

#: Pressure/scaling sojourn target as a multiple of the uncompressed
#: baseline's sojourn p99.
P99_TARGET_FACTOR = 4.0

#: Pressure shedding must land within this factor of its target.
HOLD_SLACK = 2.0

#: Wall-clock budget the live smoke aims its speedup at.
LIVE_WALL_TARGET_S = 0.3


def _sla_fingerprint(payload: dict) -> dict:
    """The deterministic SLA stats the nightly gate pins exactly."""
    aggregate = payload["sla"]["aggregate"]
    fingerprint = {
        "requests": aggregate["requests"],
        "issued": aggregate["issued"],
        "blocked": aggregate["blocked"],
    }
    tenant0 = payload["sla"]["tenants"].get("tenant-0", {})
    latency = tenant0.get("latency_ns")
    if latency:
        fingerprint["tenant0_latency_ns"] = latency
    return fingerprint


def _replay_cells() -> dict:
    """Replay-equivalence checks under both execution engines."""
    cells = {}
    for engine in ("bulk", "events"):
        config = ServingConfig(channels=2, engine=engine, seed=0)
        trace = record_serving_trace(config)
        started = time.perf_counter()
        result = serve(config, trace=trace)
        replay_wall_s = time.perf_counter() - started
        started = time.perf_counter()
        closed = ServingSimulation(config).run()
        closed_wall_s = time.perf_counter() - started
        identical = replay_neutral(result.payload) == replay_neutral(closed)
        if not identical:
            raise SystemExit(
                f"{engine}: trace replay diverged from the closed loop; "
                "refusing to record"
            )
        name = f"{engine}-ch2"
        cells[name] = {
            "engine": engine,
            "identical": identical,
            "ops": len(trace),
            "replay_wall_s": round(replay_wall_s, 4),
            "closed_wall_s": round(closed_wall_s, 4),
        }
        print(f"replay {name}: bit-identical over {len(trace)} ops "
              f"(replay {replay_wall_s * 1e3:.1f}ms, "
              f"closed {closed_wall_s * 1e3:.1f}ms)")
    return cells


def _overload_cells() -> dict:
    """The solo overload triplet: open vs pressure vs token bucket."""
    base_config = ServingConfig(channels=1, colocated=False, seed=0)
    base_trace = record_serving_trace(base_config)
    base = serve(base_config, trace=base_trace)
    base_p99 = base.sojourn_p99_ns()
    target_ns = base_p99 * P99_TARGET_FACTOR
    hot_trace = record_serving_trace(
        base_config,
        slice_duration_s=base_trace.slice_duration_s / OVERLOAD_FACTOR,
    )
    base_rate = base_config.ops_per_slice / base_trace.slice_duration_s
    admissions = {
        "open": None,
        "pressure": AdmissionConfig(p99_target_ns=target_ns),
        "token": AdmissionConfig(rate=base_rate),
    }
    cells = {}
    for name, admission in admissions.items():
        config = replace(base_config, admission=admission)
        result = serve(config, trace=hot_trace)
        pacing = result.live["pacing"]
        p99 = result.sojourn_p99_ns()
        cell = {
            "sojourn_p99_ns": p99,
            "offered": pacing["offered"],
            "shed": result.shed_total,
            "shed_rate": round(result.shed_total / pacing["offered"], 4),
            "sla_fingerprint": _sla_fingerprint(result.payload),
        }
        if admission is not None:
            cell["p99_target_ns"] = target_ns
            cell["holds_p99"] = p99 <= HOLD_SLACK * target_ns
        cells[name] = cell
        print(f"overload {name:8s}: sojourn p99 {p99:9.1f}ns  "
              f"shed {result.shed_total:3d}/{pacing['offered']}")
    open_p99 = cells["open"]["sojourn_p99_ns"]
    for name, cell in cells.items():
        if name != "open" and cell["sojourn_p99_ns"] > open_p99:
            raise SystemExit(
                f"overload {name}: admitted sojourn p99 exceeds the "
                "unadmitted cell's; refusing to record"
            )
        if not cell.get("holds_p99", True):
            raise SystemExit(
                f"overload {name}: sojourn p99 {cell['sojourn_p99_ns']:.0f}ns "
                f"outside {HOLD_SLACK}x target "
                f"{cell['p99_target_ns']:.0f}ns; refusing to record"
            )
    return {
        "factor": OVERLOAD_FACTOR,
        "base_sojourn_p99_ns": base_p99,
        "p99_target_ns": target_ns,
        "cells": cells,
    }


def _colocated_cell() -> dict:
    """Compressed co-located attack: locker + admission vs undefended."""
    base_config = ServingConfig(channels=2, colocated=True, seed=0)
    base_trace = record_serving_trace(base_config)
    base = serve(base_config, trace=base_trace)
    target_ns = base.sojourn_p99_ns() * P99_TARGET_FACTOR
    hot_trace = record_serving_trace(
        base_config,
        slice_duration_s=base_trace.slice_duration_s / OVERLOAD_FACTOR,
    )
    locked = serve(
        replace(base_config, admission=AdmissionConfig(p99_target_ns=target_ns)),
        trace=hot_trace,
    )
    if locked.victim_flip_events:
        raise SystemExit(
            f"{locked.victim_flip_events} victim flip events under "
            "DRAM-Locker with live admission; refusing to record"
        )
    undefended = serve(replace(base_config, defense="None"), trace=hot_trace)
    locked_rps = locked.sla["aggregate"]["requests_per_sim_sec"]
    undefended_rps = undefended.sla["aggregate"]["requests_per_sim_sec"]
    cell = {
        "overload_factor": OVERLOAD_FACTOR,
        "p99_target_ns": target_ns,
        "protected": True,
        "victim_flip_events": locked.victim_flip_events,
        "undefended_flip_events": undefended.victim_flip_events,
        "shed": locked.shed_total,
        "offered": locked.live["pacing"]["offered"],
        "blocked": locked.sla["aggregate"]["blocked"],
        "attack_absorption": round(locked_rps / undefended_rps, 3),
        "sla_fingerprint": _sla_fingerprint(locked.payload),
    }
    print(f"co-located: victim flips {cell['victim_flip_events']} "
          f"(undefended {cell['undefended_flip_events']})  "
          f"shed {cell['shed']}/{cell['offered']}  "
          f"absorption {cell['attack_absorption']:.2f}x")
    return cell


def _live_smoke() -> dict:
    """The threaded wall-clock-paced server; gates conservation only."""
    config = ServingConfig(channels=1, colocated=False, seed=0)
    trace = record_serving_trace(config)
    # Trace clocks are milliseconds-scale, so the speedup that lands on
    # the wall budget is fractional: it *stretches* arrivals enough for
    # the executor to keep pace instead of flooding the backlog.
    speedup = trace.duration_s / LIVE_WALL_TARGET_S
    result = serve(replace(config, speedup=speedup), trace=trace)
    pacing = result.live["pacing"]
    conserved = pacing["offered"] == pacing["served"] + pacing["shed"]
    if not conserved:
        raise SystemExit(
            "live pacing violated offered == served + shed; "
            "refusing to record"
        )
    smoke = {
        "speedup": round(speedup, 3),
        "trace_duration_s": trace.duration_s,
        "wall_s": round(pacing["wall_s"], 4),
        "offered": pacing["offered"],
        "served": pacing["served"],
        "shed": pacing["shed"],
        "conserved": conserved,
    }
    print(f"live smoke: {smoke['served']}/{smoke['offered']} served "
          f"({smoke['shed']} shed) in {smoke['wall_s'] * 1e3:.0f}ms wall "
          f"at {speedup:.3g}x")
    return smoke


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--out", default=os.path.join("benchmarks", "artifacts")
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    document = {
        "schema": SERVING_LIVE_SCHEMA,
        "meta": host_meta(),
        "overload_factor": OVERLOAD_FACTOR,
        "p99_target_factor": P99_TARGET_FACTOR,
        "replay": {"cells": _replay_cells()},
        "overload": _overload_cells(),
        "colocated": _colocated_cell(),
        "live": _live_smoke(),
    }
    document["timing"] = {
        "total_s": round(time.perf_counter() - started, 3)
    }
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, ARTIFACT)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"artifact: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
