"""Table II: DRAM-Locker vs training-based defenses (ResNet-20).

Runs as a harness scenario (the same spec the CI smoke matrix uses).

Paper shape: every training-based defense trades clean accuracy for
some BFA resistance and still breaks within its flip budget;
DRAM-Locker preserves clean accuracy exactly and does not break.
"""

from repro.eval import Scale, Scenario, format_table, run_matrix


def run_table2_scenario(scale: Scale, flip_budget: int) -> dict:
    matrix = run_matrix(
        [
            Scenario(
                "table2", "table2", scale, seed=0,
                params=(("flip_budget", flip_budget),),
            )
        ],
        workers=1,
        tag="table2",
    )
    result = matrix["table2"]
    assert result.ok, result.error
    return result.payload


def test_table2_software_defenses(benchmark):
    result = benchmark.pedantic(
        run_table2_scenario,
        kwargs={"scale": Scale.quick(), "flip_budget": 30},
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    print()
    print(
        format_table(
            ["Model", "Clean Acc.(%)", "Post-Attack Acc.(%)", "Bit-Flips #"],
            [
                (
                    r["model"],
                    f"{r['clean_accuracy']:.2f}",
                    f"{r['post_attack_accuracy']:.2f}",
                    r["bit_flips"],
                )
                for r in rows
            ],
            f"=== Table II ({result['dataset']}) ===",
        )
    )

    by_model = {r["model"]: r for r in rows}
    baseline = by_model["Baseline ResNet-20"]
    locker = by_model["DRAM-Locker"]
    # The baseline breaks fastest (or at least breaks).
    assert baseline["broken"]
    # DRAM-Locker keeps clean accuracy exactly, at the paper's budget.
    assert not locker["broken"]
    assert locker["post_attack_accuracy"] == locker["clean_accuracy"]
    assert locker["bit_flips"] == 1150
    # Training-based defenses cost clean accuracy; DRAM-Locker does not.
    assert locker["clean_accuracy"] == baseline["clean_accuracy"]
