"""Section V (PTA): page-table attack with and without DRAM-Locker.

Paper claim: under PTA the attacker similarly needs a growing number of
iterations to cause an equivalent accuracy decline once DRAM-Locker
protects the page-table rows.
"""

from repro.eval import Scale, run_pta


def test_pta_protection(benchmark):
    result = benchmark.pedantic(
        run_pta, kwargs={"scale": Scale.quick()}, rounds=1, iterations=1
    )
    print()
    print("=== PTA: page-table attack ===")
    print(f"clean {result['clean_accuracy']:.1f}%  "
          f"(chance {result['chance_accuracy']:.1f}%)")
    for label, accs in result["curves"].items():
        print(label, [f"{a:.1f}" for a in accs])
    for label, stats in result["stats"].items():
        print(f"{label}: {stats}")

    clean = result["clean_accuracy"]
    stats = result["stats"]
    # Unprotected: PTEs get redirected and accuracy collapses.
    assert stats["without DRAM-Locker"]["executed_redirects"] >= 1
    assert stats["without DRAM-Locker"]["final_accuracy"] < clean - 15.0
    # Protected: no redirect lands; accuracy untouched.
    assert stats["with DRAM-Locker"]["executed_redirects"] == 0
    assert stats["with DRAM-Locker"]["redirected_pages"] == 0
    assert stats["with DRAM-Locker"]["final_accuracy"] >= clean - 1.0
