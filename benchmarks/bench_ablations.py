"""Ablations of DRAM-Locker's design choices (DESIGN.md section 6).

1. **Lock radius vs Half-Double**: radius-1 locking (the paper's
   default) stops classic adjacent hammering but *not* the distance-2
   Half-Double pattern the paper cites; radius-2 locking stops both.
2. **Guard-row layout vs contiguous weights**: the adjacent-lock policy
   is only hole-free when protected rows are not adjacent to each
   other; the planner quantifies the holes a contiguous layout leaves.
3. **Re-lock interval**: shorter intervals re-secure faster but cost
   more restore SWAPs under tenant traffic.

All three run as one harness matrix -- the same ``ablation_*`` scenario
specs the CI smoke job executes.
"""

from repro.eval import Scale, Scenario, run_matrix

ABLATION_SCENARIOS = [
    Scenario("ablation-radius", "ablation_radius", Scale.quick()),
    Scenario("ablation-layout", "ablation_layout", Scale.quick()),
    Scenario("ablation-relock", "ablation_relock", Scale.quick(), seed=0),
]


def run_ablation_matrix() -> dict[str, dict]:
    matrix = run_matrix(ABLATION_SCENARIOS, workers=1, tag="ablations")
    assert not matrix.failures, matrix.failures
    return {result.name: result.payload for result in matrix.results}


def test_ablation_matrix(benchmark):
    payloads = benchmark.pedantic(run_ablation_matrix, rounds=1, iterations=1)

    outcomes = payloads["ablation-radius"]
    print()
    print("=== Ablation: lock radius vs Half-Double (distance-2) attack ===")
    for radius, flipped in outcomes.items():
        print(f"radius {radius}: bit flipped = {flipped}")
    assert outcomes["1"] is True  # radius-1 locking misses Half-Double
    assert outcomes["2"] is False  # radius-2 locking stops it

    coverage = payloads["ablation-layout"]
    print()
    print("=== Ablation: guard-row vs contiguous weight layout ===")
    for layout, stats in coverage.items():
        print(f"{layout}: {stats}")
    assert coverage["guard-rows"]["complete"]
    assert not coverage["contiguous"]["complete"]
    assert coverage["contiguous"]["uncovered_victims"] > 0

    results = payloads["ablation-relock"]
    print()
    print("=== Ablation: re-lock interval vs SWAP traffic ===")
    for interval, stats in results.items():
        print(f"interval {int(interval):4d}: {stats}")
    swaps = [
        results[interval]["unlock_swaps"]
        for interval in sorted(results, key=int)
    ]
    # Shorter intervals re-lock sooner -> more unlock swaps under traffic.
    assert swaps[0] >= swaps[-1]
    assert all(results[i]["restores"] > 0 for i in results)
