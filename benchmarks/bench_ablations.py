"""Ablations of DRAM-Locker's design choices (DESIGN.md section 6).

1. **Lock radius vs Half-Double**: radius-1 locking (the paper's
   default) stops classic adjacent hammering but *not* the distance-2
   Half-Double pattern the paper cites; radius-2 locking stops both.
2. **Guard-row layout vs contiguous weights**: the adjacent-lock policy
   is only hole-free when protected rows are not adjacent to each
   other; the planner quantifies the holes a contiguous layout leaves.
3. **Re-lock interval**: shorter intervals re-secure faster but cost
   more restore SWAPs under tenant traffic.
"""

import numpy as np

from repro.controller import MemoryController
from repro.dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from repro.locker import DRAMLocker, LockMode, LockerConfig, plan_protection
from repro.nn import QuantizedModel, WeightStore, resnet20


def make_device(trh=100, half_double=None):
    cfg = DRAMConfig.small()
    return DRAMDevice(
        cfg,
        vulnerability=VulnerabilityMap(cfg, weak_cell_fraction=0.0),
        trh=trh,
        half_double_factor=half_double,
    )


def half_double_attack(device, controller, victim, bit):
    """Hammer at distance 2 (Half-Double) until the bit flips or budget ends."""
    device.vulnerability.register_template(victim, [bit])
    aggressors = [
        row
        for row in device.mapper.neighbors(victim, radius=2)
        if row not in device.mapper.neighbors(victim, radius=1)
    ]
    budget = device.timing.trh * 6
    for _ in range(budget // max(1, len(aggressors))):
        for aggressor in aggressors:
            controller.hammer(aggressor)
            byte = device.peek_bytes(victim, bit // 8, 1)[0]
            if byte >> (bit % 8) & 1:
                return True
    return False


def run_radius_ablation():
    outcomes = {}
    for radius in (1, 2):
        device = make_device(half_double=2.0)
        locker = DRAMLocker(device, LockerConfig())
        controller = MemoryController(device, locker=locker)
        victim = device.mapper.row_index((0, 0, 20))
        locker.protect([victim], radius=radius)
        outcomes[radius] = half_double_attack(device, controller, victim, 3)
    return outcomes


def run_layout_ablation():
    qmodel = QuantizedModel(resnet20(num_classes=4, width=4, input_hw=8, seed=0))
    coverage = {}
    for guard in (True, False):
        device = make_device()
        store = WeightStore(device, qmodel, guard_rows=True if guard else False)
        plan = plan_protection(
            device.mapper, store.data_rows, mode=LockMode.ADJACENT
        )
        coverage[guard] = {
            "data_rows": len(store.data_rows),
            "locked_rows": len(plan.locked_rows),
            "uncovered_victims": len(plan.uncovered_victims),
            "complete": plan.is_complete,
        }
    return coverage


def run_relock_ablation(intervals=(50, 200, 800)):
    results = {}
    for interval in intervals:
        device = make_device()
        locker = DRAMLocker(device, LockerConfig(relock_interval=interval))
        controller = MemoryController(device, locker=locker)
        locker.lock_rows([21])
        rng = np.random.default_rng(0)
        for _ in range(2000):
            row = int(rng.choice([21, 30, 40]))
            controller.read(row, privileged=True)
        results[interval] = {
            "unlock_swaps": locker.unlock_swaps,
            "restores": locker.restores,
            "defense_ns": device.stats.defense_ns,
        }
    return results


def test_ablation_lock_radius_vs_half_double(benchmark):
    outcomes = benchmark.pedantic(run_radius_ablation, rounds=1, iterations=1)
    print()
    print("=== Ablation: lock radius vs Half-Double (distance-2) attack ===")
    for radius, flipped in outcomes.items():
        print(f"radius {radius}: bit flipped = {flipped}")
    assert outcomes[1] is True  # radius-1 locking misses Half-Double
    assert outcomes[2] is False  # radius-2 locking stops it


def test_ablation_guard_layout_coverage(benchmark):
    coverage = benchmark.pedantic(run_layout_ablation, rounds=1, iterations=1)
    print()
    print("=== Ablation: guard-row vs contiguous weight layout ===")
    for guard, stats in coverage.items():
        layout = "guard-rows" if guard else "contiguous"
        print(f"{layout}: {stats}")
    assert coverage[True]["complete"]
    assert not coverage[False]["complete"]
    assert coverage[False]["uncovered_victims"] > 0


def test_ablation_relock_interval(benchmark):
    results = benchmark.pedantic(run_relock_ablation, rounds=1, iterations=1)
    print()
    print("=== Ablation: re-lock interval vs SWAP traffic ===")
    for interval, stats in results.items():
        print(f"interval {interval:4d}: {stats}")
    swaps = [results[i]["unlock_swaps"] for i in sorted(results)]
    # Shorter intervals re-lock sooner -> more unlock swaps under traffic.
    assert swaps[0] >= swaps[-1]
    assert all(results[i]["restores"] > 0 for i in results)
