"""Records BENCH_victim_cache.json: the trained-victim cache speedup.

Runs the registry-driven attack matrix (every registered attack, with
and without DRAM-Locker, all sharing one ResNet-20 victim) three ways:

* **cache off** -- every scenario trains its own victim (the pre-cache
  behaviour);
* **cache cold** -- a fresh cache directory: the first scenario trains
  and stores, the rest hit;
* **cache warm** -- the same directory again: every scenario hits.

The ``results`` sections of the three artifacts must be identical --
the cache returns bit-identical weights, so caching is purely a
wall-clock lever.  The recorded artifact asserts that and the >=2x
speedup the ROADMAP asks for.

Run with:  python benchmarks/bench_victim_cache.py [--iterations N]
"""

import argparse
import json
import os
import tempfile
import time

from repro.eval import Scale, run_matrix
from repro.eval.harness import attack_scenarios
from repro.nn.cache import CACHE_ENV_VAR, MEMORY_ENV_VAR

ARTIFACT = "BENCH_victim_cache.json"


def _timed_matrix(scenarios, tag: str) -> tuple[float, dict]:
    started = time.perf_counter()
    matrix = run_matrix(scenarios, workers=1, tag=tag, strict=True)
    elapsed = time.perf_counter() - started
    return elapsed, matrix.as_artifact()["results"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--iterations", type=int, default=4,
                        help="flip budget per attack scenario")
    parser.add_argument("--attacks", nargs="*", default=None,
                        help="attack subset (default: every registered attack)")
    parser.add_argument("--out", default=os.path.join("benchmarks", "artifacts"))
    args = parser.parse_args(argv)

    scenarios = attack_scenarios(
        Scale.quick(), iterations=args.iterations, attacks=args.attacks
    )
    print(f"{len(scenarios)} attack scenarios, one shared victim")

    previous = os.environ.get(CACHE_ENV_VAR)
    previous_memory = os.environ.get(MEMORY_ENV_VAR)
    with tempfile.TemporaryDirectory(prefix="victim-cache-bench-") as cache_dir:
        try:
            # This benchmark times the *disk* cache; the in-process
            # memory layer would serve every repeat lookup from RAM
            # and make the cold/warm legs measure the wrong thing.
            os.environ[MEMORY_ENV_VAR] = "off"
            os.environ[CACHE_ENV_VAR] = "off"
            off_s, off_results = _timed_matrix(scenarios, "cache-off")
            print(f"cache off : {off_s:7.2f}s")

            os.environ[CACHE_ENV_VAR] = cache_dir
            cold_s, cold_results = _timed_matrix(scenarios, "cache-cold")
            print(f"cache cold: {cold_s:7.2f}s ({off_s / cold_s:.2f}x)")

            warm_s, warm_results = _timed_matrix(scenarios, "cache-warm")
            print(f"cache warm: {warm_s:7.2f}s ({off_s / warm_s:.2f}x)")
        finally:
            for variable, old in (
                (CACHE_ENV_VAR, previous),
                (MEMORY_ENV_VAR, previous_memory),
            ):
                if old is None:
                    os.environ.pop(variable, None)
                else:
                    os.environ[variable] = old

    identical = off_results == cold_results == warm_results
    print(f"results bit-identical across cache modes: {identical}")
    if not identical:
        raise SystemExit("cache changed scenario results; refusing to record")

    document = {
        "schema": "dram-locker-victim-cache-bench/1",
        "scenarios": [scenario.name for scenario in scenarios],
        "attack_iterations": args.iterations,
        "workers": 1,
        "cache_off_s": round(off_s, 3),
        "cache_cold_s": round(cold_s, 3),
        "cache_warm_s": round(warm_s, 3),
        "speedup_cold": round(off_s / cold_s, 2),
        "speedup_warm": round(off_s / warm_s, 2),
        "results_identical": identical,
    }
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, ARTIFACT)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"artifact: {path}")

    if document["speedup_cold"] < 2.0:
        raise SystemExit(
            f"cache speedup {document['speedup_cold']}x is below the 2x target"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
