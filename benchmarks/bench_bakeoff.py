"""Records BENCH_bakeoff.json: the defense bake-off.

Runs the ``bakeoff`` harness set -- every registered attack against
every defense contender (``None`` / ``DRAM-Locker`` / ``RADAR`` /
``DNN-Defender``), serving-overhead cells with the victim-health
monitor riding them, and the RADAR chaos cell -- and records:

* **the protection-vs-SLA-overhead frontier** -- per defense, the mean
  and worst defended accuracy across the attack matrix (the protection
  axis) against the serving cell's simulated-throughput ratio versus
  the undefended baseline and its defense-time share (the overhead
  axis).  All ratios of simulated quantities, so they transfer across
  runner classes;
* **engine equivalence** -- every serving cell runs on the bulk
  reference engine and is re-run on the event-driven fast-forward
  engine; the payloads must match bit-for-bit (``engine_check``), else
  the artifact is refused;
* **the chaos-cell contract** -- RADAR with deterministic weight-row
  corruption injected mid-run must detect every injection (latency
  recorded from its detection log) and recover the victim to within
  ``--accuracy-budget`` (default 0.5) percentage points of the clean
  baseline, else the artifact is refused;
* **prevention intact** -- DRAM-Locker serving cells must keep zero
  victim flip events, else the artifact is refused;
* per-cell **SLA fingerprints** the nightly ``compare_bakeoff`` gate
  holds to exact equality.

Run with:  python benchmarks/bench_bakeoff.py [--attacks bfa pta ...]
"""

import argparse
import copy
import json
import os
import time

from dataclasses import replace

from repro.eval import Scale
from repro.eval.harness import (
    BAKEOFF_DEFENSES,
    Scenario,
    bakeoff_scenarios,
    run_scenario,
)
from repro.eval.regression import BAKEOFF_SCHEMA, host_meta

ARTIFACT = "BENCH_bakeoff.json"

#: Post-recovery accuracy must land within this many percentage points
#: of the clean baseline in the chaos cell.
ACCURACY_BUDGET_PCT = 0.5


def _slug(defense: str) -> str:
    return defense.lower().replace("/", "-")


def _run(scenario: Scenario) -> tuple[float, dict]:
    result = run_scenario(scenario)
    if not result.ok:
        raise SystemExit(f"{scenario.name} failed:\n{result.error}")
    return result.wall_clock_s, result.payload


def _engine_neutral(payload: dict) -> dict:
    """The payload with the engine knob removed -- what the engine
    equivalence contract (docs/ARCHITECTURE.md) requires to be
    bit-identical across ``bulk``/``events``."""
    neutral = copy.deepcopy(payload)
    neutral.get("serving_phase", {}).get("config", {}).pop("engine", None)
    return neutral


def _engine_check(
    scenario: Scenario, bulk_wall_s: float, bulk_payload: dict
) -> dict:
    """Re-run one serving cell on the events engine and require a
    bit-identical payload (modulo the engine knob itself)."""
    params = dict(scenario.params)
    params["engine"] = "events"
    events_wall_s, events_payload = _run(
        replace(scenario, params=tuple(sorted(params.items())))
    )
    identical = (
        _engine_neutral(bulk_payload) == _engine_neutral(events_payload)
    )
    if not identical:
        raise SystemExit(
            f"{scenario.name}: events-engine payload diverged from the "
            "bulk reference; refusing to record"
        )
    return {
        "identical": identical,
        "bulk_wall_s": round(bulk_wall_s, 4),
        "events_wall_s": round(events_wall_s, 4),
    }


def _sla_fingerprint(serving: dict) -> dict:
    """The deterministic SLA stats the nightly gate pins exactly."""
    aggregate = serving["sla"]["aggregate"]
    fingerprint = {
        "requests": aggregate["requests"],
        "issued": aggregate["issued"],
        "blocked": aggregate["blocked"],
    }
    tenant0 = serving["sla"].get("tenants", {}).get("tenant-0", {})
    latency = tenant0.get("latency_ns")
    if latency:
        fingerprint["tenant0_latency_ns"] = latency
    return fingerprint


def _attack_cell(payload: dict) -> dict:
    attack_phase = payload["attack_phase"]
    defense_section = attack_phase.get("defense") or {}
    cell = {
        "defense": payload["defense"],
        "attack": payload["attack"],
        "clean_accuracy": attack_phase["clean_accuracy"],
        "final_accuracy": attack_phase["final_accuracy"],
        "executed_flips": attack_phase["executed_flips"],
    }
    for key in (
        "mitigation_ns",
        "corruptions_detected",
        "rows_restored",
        "rows_zeroed",
        "swaps_performed",
    ):
        if key in defense_section:
            cell[key] = defense_section[key]
    locker = defense_section.get("locker")
    if locker is not None:
        cell["blocked_requests"] = locker["blocked_requests"]
    return cell


def _serving_cell(
    scenario: Scenario, wall_s: float, payload: dict
) -> dict:
    serving = payload["serving_phase"]
    health = serving["health"]
    return {
        "defense": payload["defense"],
        "channels": payload["channels"],
        "wall_s": round(wall_s, 4),
        "requests_per_sim_sec": serving["sla"]["aggregate"][
            "requests_per_sim_sec"
        ],
        "victim_flip_events": serving["victim"]["victim_flip_events"],
        "offered_ops": health["offered_ops"],
        "served_ops": health["served_ops"],
        "shed_ops": health["shed_ops"],
        "conserved": health["conserved"],
        "probes": health["probes"],
        "detections": health["detections"],
        "quarantines": health["quarantines"],
        "last_probe_accuracy": health["last_probe_accuracy"],
        "sla_fingerprint": _sla_fingerprint(serving),
        "engine_check": _engine_check(scenario, wall_s, payload),
    }


def _chaos_section(
    scenario: Scenario, wall_s: float, payload: dict, budget_pct: float
) -> dict:
    health = payload["serving_phase"]["health"]
    delta = None
    if health["post_recovery_accuracy"] is not None:
        delta = abs(
            health["clean_accuracy"] - health["post_recovery_accuracy"]
        )
    section = {
        "defense": payload["defense"],
        "injected_corruptions": health["injected_corruptions"],
        "injections_detected": health["injections_detected"],
        "all_injections_detected": health["all_injections_detected"],
        "detection_latency_ns": [
            entry["detection_latency_ns"] for entry in health["injections"]
        ],
        "detection_via": [
            entry["via"] for entry in health["injections"]
        ],
        "clean_accuracy": health["clean_accuracy"],
        "post_recovery_accuracy": health["post_recovery_accuracy"],
        "accuracy_delta_pct": delta,
        "accuracy_budget_pct": budget_pct,
        "recoveries": health["recoveries"],
        "golden_restores": health["golden_restores"],
        "quarantines": health["quarantines"],
        "radar": health.get("radar"),
        "conserved": health["conserved"],
        "engine_check": _engine_check(scenario, wall_s, payload),
    }
    failures = []
    if not section["all_injections_detected"]:
        failures.append(
            f"only {section['injections_detected']}/"
            f"{section['injected_corruptions']} injected corruptions "
            "detected"
        )
    if any(value is None for value in section["detection_latency_ns"]):
        failures.append("detection latency missing for an injection")
    if delta is None or delta > budget_pct:
        failures.append(
            f"post-recovery accuracy {health['post_recovery_accuracy']} "
            f"not within {budget_pct}pp of clean "
            f"{health['clean_accuracy']}"
        )
    if not section["conserved"]:
        failures.append("offered != served + shed")
    if failures:
        raise SystemExit(
            "chaos cell violated the detect-and-recover contract "
            f"({'; '.join(failures)}); refusing to record"
        )
    return section


def _frontier(attack_cells: dict, serving_cells: dict) -> dict:
    """Per defense: protection across the attack matrix vs serving
    overhead relative to the undefended baseline."""
    none_rps = {
        cell["channels"]: cell["requests_per_sim_sec"]
        for cell in serving_cells.values()
        if cell["defense"] == "None"
    }
    frontier = {}
    for defense in BAKEOFF_DEFENSES:
        accuracies = [
            cell["final_accuracy"]
            for cell in attack_cells.values()
            if cell["defense"] == defense
        ]
        point = {}
        if accuracies:
            point["mean_defended_accuracy"] = round(
                sum(accuracies) / len(accuracies), 4
            )
            point["worst_defended_accuracy"] = min(accuracies)
        mitigation = [
            cell["mitigation_ns"]
            for cell in attack_cells.values()
            if cell["defense"] == defense and "mitigation_ns" in cell
        ]
        if mitigation:
            point["mean_mitigation_ns"] = round(
                sum(mitigation) / len(mitigation), 2
            )
        throughput = {
            cell["channels"]: cell["requests_per_sim_sec"]
            for cell in serving_cells.values()
            if cell["defense"] == defense
        }
        point["serving_throughput_ratio"] = {
            f"ch{channels}": round(rps / none_rps[channels], 4)
            for channels, rps in sorted(throughput.items())
            if channels in none_rps and none_rps[channels]
        }
        point["serving_shed_ops"] = sum(
            cell["shed_ops"]
            for cell in serving_cells.values()
            if cell["defense"] == defense
        )
        frontier[defense] = point
    return frontier


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--attacks", nargs="+", default=None,
        help="restrict the attack matrix (default: every registered attack)",
    )
    parser.add_argument(
        "--accuracy-budget", type=float, default=ACCURACY_BUDGET_PCT,
        help="chaos-cell post-recovery accuracy budget vs clean (pp)",
    )
    parser.add_argument("--out", default=os.path.join("benchmarks", "artifacts"))
    args = parser.parse_args(argv)

    started = time.perf_counter()
    scenarios = bakeoff_scenarios(Scale.quick())
    if args.attacks is not None:
        keep = set(args.attacks)
        scenarios = [
            scenario
            for scenario in scenarios
            if dict(scenario.params).get("attack", "none") in keep
            or dict(scenario.params).get("serving")
        ]

    attack_cells = {}
    serving_cells = {}
    chaos = None
    for scenario in scenarios:
        wall_s, payload = _run(scenario)
        params = dict(scenario.params)
        if scenario.name.startswith("bakeoff-chaos"):
            chaos = _chaos_section(
                scenario, wall_s, payload, args.accuracy_budget
            )
            latencies = chaos["detection_latency_ns"]
            print(
                f"{scenario.name:42s} detected "
                f"{chaos['injections_detected']}/"
                f"{chaos['injected_corruptions']}  "
                f"latency {latencies}  "
                f"accuracy {chaos['post_recovery_accuracy']:.2f}% "
                f"(clean {chaos['clean_accuracy']:.2f}%)"
            )
        elif params.get("serving"):
            cell = _serving_cell(scenario, wall_s, payload)
            serving_cells[scenario.name] = cell
            print(
                f"{scenario.name:42s} "
                f"{cell['requests_per_sim_sec']:.3e} req/s (sim)  "
                f"shed {cell['shed_ops']:4d}  "
                f"victim flips {cell['victim_flip_events']}"
            )
            if (
                cell["defense"] == "DRAM-Locker"
                and cell["victim_flip_events"]
            ):
                raise SystemExit(
                    f"{scenario.name}: DRAM-Locker cell recorded "
                    f"{cell['victim_flip_events']} victim flip event(s); "
                    "refusing to record"
                )
        else:
            cell = _attack_cell(payload)
            attack_cells[scenario.name] = cell
            print(
                f"{scenario.name:42s} "
                f"{cell['clean_accuracy']:6.2f}% -> "
                f"{cell['final_accuracy']:6.2f}%  "
                f"flips {cell['executed_flips']}"
            )

    frontier = _frontier(attack_cells, serving_cells)
    for defense, point in frontier.items():
        worst = point.get("worst_defended_accuracy")
        ratio = point.get("serving_throughput_ratio", {})
        print(
            f"frontier {defense:14s} worst accuracy "
            f"{worst if worst is not None else '-':>6}  "
            f"throughput ratio {ratio}"
        )

    document = {
        "schema": BAKEOFF_SCHEMA,
        "meta": host_meta(),
        "defenses": list(BAKEOFF_DEFENSES),
        "attacks": sorted(
            {cell["attack"] for cell in attack_cells.values()}
        ),
        "attack_cells": attack_cells,
        "serving_cells": serving_cells,
        "chaos": chaos,
        "frontier": frontier,
        "timing": {"total_s": round(time.perf_counter() - started, 3)},
    }
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, ARTIFACT)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"artifact: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
