"""Table I: hardware overhead of RowHammer mitigation frameworks
(32GB, 16-bank DDR4)."""

from repro.eval import run_table1


def test_table1_overhead(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print()
    print(f"=== Table I ({result['config']}) ===")
    print(result["text"])

    reports = {r.framework: r for r in result["reports"]}
    locker = reports["DRAM-Locker"]
    # DRAM-Locker: zero DRAM capacity, one 56KB SRAM, smallest area.
    assert locker.capacity == {"DRAM": 0, "SRAM": 56 * 1024}
    assert locker.area_pct == 0.02
    for name, report in reports.items():
        if report.area_pct is not None and name != "DRAM-Locker":
            assert report.area_pct > locker.area_pct
    # Counter-per-row is the largest capacity consumer.
    assert reports["Counter per Row"].capacity["DRAM"] == 32 * 1024 ** 2
    assert "0.53MB‡+1.12MB†" in result["text"]
    assert "0+56KB†" in result["text"]
