"""Fig. 5: the 16-bit instruction set and the SWAP micro-program."""

from repro.eval import run_fig5


def test_fig5_isa_encoding(benchmark):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    print()
    print("=== Fig. 5: DRAM-Locker ISA ===")
    print("opcodes:", result["opcodes"])
    print("SWAP program:", " ".join(result["swap_program_words"]))
    print(result["swap_program_listing"])

    assert result["round_trip_ok"]
    assert result["opcodes"]["COPY"] == "01"
    assert result["opcodes"]["BNEZ"] == "10"
    assert result["opcodes"]["DONE"] == "11"
    assert len(result["swap_program_words"]) == 4  # 3 copies + done
