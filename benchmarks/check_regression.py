"""CLI for the nightly benchmark-regression gate.

Usage::

    python benchmarks/check_regression.py CURRENT.json BASELINE.json \
        [--runtime-tolerance 0.10] [--accuracy-tolerance 0.10]

Exits nonzero when the current artifact's runtime or any protected
accuracy regresses beyond tolerance versus the committed baseline (see
:mod:`repro.eval.regression` for what is compared).  Engine
microbenchmark artifacts -- attack-search
(``bench_attack_search.py``) and defended-hammer
(``bench_defended_hammer.py``) -- are detected by schema and gated on
engine equivalence plus per-cell speedup *ratios* instead, which do
transfer across runner classes.  Serving artifacts
(``bench_serving.py``) are gated on exact SLA-stat equivalence,
channel-scaling throughput ratios (``--speedup-tolerance``), and the
protected victim staying intact under the co-located attack; live
serving artifacts (``bench_serving_live.py``) on replay equivalence,
exact overload fingerprints, and admission holding the sojourn
target; defense bake-off artifacts (``bench_bakeoff.py``) on the
chaos-cell detect-and-recover contract, engine equivalence, exact SLA
fingerprints, and the protection frontier; telemetry-overhead
artifacts (``bench_obs.py``) on enabled/disabled payload identity,
exact event counts, and the disabled-path overhead budget.  Every
comparison reads only its named sections, so the host-provenance
``meta`` block newer artifacts carry is ignored against baselines
recorded before it existed.  Refresh a baseline by copying a
trusted run's artifact over the ``*_baseline.json`` file under
``benchmarks/artifacts/`` -- regenerate harness baselines on the same
runner class the workflow uses, since wall-clock baselines do not
transfer between machines.
"""

import argparse

from repro.eval.regression import (
    ATTACK_SEARCH_SCHEMA,
    BAKEOFF_SCHEMA,
    DEFENDED_HAMMER_SCHEMA,
    OBS_SCHEMA,
    RUNTABLE_BENCH_SCHEMA,
    SERVING_LIVE_SCHEMA,
    SERVING_SCHEMA,
    compare_artifacts,
    compare_attack_search,
    compare_bakeoff,
    compare_defended_hammer,
    compare_obs,
    compare_runtable,
    compare_serving,
    compare_serving_live,
    load_artifact,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline artifact")
    parser.add_argument("--runtime-tolerance", type=float, default=0.10)
    parser.add_argument("--accuracy-tolerance", type=float, default=0.10)
    parser.add_argument("--speedup-tolerance", type=float, default=0.25)
    args = parser.parse_args(argv)

    current = load_artifact(args.current)
    baseline = load_artifact(args.baseline)
    if current.get("schema") == ATTACK_SEARCH_SCHEMA:
        report = compare_attack_search(
            current, baseline, speedup_tolerance=args.speedup_tolerance
        )
    elif current.get("schema") == DEFENDED_HAMMER_SCHEMA:
        report = compare_defended_hammer(
            current, baseline, speedup_tolerance=args.speedup_tolerance
        )
    elif current.get("schema") == SERVING_SCHEMA:
        report = compare_serving(
            current, baseline, throughput_tolerance=args.speedup_tolerance
        )
    elif current.get("schema") == SERVING_LIVE_SCHEMA:
        report = compare_serving_live(current, baseline)
    elif current.get("schema") == RUNTABLE_BENCH_SCHEMA:
        report = compare_runtable(
            current, baseline, overhead_tolerance=args.speedup_tolerance
        )
    elif current.get("schema") == BAKEOFF_SCHEMA:
        report = compare_bakeoff(
            current, baseline, accuracy_tolerance=args.accuracy_tolerance
        )
    elif current.get("schema") == OBS_SCHEMA:
        report = compare_obs(current, baseline)
    else:
        report = compare_artifacts(
            current,
            baseline,
            runtime_tolerance=args.runtime_tolerance,
            accuracy_tolerance=args.accuracy_tolerance,
        )
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
