"""CLI for the nightly benchmark-regression gate.

Usage::

    python benchmarks/check_regression.py CURRENT.json BASELINE.json \
        [--runtime-tolerance 0.10] [--accuracy-tolerance 0.10]

Exits nonzero when the current artifact's runtime or any protected
accuracy regresses beyond tolerance versus the committed baseline (see
:mod:`repro.eval.regression` for what is compared).  Refresh a baseline
by copying a trusted run's artifact over the ``*_baseline.json`` file
under ``benchmarks/artifacts/`` -- regenerate it on the same runner
class the workflow uses, since wall-clock baselines do not transfer
between machines.
"""

import argparse

from repro.eval.regression import compare_artifacts, load_artifact


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline artifact")
    parser.add_argument("--runtime-tolerance", type=float, default=0.10)
    parser.add_argument("--accuracy-tolerance", type=float, default=0.10)
    args = parser.parse_args(argv)

    report = compare_artifacts(
        load_artifact(args.current),
        load_artifact(args.baseline),
        runtime_tolerance=args.runtime_tolerance,
        accuracy_tolerance=args.accuracy_tolerance,
    )
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
