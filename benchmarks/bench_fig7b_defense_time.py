"""Fig. 7(b): defense time in days at the 99% success criterion.

Paper shape: SHADOW's defense time grows with the threshold but stays
bounded (~hundreds to ~2,500 days); DRAM-Locker exceeds the plot
(">4000" days) even charged with a 10% per-row-copy error.
"""

from repro.eval import run_fig7b


def test_fig7b_defense_time(benchmark):
    result = benchmark.pedantic(run_fig7b, rounds=1, iterations=1)
    print()
    print("=== Fig. 7(b): defense time (days) ===")
    for threshold, days in result["shadow_days"].items():
        print(f"SHADOW @ {threshold}: {days:8.0f} days")
    print(f"DRAM-Locker @ 1K, 10% copy error: {result['locker_days']:.3g} days")

    shadow = result["shadow_days"]
    days = [shadow[k] for k in ("1K", "2K", "4K", "8K")]
    assert days == sorted(days)  # grows with threshold
    assert days[-1] <= 4000  # SHADOW stays on-plot
    assert 1500 <= days[-1] <= 3500  # ~2,500 days at 8K
    assert result["locker_exceeds_plot"]
    assert result["locker_days"] > 4000
