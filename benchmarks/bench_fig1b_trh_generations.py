"""Fig. 1(b): RowHammer threshold by DRAM generation."""

from repro.eval import format_table, run_fig1b


def test_fig1b_trh_table(benchmark):
    rows = benchmark.pedantic(run_fig1b, rounds=1, iterations=1)
    print()
    print(format_table(["DRAM Generation", "TRH"], rows, "=== Fig. 1(b) ==="))

    table = dict(rows)
    assert table["DDR3 (old)"] == "139K"
    assert table["DDR3 (new)"] == "22.4K"
    assert table["DDR4 (old)"] == "17.5K"
    assert table["DDR4 (new)"] == "10K"
    assert table["LPDDR4 (old)"] == "16.8K"
    assert table["LPDDR4 (new)"] == "4.8K - 9K"
