"""Fig. 8: BFA accuracy vs iteration with and without DRAM-Locker.

(a) ResNet-20 / synthetic CIFAR-10, (b) VGG-11 / synthetic CIFAR-100.
Both run against the full simulated stack: weights in DRAM behind the
controller, attacker hammering through it, DRAM-Locker charged with the
+/-20% process corner's 9.6% SWAP failure rate.

Both figures are expressed as harness :class:`Scenario` specs and
executed through ``run_matrix`` -- the same specs the CI smoke job and
``python -m repro.eval matrix`` run, so the benchmark, the CI artifact,
and the CLI can never drift apart.

Paper shape: the unprotected curve collapses within tens of iterations;
the protected curve degrades at roughly the swap-failure rate, i.e.
~10x slower.
"""

from repro.eval import Scale, Scenario, downsample, format_series, run_matrix


def run_fig8_scenario(arch: str, scale: Scale) -> dict:
    """One Fig. 8 panel as a single-scenario harness matrix."""
    name = f"fig8-{arch}"
    matrix = run_matrix(
        [Scenario(name, "fig8", scale, seed=0, params=(("arch", arch),))],
        workers=1,
        tag=name,
    )
    result = matrix[name]
    assert result.ok, result.error
    return result.payload


def check_and_print(result, title):
    print()
    print(f"=== Fig. 8: {title} ===")
    print(f"clean {result['clean_accuracy']:.1f}%  "
          f"(chance {result['chance_accuracy']:.1f}%)")
    for label, accs in result["curves"].items():
        xs, ys = zip(*downsample(accs, 10))
        print(format_series(label, xs, ys, "{:.1f}"))
    for label, stats in result["stats"].items():
        print(f"{label}: {stats}")

    clean = result["clean_accuracy"]
    without = result["curves"]["without DRAM-Locker"]
    protected = result["curves"]["with DRAM-Locker"]
    stats = result["stats"]
    # Unprotected: the attack lands every iteration and wrecks accuracy.
    assert stats["without DRAM-Locker"]["executed_flips"] == len(without)
    assert without[-1] < clean - 20.0
    # Protected: most campaigns are blocked outright...
    unprotected_flips = stats["without DRAM-Locker"]["executed_flips"]
    protected_flips = stats["with DRAM-Locker"]["executed_flips"]
    assert protected_flips < unprotected_flips / 2
    assert stats["with DRAM-Locker"]["blocked_activations"] > 0
    # ...so the protected model ends far above the unprotected one.
    assert protected[-1] > without[-1] + 10.0


def test_fig8a_resnet20(benchmark):
    result = benchmark.pedantic(
        run_fig8_scenario,
        kwargs={"arch": "resnet20", "scale": Scale.quick()},
        rounds=1,
        iterations=1,
    )
    check_and_print(result, "(a) ResNet-20 on synthetic CIFAR-10")


def test_fig8b_vgg11(benchmark):
    result = benchmark.pedantic(
        run_fig8_scenario,
        kwargs={"arch": "vgg11", "scale": Scale.quick()},
        rounds=1,
        iterations=1,
    )
    check_and_print(result, "(b) VGG-11 on synthetic CIFAR-100")
