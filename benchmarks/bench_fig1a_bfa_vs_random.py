"""Fig. 1(a): targeted BFA vs random bit flips (8-bit VGG-11).

Paper shape: BFA drives accuracy to near-chance within tens of flips;
100 random flips barely move it.
"""

from repro.eval import Scale, downsample, format_series, run_fig1a


def test_fig1a_bfa_vs_random(benchmark):
    result = benchmark.pedantic(
        run_fig1a, kwargs={"scale": Scale.quick()}, rounds=1, iterations=1
    )
    print()
    print("=== Fig. 1(a): BFA vs random attack (VGG-11, synthetic CIFAR-100) ===")
    print(f"clean accuracy: {result['clean_accuracy']:.1f}%  "
          f"(chance {result['chance_accuracy']:.1f}%)")
    for name in ("bfa", "random"):
        xs, ys = zip(*downsample(result[name], 10))
        print(format_series(f"{name} accuracy vs #flips", xs, ys, "{:.1f}"))

    clean = result["clean_accuracy"]
    chance = result["chance_accuracy"]
    # Shape: BFA collapses toward chance; random stays near clean.
    assert result["bfa"][-1] < clean * 0.5
    assert result["bfa"][-1] < result["random"][-1]
    assert result["random"][-1] > clean - 30.0
    assert result["random"][-1] - result["bfa"][-1] > 10.0
