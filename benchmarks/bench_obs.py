"""Records BENCH_obs.json: the telemetry core's overhead contract.

Runs the ``defended_hammer`` harness scenario per (defense, engine)
cell twice -- telemetry disabled (the default) and telemetry enabled
through :func:`repro.obs.enabled_scope` -- and records both halves of
the :mod:`repro.obs` contract:

* **Observational inertness** (exact): the enabled run's payload must
  be bit-identical to the disabled run's, and the deterministic event
  counts (metric ``updates``, ``audit_events``) are recorded for the
  baseline gate.  The recorder refuses to write an artifact when any
  payload diverges.
* **Zero overhead when disabled**: differencing two wall-clock runs
  cannot resolve a sub-1% effect on a CI runner, so the disabled-path
  cost is *constructed* instead: a microbenchmark times the exact
  guard hot paths execute (``tel = obs.ACTIVE`` plus a ``None`` test),
  and each cell's ``disabled_pct`` is that per-check cost times the
  number of guard sites hit (bounded below by the enabled run's
  update count) as a percentage of the cell's telemetry-off runtime.
  ``compare_obs`` gates it under 1% absolute.

The ``enabled_ratio`` (on/off wall-clock) is also recorded; the gate
only bounds its growth versus the committed baseline -- the enabled
path is allowed to cost real time.

Run with:  python benchmarks/bench_obs.py [--repeats N]
"""

import argparse
import json
import os
import time

from repro import obs
from repro.eval import Scale
from repro.eval.harness import Scenario, run_scenario
from repro.eval.regression import OBS_SCHEMA, compare_obs, host_meta

ARTIFACT = "BENCH_obs.json"

#: (defense, engine) cells measured, in recorded order.  DRAM-Locker
#: exercises the densest instrumentation (locker + controller + audit);
#: None is the undefended fast path where a fixed guard cost is the
#: largest *fraction* of runtime.
CELLS = (
    ("None", "scalar"),
    ("None", "bulk"),
    ("None", "events"),
    ("DRAM-Locker", "scalar"),
    ("DRAM-Locker", "bulk"),
    ("DRAM-Locker", "events"),
)


def _cell_name(defense: str, engine: str) -> str:
    return f"{defense.lower().replace('/', '-')}/{engine}"


def _scenario(defense: str, engine: str, trh: int) -> Scenario:
    return Scenario(
        f"obs-{defense.lower().replace('/', '-')}-{engine}",
        "defended_hammer",
        Scale.quick(),
        seed=0,
        params=(("defense", defense), ("trh", trh), ("engine", engine)),
    )


def _run(scenario: Scenario, repeats: int, enabled: bool):
    """Best-of-``repeats`` wall-clock plus the (deterministic) payload
    and, when enabled, the per-cell telemetry snapshot."""
    best = float("inf")
    payload = None
    telemetry = None
    for _ in range(repeats):
        if enabled:
            with obs.enabled_scope():
                result = run_scenario(scenario)
        else:
            result = run_scenario(scenario)
        if not result.ok:
            raise SystemExit(f"{scenario.name} failed:\n{result.error}")
        if payload is not None and result.payload != payload:
            raise SystemExit(
                f"{scenario.name}: nondeterministic payload across repeats; "
                "refusing to record"
            )
        payload = result.payload
        telemetry = result.telemetry
        best = min(best, result.wall_clock_s)
    return best, payload, telemetry


def _guard_cost_ns(checks: int = 2_000_000) -> float:
    """Per-check cost of the disabled-path guard, loop overhead removed.

    Times exactly what instrumented hot paths run when telemetry is
    off: a module-attribute load of ``obs.ACTIVE`` and a ``None`` test.
    """
    assert obs.ACTIVE is None
    indices = range(checks)
    started = time.perf_counter_ns()
    for _ in indices:
        tel = obs.ACTIVE
        if tel is not None:  # pragma: no cover - disabled by construction
            raise AssertionError
    guarded = time.perf_counter_ns() - started
    started = time.perf_counter_ns()
    for _ in indices:
        pass
    empty = time.perf_counter_ns() - started
    # Clamp at a floor so a noisy empty-loop measurement can never
    # yield a zero (or negative) cost and trivially pass the gate.
    return max((guarded - empty) / checks, 0.05)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trh", type=int, default=3000,
                        help="RowHammer threshold of the benched device")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell (best is recorded)")
    parser.add_argument("--out", default=os.path.join("benchmarks", "artifacts"))
    parser.add_argument(
        "--check-against", default=None, metavar="BASELINE",
        help="also gate the fresh artifact against this baseline "
             "(exit 1 on regression)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    guard_ns = _guard_cost_ns()
    print(f"guard cost: {guard_ns:.1f}ns per disabled-path check")

    cells = {}
    for defense, engine in CELLS:
        scenario = _scenario(defense, engine, args.trh)
        off_s, off_payload, _ = _run(scenario, args.repeats, enabled=False)
        on_s, on_payload, telemetry = _run(scenario, args.repeats, enabled=True)
        identical = off_payload == on_payload
        updates = telemetry["metrics"]["updates"]
        audit_events = telemetry["audit"]["events"]
        disabled_pct = guard_ns * updates / (off_s * 1e9) * 100.0
        name = _cell_name(defense, engine)
        cells[name] = {
            "off_s": round(off_s, 4),
            "on_s": round(on_s, 4),
            "enabled_ratio": round(on_s / off_s, 3),
            "payload_identical": identical,
            "updates": updates,
            "audit_events": audit_events,
            "disabled_pct": round(disabled_pct, 4),
        }
        print(
            f"{name:22s} off {off_s * 1e3:8.1f}ms  on {on_s * 1e3:8.1f}ms  "
            f"(x{on_s / off_s:5.2f})  updates={updates:6d}  "
            f"audit={audit_events:4d}  disabled~{disabled_pct:.4f}%  "
            f"identical={identical}"
        )
        if not identical:
            raise SystemExit(
                f"{name}: telemetry changed the simulation payload; "
                "refusing to record"
            )

    document = {
        "schema": OBS_SCHEMA,
        "meta": host_meta(),
        "trh": args.trh,
        "repeats": args.repeats,
        "guard": {"ns_per_check": round(guard_ns, 2)},
        "cells": cells,
        "timing": {"total_s": round(time.perf_counter() - started, 3)},
    }
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, ARTIFACT)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"artifact: {path}")

    if args.check_against is not None:
        with open(args.check_against, encoding="utf-8") as handle:
            baseline = json.load(handle)
        report = compare_obs(document, baseline)
        print(report.summary())
        if not report.ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
