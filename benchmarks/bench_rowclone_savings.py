"""Section II background: RowClone's bulk-copy savings.

Paper (citing Seshadri et al.): in-DRAM copy reduces latency ~11.6x and
energy ~74.4x against a copy over the memory channel.
"""

from repro.eval import run_rowclone_savings


def test_rowclone_savings(benchmark):
    result = benchmark.pedantic(run_rowclone_savings, rounds=1, iterations=1)
    print()
    print("=== RowClone bulk-copy savings (8KB row) ===")
    print(f"channel copy : {result['channel_latency_ns']:8.1f} ns  "
          f"{result['channel_energy_nj']:8.1f} nJ")
    print(f"rowclone copy: {result['rowclone_latency_ns']:8.1f} ns  "
          f"{result['rowclone_energy_nj']:8.1f} nJ")
    print(f"latency factor: {result['latency_factor']:.1f}x "
          f"(paper {result['paper_latency_factor']}x)")
    print(f"energy  factor: {result['energy_factor']:.1f}x "
          f"(paper {result['paper_energy_factor']}x)")

    assert 8 <= result["latency_factor"] <= 16
    assert 50 <= result["energy_factor"] <= 100
