"""Records BENCH_runtable.json: fault-tolerant run-table orchestration.

Exercises the fleet layer (``repro.eval.runtable``) end to end and
records the three properties the nightly ``compare_runtable`` gate
holds:

* **checkpoint transparency** -- the demo table executed with a
  checkpoint journal must produce a results section bit-identical to
  a plain ``run_matrix`` sweep of the same cells
  (``results_identical``), and the journalling overhead is recorded
  as a wall-clock *ratio* (which transfers across runner classes,
  unlike wall seconds);
* **crash recovery** -- a subprocess running the demo table is
  SIGKILLed once its journal holds at least two cells, then resumed
  with ``--resume``; the merged artifact's results section must be
  bit-identical to an uninterrupted reference run
  (``resume_identical``), with the journal line count at kill time
  recorded so the gate can verify the resume path was actually
  exercised;
* **fault containment** -- the chaos table runs under its canned
  :class:`~repro.eval.faults.FaultPlan`: the crash-once cell must
  recover via retry, the always-crashing cell must quarantine with
  its attempt history, and the channel-fault cell must conserve
  ``offered == served + shed`` with zero victim flips under
  DRAM-Locker.  Counts and the conservation tally are recorded for
  exact comparison against the baseline.

Run with:  python benchmarks/bench_runtable.py
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.eval.harness import SupervisorConfig, run_matrix
from repro.eval.regression import RUNTABLE_BENCH_SCHEMA, host_meta
from repro.eval.runtable import RUNTABLE_SETS, run_table

ARTIFACT = "BENCH_runtable.json"

#: Workers for every sweep in this bench (>= 2 so worker crash faults
#: never take the bench itself down).
WORKERS = 2

#: The recovery victim is killed once its journal holds this many cells.
KILL_AFTER_CELLS = 2


def _checkpoint_cell(work_dir: str) -> dict:
    """Demo table with journalling vs a plain run_matrix sweep."""
    spec, _faults = RUNTABLE_SETS["demo"]()
    # Warm the persistent worker pool first so its one-time spawn cost
    # lands on neither timed sweep (it would otherwise be charged to
    # whichever run goes first and skew the overhead ratio).
    run_matrix(spec.cells()[:WORKERS], workers=WORKERS, tag="warmup")
    started = time.perf_counter()
    table = run_table(spec, work_dir, workers=WORKERS, tag="ckpt")
    table_s = time.perf_counter() - started

    started = time.perf_counter()
    plain = run_matrix(
        spec.cells(),
        workers=WORKERS,
        tag="plain",
        supervise=SupervisorConfig(retries=spec.retries),
    )
    plain_s = time.perf_counter() - started
    plain_results = plain.as_artifact()["results"]

    cell = {
        "cells": table.cells,
        "results_identical": table.artifact["results"] == plain_results,
        "table_s": round(table_s, 4),
        "plain_s": round(plain_s, 4),
        "overhead_ratio": round(table_s / plain_s, 3),
    }
    if not cell["results_identical"]:
        raise SystemExit(
            "checkpointed run-table diverged from plain run_matrix; "
            "refusing to record"
        )
    print(
        f"checkpoint: {cell['cells']} cells identical to plain sweep, "
        f"overhead {cell['overhead_ratio']:.2f}x "
        f"({table_s:.2f}s vs {plain_s:.2f}s)"
    )
    return cell


def _recovery_cell(work_dir: str) -> dict:
    """SIGKILL a demo-table subprocess mid-sweep, resume, compare."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH"),
        )
        if part
    )
    base_cmd = [
        sys.executable, "-m", "repro.eval", "runtable",
        "--set", "demo", "--out", work_dir,
        "--workers", str(WORKERS),
    ]
    subprocess.run(
        base_cmd + ["--tag", "ref"],
        env=env, check=True, capture_output=True,
    )
    with open(os.path.join(work_dir, "RUNTABLE_ref.json")) as handle:
        reference = json.load(handle)

    victim = subprocess.Popen(
        base_cmd + ["--tag", "victim"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    journal = os.path.join(work_dir, "victim.journal.jsonl")
    deadline = time.time() + 120
    lines = 0
    while time.time() < deadline and victim.poll() is None:
        if os.path.exists(journal):
            with open(journal) as handle:
                lines = len(handle.read().splitlines())
            if lines >= KILL_AFTER_CELLS:
                break
        time.sleep(0.005)
    victim.send_signal(signal.SIGKILL)
    victim.wait()

    subprocess.run(
        base_cmd + ["--tag", "victim", "--resume"],
        env=env, check=True, capture_output=True,
    )
    with open(os.path.join(work_dir, "RUNTABLE_victim.json")) as handle:
        resumed = json.load(handle)

    cell = {
        "journal_lines_at_kill": lines,
        "resumed_cells": resumed["timing"]["resumed"],
        "resume_identical": resumed["results"] == reference["results"],
    }
    if not cell["resume_identical"]:
        raise SystemExit(
            "SIGKILLed + resumed run-table diverged from the "
            "uninterrupted run; refusing to record"
        )
    print(
        f"recovery: killed at {lines} journalled cell(s), resumed "
        f"{cell['resumed_cells']} -- results bit-identical"
    )
    return cell


def _chaos_cell(work_dir: str) -> dict:
    """The chaos table under its canned fault plan."""
    spec, faults = RUNTABLE_SETS["chaos"]()
    table = run_table(spec, work_dir, workers=WORKERS, faults=faults)
    results = table.artifact["results"]
    attempts = table.artifact["timing"].get("attempts", {})
    recovered = sum(
        1
        for name, history in attempts.items()
        if history
        and not (
            isinstance(results[name], dict) and "error" in results[name]
        )
    )
    fault_payload = next(
        payload
        for payload in results.values()
        if isinstance(payload, dict) and "fault" in payload
    )
    fault = dict(
        fault_payload["fault"],
        victim_flip_events=fault_payload["victim"]["victim_flip_events"],
    )
    cell = {
        "cells": table.cells,
        "quarantined": table.quarantined,
        "errors": table.errors,
        "recovered": recovered,
        "attempts": attempts,
        "channel_fault": fault,
    }
    if not fault["conserved"] or fault["victim_flip_events"]:
        raise SystemExit(
            "channel-fault cell broke conservation or flipped victim "
            "bits under DRAM-Locker; refusing to record"
        )
    print(
        f"chaos: {cell['quarantined']} quarantined, {recovered} "
        f"recovered via retry, channel fault shed "
        f"{fault['shed_ops']}/{fault['offered_ops']} "
        f"(victim flips {fault['victim_flip_events']})"
    )
    return cell


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--out", default=os.path.join("benchmarks", "artifacts")
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="bench-runtable-") as work:
        document = {
            "schema": RUNTABLE_BENCH_SCHEMA,
            "meta": host_meta(),
            "workers": WORKERS,
            "checkpoint": _checkpoint_cell(os.path.join(work, "ckpt")),
            "recovery": _recovery_cell(os.path.join(work, "recovery")),
            "chaos": _chaos_cell(os.path.join(work, "chaos")),
        }
    document["timing"] = {
        "total_s": round(time.perf_counter() - started, 3)
    }
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, ARTIFACT)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"artifact: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
