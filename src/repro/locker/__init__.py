"""DRAM-Locker: lock-table, SWAP engine, re-lock policy, planner."""

from .lock_table import LockTable, LockTableFullError
from .locker import LOCK_LOOKUP_NS, AccessDecision, DRAMLocker, LockerConfig
from .planner import LockMode, ProtectionPlan, plan_protection
from .swap import SwapEngine, SwapResult

__all__ = [
    "AccessDecision",
    "DRAMLocker",
    "LOCK_LOOKUP_NS",
    "LockMode",
    "LockTable",
    "LockTableFullError",
    "LockerConfig",
    "ProtectionPlan",
    "SwapEngine",
    "SwapResult",
    "plan_protection",
]
