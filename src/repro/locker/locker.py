"""The DRAM-Locker defense.

Combines the lock-table, the three-copy SWAP engine, the re-lock policy
and the row-indirection bookkeeping into the controller-facing object:

* unprivileged requests to locked rows are **skipped** (Fig. 4(a));
* privileged requests trigger an **unlock-SWAP** that migrates the data
  to a free row in the same subarray (Fig. 4(b)) and are then served at
  the new address (Fig. 4(c));
* after ``relock_interval`` R/W instructions the row is **re-secured**
  (Fig. 4(d)): the data is swapped back home; if the restoring swap
  fails, the lock instead *follows the data* -- the paper's literal
  "reinstate the swapped address into the lock-table";
* a **failed unlock-SWAP** leaves the data in place; the controller
  falls back to direct access (availability over security), opening the
  temporary exposure window the paper's 9.6 %-error analysis charges.
"""

from __future__ import annotations

import heapq
import sys
from dataclasses import dataclass, field
from enum import Enum
from itertools import count
from typing import Iterable

import numpy as np

from .. import obs
from ..controller.request import MemRequest
from ..defenses.base import OverheadReport
from ..dram.config import DRAMConfig
from ..dram.device import DRAMDevice
from ..dram.stats import walk_add
from .lock_table import LOCK_LOOKUP_NS, LockTable
from .planner import LockMode, ProtectionPlan, plan_protection
from .swap import SwapEngine

__all__ = ["LockerConfig", "AccessDecision", "DRAMLocker", "LOCK_LOOKUP_NS"]


@dataclass(frozen=True)
class LockerConfig:
    """Tunables of one DRAM-Locker instance.

    Attributes:
        lock_table_bytes: SRAM budget of the lock-table (paper: 56 KB).
        relock_interval: R/W instructions between an unlock-SWAP and the
            re-secure step (paper: 1 000, matching the TRH=1k worst case).
        copy_error_rate: Per-RowClone failure probability from the
            Section IV-D Monte-Carlo model (0 / 0.0014 / 0.096).
        fallback_on_swap_failure: Serve a privileged request directly
            when its unlock-SWAP fails (True, the availability-first
            behaviour the security analysis assumes) or block it.
        seed: Seed for the swap-failure draws.
    """

    lock_table_bytes: int = 56 * 1024
    relock_interval: int = 1000
    copy_error_rate: float = 0.0
    fallback_on_swap_failure: bool = True
    seed: int = 0


@dataclass
class AccessDecision:
    """The locker's verdict on one memory request."""

    allowed: bool
    physical_row: int = -1
    extra_ns: float = 0.0
    swapped: bool = False
    reason: str = ""


class _PendingKind(Enum):
    RESTORE = "restore"  # swap data back home, return free row to pool
    RESECURE = "resecure"  # close an exposure window left by a failed swap


@dataclass(order=True)
class _Pending:
    due: int
    order: int
    kind: _PendingKind = field(compare=False)
    logical_row: int = field(compare=False, default=-1)
    physical_row: int = field(compare=False, default=-1)


class DRAMLocker:
    """Lock-table + SWAP defense bound to one DRAM device."""

    name = "DRAM-Locker"

    def __init__(self, device: DRAMDevice, config: LockerConfig | None = None):
        self.device = device
        self.config = config or LockerConfig()
        self.mapper = device.mapper
        self.table = LockTable(self.config.lock_table_bytes)
        self.swap_engine = SwapEngine(
            device,
            copy_error_rate=self.config.copy_error_rate,
            rng=np.random.default_rng(self.config.seed),
        )
        # Row permutation: where does each logical row's data live now?
        self._where: dict[int, int] = {}  # logical -> physical
        self._resident: dict[int, int] = {}  # physical -> logical
        # Reserved-row pools, built lazily per subarray.
        self._buffer_row: dict[tuple[int, int], int] = {}
        self._free_pool: dict[tuple[int, int], list[int]] = {}
        self.rw_instructions = 0
        self._pending: list[_Pending] = []
        self._order = count()
        self.exposed: set[int] = set()
        self.protected_data: set[int] = set()
        self.plan: ProtectionPlan | None = None
        # Counters for the evaluation harness.
        self.blocked_requests = 0
        self.unlock_swaps = 0
        self.failed_unlock_swaps = 0
        self.restores = 0
        self.failed_restores = 0
        #: Availability-first fallbacks that suspended enforcement on a
        #: row -- each is one exposure window the serving SLA report
        #: charges against the defense.
        self.exposure_windows = 0

    # ------------------------------------------------------------------
    # Protection setup
    # ------------------------------------------------------------------
    def protect(
        self,
        data_rows: Iterable[int],
        mode: LockMode = LockMode.ADJACENT,
        radius: int = 1,
    ) -> ProtectionPlan:
        """Lock the aggressors of ``data_rows`` per the chosen policy."""
        plan = plan_protection(self.mapper, data_rows, mode=mode, radius=radius)
        self.table.lock_all(plan.locked_rows)
        self.protected_data.update(plan.data_rows)
        self.plan = plan
        return plan

    def lock_rows(self, rows: Iterable[int]) -> None:
        """Manually add rows to the lock-table (paper Section IV-A)."""
        self.table.lock_all(rows)

    def unlock_rows(self, rows: Iterable[int]) -> None:
        for row in rows:
            self.table.unlock(row)

    # ------------------------------------------------------------------
    # Address indirection
    # ------------------------------------------------------------------
    def translate(self, logical_row: int) -> int:
        """Current physical location of a logical row's data."""
        return self._where.get(logical_row, logical_row)

    # ------------------------------------------------------------------
    # Request path (called by the controller)
    # ------------------------------------------------------------------
    def on_request(self, request: MemRequest) -> AccessDecision:
        self.rw_instructions += 1
        self._process_due()

        stats = self.device.stats
        stats.lock_lookups += 1
        stats.energy.lock_table += self.device.energy.e_lock_lookup
        extra_ns = LOCK_LOOKUP_NS

        physical = self.translate(request.row)
        if not self.table.is_locked(physical) or physical in self.exposed:
            return AccessDecision(True, physical, extra_ns)

        if not request.privileged:
            self.blocked_requests += 1
            return AccessDecision(
                False, extra_ns=extra_ns, reason="locked row, unprivileged"
            )

        return self._unlock_via_swap(request.row, physical, extra_ns)

    # ------------------------------------------------------------------
    # Batch request path (called by MemoryController.execute_batch)
    # ------------------------------------------------------------------
    def quiet_span(self) -> int:
        """Requests the batch engine may process before the next pending
        restore / re-secure deadline fires (and hence before any lock,
        exposure, or row-indirection state can change under it)."""
        if not self._pending:
            return sys.maxsize
        return max(0, self._pending[0].due - self.rw_instructions - 1)

    def next_deadline(self) -> int | None:
        """The R/W-instruction count at which the earliest pending
        restore / re-secure fires, or ``None`` when nothing is pending
        -- the locker's closed-form event for the fast-forward core
        (:func:`~repro.controller.events.next_act_event` reports it as
        ``LOCKER_DEADLINE``, ``quiet_span()`` steps away)."""
        if not self._pending:
            return None
        return self._pending[0].due

    def classify(self, logical_row: int) -> tuple[int, bool, bool]:
        """Non-mutating, uncounted preview of :meth:`on_request`'s verdict:
        ``(physical_row, locked, exposed)``."""
        physical = self.translate(logical_row)
        return physical, physical in self.table, physical in self.exposed

    def charge_bulk(self, count: int, hit: bool) -> None:
        """Account ``count`` allowed lookups the way ``count`` scalar
        :meth:`on_request` calls would (same accumulators, same order)."""
        self.rw_instructions += count
        stats = self.device.stats
        stats.lock_lookups += count
        stats.energy.lock_table = walk_add(
            stats.energy.lock_table, self.device.energy.e_lock_lookup, count
        )
        self.table.charge_lookups(count, count if hit else 0)

    def charge_bulk_blocked(self, count: int) -> None:
        """Account ``count`` blocked (locked-row, unprivileged) lookups."""
        self.charge_bulk(count, hit=True)
        self.blocked_requests += count

    # ------------------------------------------------------------------
    # Unlock / re-lock machinery
    # ------------------------------------------------------------------
    def _unlock_via_swap(
        self, logical: int, physical: int, extra_ns: float
    ) -> AccessDecision:
        resources = self._swap_resources(physical)
        if resources is None:
            return self._fallback(physical, extra_ns, reason="no free rows")
        free_row, buffer_row = resources

        result = self.swap_engine.swap(physical, free_row, buffer_row)
        extra_ns += result.latency_ns
        self.unlock_swaps += 1
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("locker.unlock_swaps")

        if not result.success:
            self.failed_unlock_swaps += 1
            self._release_free_row(free_row)
            if tel is not None:
                tel.metrics.inc("locker.failed_unlock_swaps")
                tel.audit.emit(
                    "locker-swap-failed",
                    now_ns=self.device.now_ns,
                    row=physical,
                )
            return self._fallback(physical, extra_ns, reason="swap failed")

        self._swap_mapping(physical, free_row)
        self._schedule(
            _PendingKind.RESTORE, logical_row=logical, physical_row=physical
        )
        return AccessDecision(
            True, self.translate(logical), extra_ns, swapped=True
        )

    def _fallback(
        self, physical: int, extra_ns: float, reason: str
    ) -> AccessDecision:
        if not self.config.fallback_on_swap_failure:
            self.blocked_requests += 1
            return AccessDecision(False, extra_ns=extra_ns, reason=reason)
        # Availability-first: serve directly and suspend enforcement on
        # this row until the re-secure deadline -- the exposure window.
        self.exposure_windows += 1
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("locker.exposures")
            tel.audit.emit(
                "locker-exposure",
                now_ns=self.device.now_ns,
                row=physical,
                reason=reason,
            )
        self.exposed.add(physical)
        self._schedule(_PendingKind.RESECURE, physical_row=physical)
        return AccessDecision(
            True, physical, extra_ns, reason=f"exposed ({reason})"
        )

    def _process_due(self) -> None:
        while self._pending and self._pending[0].due <= self.rw_instructions:
            item = heapq.heappop(self._pending)
            if item.kind is _PendingKind.RESECURE:
                self.exposed.discard(item.physical_row)
            else:
                self._restore(item)

    def _restore(self, item: _Pending) -> None:
        """Fig. 4(d): re-secure a previously unlocked row."""
        logical = item.logical_row
        home = item.physical_row
        current = self.translate(logical)
        if current == home:
            return  # already home (e.g. restored via another path)
        key = self._subarray_key(home)
        buffer_row = self._buffer_row.get(key)
        if buffer_row is None:
            return
        result = self.swap_engine.swap(current, home, buffer_row)
        self.restores += 1
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("locker.restores")
        if result.success:
            # Careful with argument order: swap(current, home) exchanged
            # the data, so undo the mapping and return the pool row.
            self._swap_mapping(current, home)
            self._release_free_row(current)
        else:
            # The restoring swap failed: the data stays at `current`;
            # the lock follows the data (paper's literal re-lock).
            self.failed_restores += 1
            if tel is not None:
                tel.metrics.inc("locker.failed_restores")
                tel.audit.emit(
                    "locker-restore-failed",
                    now_ns=self.device.now_ns,
                    row=current,
                    home=home,
                )
            self.table.lock(current)

    # ------------------------------------------------------------------
    # Pools and mapping internals
    # ------------------------------------------------------------------
    def _subarray_key(self, row: int) -> tuple[int, int]:
        addr = self.mapper.row_address(row)
        return (addr.bank, addr.subarray)

    def _ensure_pool(self, key: tuple[int, int]) -> None:
        if key in self._buffer_row:
            return
        reserved = self.mapper.reserved_rows(*key)
        if len(reserved) < 2:
            raise RuntimeError(
                "subarray has no reserved rows; increase "
                "DRAMConfig.reserved_rows_per_subarray"
            )
        self._buffer_row[key] = reserved[0]
        self._free_pool[key] = list(reserved[1:])

    def _swap_resources(self, physical: int) -> tuple[int, int] | None:
        key = self._subarray_key(physical)
        self._ensure_pool(key)
        pool = self._free_pool[key]
        if not pool:
            return None
        return pool.pop(), self._buffer_row[key]

    def _release_free_row(self, row: int) -> None:
        self._free_pool[self._subarray_key(row)].append(row)

    def _swap_mapping(self, physical_a: int, physical_b: int) -> None:
        logical_a = self._resident.get(physical_a, physical_a)
        logical_b = self._resident.get(physical_b, physical_b)
        self._set_location(logical_a, physical_b)
        self._set_location(logical_b, physical_a)

    def _set_location(self, logical: int, physical: int) -> None:
        if logical == physical:
            # Identity entries are represented by absence.
            self._where.pop(logical, None)
            self._resident.pop(physical, None)
        else:
            self._where[logical] = physical
            self._resident[physical] = logical

    def _schedule(
        self,
        kind: _PendingKind,
        logical_row: int = -1,
        physical_row: int = -1,
    ) -> None:
        heapq.heappush(
            self._pending,
            _Pending(
                due=self.rw_instructions + self.config.relock_interval,
                order=next(self._order),
                kind=kind,
                logical_row=logical_row,
                physical_row=physical_row,
            ),
        )

    # ------------------------------------------------------------------
    # SLA / serving accounting
    # ------------------------------------------------------------------
    def exposure_summary(self) -> dict[str, int]:
        """The locker-side stats the serving SLA report folds in: how
        often the defense blocked, swapped, and -- the failure surface
        -- left a row temporarily exposed."""
        return {
            "blocked_requests": self.blocked_requests,
            "unlock_swaps": self.unlock_swaps,
            "failed_unlock_swaps": self.failed_unlock_swaps,
            "restores": self.restores,
            "failed_restores": self.failed_restores,
            "exposure_windows": self.exposure_windows,
            "exposed_now": len(self.exposed),
            "locked_rows": len(self.table),
        }

    # ------------------------------------------------------------------
    # Table I row
    # ------------------------------------------------------------------
    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """DRAM-Locker's Table I row: no DRAM cost, one small SRAM."""
        return OverheadReport(
            framework="DRAM-Locker",
            involved_memory="DRAM-SRAM",
            capacity={"DRAM": 0, "SRAM": self.config.lock_table_bytes},
            area_pct=0.02,
        )
