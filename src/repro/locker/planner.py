"""Protection planning: which rows to lock for a given set of data rows.

The paper's recommended policy locks the rows *adjacent* to protected
data (the potential aggressors) rather than the hot data itself, so
normal execution never needs an unlock (Section IV-A).  That policy is
only airtight when the protected rows are not adjacent to each other --
the reason the weight mapper interleaves guard rows.  The planner makes
the trade-off explicit: it computes the lock set for a chosen mode and
reports any *uncovered victims* (protected rows one of whose potential
aggressors remains activatable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..dram.address import AddressMapper

__all__ = ["LockMode", "ProtectionPlan", "plan_protection"]


class LockMode(Enum):
    """What to put in the lock-table."""

    #: Lock the aggressor-adjacent rows only (paper's recommendation).
    ADJACENT = "adjacent"
    #: Lock the data rows as well (heavier, needed for contiguous layouts).
    ALL = "all"


@dataclass
class ProtectionPlan:
    """Result of planning locks for a protected data set."""

    data_rows: frozenset[int]
    locked_rows: frozenset[int]
    mode: LockMode
    radius: int
    uncovered_victims: frozenset[int] = field(default=frozenset())

    @property
    def is_complete(self) -> bool:
        """True when every potential aggressor of the data is locked."""
        return not self.uncovered_victims


def plan_protection(
    mapper: AddressMapper,
    data_rows,
    mode: LockMode = LockMode.ADJACENT,
    radius: int = 1,
) -> ProtectionPlan:
    """Compute the lock set protecting ``data_rows`` against hammering.

    Args:
        mapper: Address mapper of the target device.
        data_rows: Global indices of the rows to protect.
        mode: ``ADJACENT`` locks only neighbouring rows; ``ALL`` locks
            the data rows too (closing the hole contiguous layouts leave
            at the cost of unlock-SWAPs on every legitimate access).
        radius: Blast radius to defend against; use 2 to also stop
            Half-Double distance-2 patterns.
    """
    data = frozenset(int(row) for row in data_rows)
    if mode is LockMode.ALL:
        locked = frozenset(mapper.aggressors_of(data, radius=radius) | data)
    else:
        locked = frozenset(mapper.aggressors_of(data, radius=radius))

    uncovered = frozenset(
        victim
        for victim in data
        if any(
            neighbor not in locked and neighbor != victim
            for neighbor in mapper.neighbors(victim, radius=radius)
        )
    )
    return ProtectionPlan(
        data_rows=data,
        locked_rows=locked,
        mode=mode,
        radius=radius,
        uncovered_victims=uncovered,
    )
