"""The SWAP engine.

Executes the three-RowClone SWAP micro-program of Fig. 4(b) through the
micro-ISA executor, with process-variation failure injection calibrated
by the Section IV-D Monte-Carlo model (0 % / 0.14 % / 9.6 % per-copy
error at +/-0 % / 10 % / 20 % variation).

Failure semantics: the engine draws the per-copy outcomes *before*
touching the array.  If all three copies succeed, the micro-program runs
and the data genuinely exchanges places.  If any copy would fail, the
swap aborts with no net data movement -- the locked row's data stays in
place, which is precisely the exposure the paper's security analysis
charges against DRAM-Locker.  (A half-completed swap would corrupt
data; real controllers verify-and-retry, so "no movement + exposure"
is the faithful end state.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dram.device import DRAMDevice
from ..isa.executor import MicroExecutor, MicroRegisterFile
from ..isa.programs import REG_BUFFER, REG_FREE, REG_LOCKED, swap_program

__all__ = ["SwapResult", "SwapEngine"]


@dataclass
class SwapResult:
    """Outcome of one SWAP operation."""

    success: bool
    copies_attempted: int
    copies_failed: int
    latency_ns: float


class SwapEngine:
    """Three-copy in-DRAM swap with per-copy failure injection."""

    def __init__(
        self,
        device: DRAMDevice,
        copy_error_rate: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        if not 0.0 <= copy_error_rate < 1.0:
            raise ValueError("copy_error_rate must be in [0, 1)")
        self.device = device
        self.copy_error_rate = copy_error_rate
        self.rng = rng or np.random.default_rng(0)
        self.registers = MicroRegisterFile()
        self.executor = MicroExecutor(self._copy, registers=self.registers)
        self._program = swap_program()
        self.swaps_attempted = 0
        self.swaps_failed = 0

    def swap(self, locked_row: int, free_row: int, buffer_row: int) -> SwapResult:
        """Exchange the *data* of ``locked_row`` and ``free_row``."""
        mapper = self.device.mapper
        if not (
            mapper.same_subarray(locked_row, free_row)
            and mapper.same_subarray(locked_row, buffer_row)
        ):
            raise ValueError("SWAP rows must share one subarray (RowClone FPM)")
        if len({locked_row, free_row, buffer_row}) != 3:
            raise ValueError("SWAP needs three distinct rows")

        self.swaps_attempted += 1
        copies = 3
        failures = int(np.sum(self.rng.random(copies) < self.copy_error_rate))
        rowclone_ns = self.device.timing.rowclone_ns

        if failures:
            # Abort: attempted copies up to and including the failing one.
            self.swaps_failed += 1
            self.device.stats.swap_copy_failures += failures
            latency = copies * rowclone_ns  # verify-and-abort still cycles the rows
            self.device.advance(latency)
            return SwapResult(
                success=False,
                copies_attempted=copies,
                copies_failed=failures,
                latency_ns=latency,
            )

        self.registers.load(
            {REG_LOCKED: locked_row, REG_FREE: free_row, REG_BUFFER: buffer_row}
        )
        run = self.executor.run(self._program)
        latency = run.copies * rowclone_ns
        self.device.advance(latency)
        self.device.stats.swaps += 1
        return SwapResult(
            success=True,
            copies_attempted=run.copies,
            copies_failed=0,
            latency_ns=latency,
        )

    def _copy(self, src_row: int, dst_row: int) -> None:
        self.device.rowclone(src_row, dst_row)
