"""The lock-table.

A small SRAM structure holding the physical row addresses that must not
be activated.  Unlike the count-tables of counter-based defenses it
stores *no counters* -- one valid address per entry -- which is where
DRAM-Locker's Table I advantage (56 KB SRAM, 0.02 % area) comes from.

The default capacity matches the paper: 56 KB at 4 bytes per entry
(a 22-bit row address for the 32 GB configuration, padded to a word)
gives 14 336 lockable rows.
"""

from __future__ import annotations

__all__ = ["LockTableFullError", "LockTable", "LOCK_LOOKUP_NS"]

#: Latency of one lock-table SRAM lookup (45 nm, ~56 KB array).  Single
#: source of truth -- the locker and the memory controller both import
#: this constant.
LOCK_LOOKUP_NS = 1.2


class LockTableFullError(RuntimeError):
    """Raised when locking more rows than the SRAM can hold."""


class LockTable:
    """Set-of-locked-rows with SRAM capacity accounting."""

    ENTRY_BYTES = 4

    def __init__(self, capacity_bytes: int = 56 * 1024):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.capacity_entries = capacity_bytes // self.ENTRY_BYTES
        self._locked: set[int] = set()
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def lock(self, row: int) -> None:
        if row in self._locked:
            return
        if len(self._locked) >= self.capacity_entries:
            raise LockTableFullError(
                f"lock-table full ({self.capacity_entries} entries); "
                "raise capacity_bytes or protect fewer rows"
            )
        self._locked.add(row)

    def lock_all(self, rows) -> None:
        for row in rows:
            self.lock(row)

    def unlock(self, row: int) -> None:
        self._locked.discard(row)

    def clear(self) -> None:
        self._locked.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_locked(self, row: int) -> bool:
        """Controller-path lookup: counted in the stats."""
        self.lookups += 1
        hit = row in self._locked
        if hit:
            self.hits += 1
        return hit

    def is_locked_many(self, rows) -> list[bool]:
        """Batched controller-path lookup: one call, ``len(rows)`` counted
        lookups -- the SRAM port is pipelined, so the batch engine charges
        the same per-lookup latency without one Python call per request."""
        locked = self._locked
        verdicts = [row in locked for row in rows]
        self.lookups += len(verdicts)
        self.hits += sum(verdicts)
        return verdicts

    def charge_lookups(self, count: int, hits: int) -> None:
        """Account ``count`` lookups (``hits`` of them hits) performed by
        a bulk path that already knows the verdicts."""
        self.lookups += count
        self.hits += hits

    def __contains__(self, row: int) -> bool:
        """Uncounted membership test for bookkeeping code."""
        return row in self._locked

    def __len__(self) -> int:
        return len(self._locked)

    @property
    def occupancy(self) -> float:
        """Fraction of SRAM entries in use."""
        return len(self._locked) / self.capacity_entries

    def snapshot(self) -> frozenset[int]:
        """Immutable view of the locked set (for tests/reports)."""
        return frozenset(self._locked)
