"""``python -m repro.serve``: record, replay, and live-serve traces.

The serving counterpart of ``python -m repro.eval``: a thin CLI over
the public facade (:func:`repro.serving.serve` /
:func:`repro.serving.record_serving_trace`), so every flag maps onto a
:class:`~repro.serving.engine.ServingConfig` field and nothing here
owns simulation logic.

Subcommands:

* ``record`` -- run a workload generator and write its trace
  (``.npz`` or ``.jsonl``, picked by the ``--out`` suffix); the trace
  header embeds the full serving config, so the file is
  self-contained.
* ``replay`` -- deterministic synchronous replay of a trace, with
  optional admission control; ``--verify`` additionally runs the
  closed-loop simulation of the embedded config and exits 1 unless
  the two payloads are bit-identical outside the ``"live"`` section
  (the replay-equivalence contract).
* ``live`` -- wall-clock-paced open-loop serving through the threaded
  :class:`~repro.serving.live.LiveServer` at ``--speedup`` x the
  recorded arrival rate.

Exit codes (pinned by ``tests/test_serving_live.py``): 0 success,
1 verification mismatch, 2 usage error (argparse), 3 runtime serving
failure (:class:`~repro.serving.live.LiveServingError` -- worker
death, queue wedge).  ``--log-level`` turns on structured jsonl
logging to stderr (:mod:`repro.obs.logging`); it never changes the
stdout payload or the exit code.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import logging

from .obs.logging import LOG_LEVELS, configure_logging
from .serving import (
    AdmissionConfig,
    LiveServingError,
    ServingConfig,
    ServingResult,
    Trace,
    record_serving_trace,
    replay_neutral,
    serve,
)

__all__ = ["main"]

logger = logging.getLogger("repro.serve")


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    """The ``ServingConfig`` surface shared by the subcommands."""
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--channels", type=int, default=1)
    parser.add_argument("--slices", type=int, default=24)
    parser.add_argument("--ops-per-slice", type=float, default=6.0)
    parser.add_argument(
        "--arrival", choices=("poisson", "bursty"), default="poisson"
    )
    parser.add_argument("--policy", choices=("row", "block"), default="row")
    parser.add_argument("--defense", default="DRAM-Locker")
    parser.add_argument("--engine", default="bulk")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--solo", action="store_true",
        help="disable the co-located attacker",
    )


def _add_admission_args(parser: argparse.ArgumentParser) -> None:
    """Admission-control flags (all optional; none = admit everything)."""
    parser.add_argument(
        "--admission-rate", type=float, default=None,
        help="token-bucket refill, ops per trace-second per tenant",
    )
    parser.add_argument("--admission-burst", type=float, default=8.0)
    parser.add_argument(
        "--p99-target-ns", type=float, default=None,
        help="sojourn-p99 target for pressure shedding",
    )
    parser.add_argument("--min-samples", type=int, default=32)
    parser.add_argument("--shed-fraction", type=float, default=0.5)
    parser.add_argument(
        "--queue-depth", type=int, default=64,
        help="bounded outstanding ops per channel (live mode)",
    )


def _config(args: argparse.Namespace) -> ServingConfig:
    """A ``ServingConfig`` from the shared CLI flags."""
    return ServingConfig(
        tenants=args.tenants,
        channels=args.channels,
        slices=args.slices,
        ops_per_slice=args.ops_per_slice,
        arrival=args.arrival,
        policy=args.policy,
        colocated=not args.solo,
        engine=args.engine,
        seed=args.seed,
        defense=args.defense,
    )


def _admission(args: argparse.Namespace) -> AdmissionConfig | None:
    """An ``AdmissionConfig`` from the CLI flags, or ``None`` when no
    mechanism was requested."""
    if args.admission_rate is None and args.p99_target_ns is None:
        return None
    return AdmissionConfig(
        rate=args.admission_rate,
        burst=args.admission_burst,
        p99_target_ns=args.p99_target_ns,
        min_samples=args.min_samples,
        shed_fraction=args.shed_fraction,
        queue_depth=args.queue_depth,
    )


def _summarize(result: ServingResult, as_json: bool) -> None:
    """Print one run's outcome (compact lines, or the full payload)."""
    if as_json:
        print(json.dumps(result.payload, indent=2, sort_keys=True))
        return
    aggregate = result.sla["aggregate"]
    print(
        f"requests={aggregate['requests']} issued={aggregate['issued']} "
        f"blocked={aggregate['blocked']} "
        f"makespan_ns={result.makespan_ns:.0f}"
    )
    tenant = result.tenant()
    if "latency_ns" in tenant:
        print(f"tenant-0 service p99_ns={tenant['latency_ns']['p99']:.2f}")
    sojourn = result.sojourn_p99_ns()
    if sojourn is not None:
        print(f"tenant-0 sojourn p99_ns={sojourn:.2f}")
    live = result.live
    if live is not None:
        pacing = live["pacing"]
        print(
            f"offered={pacing['offered']} served={pacing['served']} "
            f"shed={pacing['shed']}"
        )
    print(f"victim_flip_events={result.victim_flip_events}")


def _cmd_record(args: argparse.Namespace) -> int:
    """The ``record`` subcommand."""
    config = _config(args)
    trace = record_serving_trace(
        config,
        slice_duration_s=args.slice_duration_s,
        utilization=args.utilization,
    )
    path = trace.save(args.out)
    logger.info(
        "recorded ops=%d slices=%d out=%s", len(trace), trace.slices, path
    )
    print(
        f"recorded {len(trace)} ops over {trace.slices} slices "
        f"({trace.slice_duration_s:.3e}s each) -> {path}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """The ``replay`` subcommand (optionally verifying equivalence)."""
    trace = Trace.load(args.trace)
    from .serving import config_from_dict

    embedded = trace.meta.get("serving_config")
    if embedded is None:
        print("error: trace has no embedded serving config")
        return 1
    config = config_from_dict(embedded)
    admission = _admission(args)
    if args.verify and admission is not None:
        print("error: --verify compares the pure replay; drop the "
              "admission flags")
        return 1
    config = dataclasses.replace(
        config, admission=admission, trace=None, speedup=0.0
    )
    result = serve(config, trace=trace)
    logger.debug(
        "replayed trace=%s engine=%s makespan_ns=%.0f",
        args.trace, config.engine, result.makespan_ns,
    )
    _summarize(result, args.json)
    if args.verify:
        from .serving import ServingSimulation

        closed = ServingSimulation(config).run()
        if replay_neutral(result.payload) != replay_neutral(closed):
            logger.error("replay diverged from the closed loop")
            print("VERIFY FAILED: replay diverges from the closed loop")
            return 1
        print("verify: replay bit-identical to the closed loop")
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    """The ``live`` subcommand (threaded wall-clock pacing)."""
    trace = Trace.load(args.trace)
    from .serving import config_from_dict

    embedded = trace.meta.get("serving_config")
    if embedded is None:
        print("error: trace has no embedded serving config")
        return 1
    config = dataclasses.replace(
        config_from_dict(embedded),
        admission=_admission(args),
        trace=None,
        speedup=args.speedup,
    )
    result = serve(config, trace=trace)
    _summarize(result, args.json)
    pacing = result.live["pacing"]
    logger.info(
        "live offered=%d served=%d shed=%d",
        pacing["offered"], pacing["served"], pacing["shed"],
    )
    if pacing["offered"] != pacing["served"] + pacing["shed"]:
        print("error: conservation violated (offered != served + shed)")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="python -m repro.serve")
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default=None,
        help="emit structured jsonl logs at this level on stderr "
             "(default: logging stays off)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="record a workload trace to .npz/.jsonl"
    )
    _add_config_args(record)
    record.add_argument("--out", required=True, help="trace path")
    record.add_argument(
        "--slice-duration-s", type=float, default=None,
        help="trace-clock seconds per slice (default: calibrated)",
    )
    record.add_argument(
        "--utilization", type=float, default=0.7,
        help="calibration target when --slice-duration-s is omitted",
    )
    record.set_defaults(func=_cmd_record)

    replay = commands.add_parser(
        "replay", help="deterministic synchronous replay of a trace"
    )
    replay.add_argument("trace", help="trace path (.npz or .jsonl)")
    replay.add_argument(
        "--verify", action="store_true",
        help="also run the closed loop and require bit-identity",
    )
    replay.add_argument("--json", action="store_true")
    _add_admission_args(replay)
    replay.set_defaults(func=_cmd_replay)

    live = commands.add_parser(
        "live", help="wall-clock-paced open-loop serving"
    )
    live.add_argument("trace", help="trace path (.npz or .jsonl)")
    live.add_argument(
        "--speedup", type=float, required=True,
        help="x the recorded arrival rate (must be > 0)",
    )
    live.add_argument("--json", action="store_true")
    _add_admission_args(live)
    live.set_defaults(func=_cmd_live)

    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    logger.info("command=%s", args.command)
    try:
        code = args.func(args)
    except LiveServingError as error:
        # Distinct from exit 1 (verification mismatch): the serving
        # machinery itself failed -- worker death, wedged queue.
        logger.error("serving failure: %s", error)
        print(f"serving error: {error}")
        return 3
    logger.info("command=%s exit=%d", args.command, code)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
