"""Plain-text rendering of experiment outputs (tables and series)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "downsample"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], fmt: str = "{:.2f}"
) -> str:
    """Render one x/y series as two aligned rows (a text 'curve')."""
    x_cells = [str(x) for x in xs]
    y_cells = [fmt.format(y) for y in ys]
    widths = [max(len(a), len(b)) for a, b in zip(x_cells, y_cells)]
    line_x = "  ".join(c.rjust(w) for c, w in zip(x_cells, widths))
    line_y = "  ".join(c.rjust(w) for c, w in zip(y_cells, widths))
    return f"{name}\n  x: {line_x}\n  y: {line_y}"


def downsample(values: Sequence[float], points: int) -> list[tuple[int, float]]:
    """Pick ~``points`` evenly-spaced (index, value) samples for display."""
    if not values:
        return []
    step = max(1, len(values) // points)
    sampled = [(i + 1, values[i]) for i in range(0, len(values), step)]
    if sampled[-1][0] != len(values):
        sampled.append((len(values), values[-1]))
    return sampled
