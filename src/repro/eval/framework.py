"""The cross-layer evaluation pipeline of Fig. 6.

The paper's flow is circuit -> architecture -> gem5/ISA -> application;
this class runs the equivalent chain end-to-end on the Python models
and returns one consolidated report:

1. **Circuit**: Monte-Carlo swap-error rate at the chosen process
   corner (Cadence Spectre stand-in).
2. **Architecture**: lock-table SRAM cost against the DRAM die
   (CACTI / Design Compiler stand-in).
3. **System**: the DNN resident in the simulated DRAM behind the
   controller + DRAM-Locker, exercised by an inference pass and an
   attack campaign (gem5 stand-in), with memory stats exported.
4. **Application**: accuracy before/after the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.cacti import lock_table_estimate
from ..attacks.bfa import BFAConfig, ProgressiveBitSearch
from ..circuits.montecarlo import MonteCarlo
from ..serving.workload import VictimTenant
from .experiments import (
    Scale,
    build_system,
    build_victim,
)

__all__ = ["PipelineReport", "CrossLayerPipeline"]


@dataclass
class PipelineReport:
    """Everything the Fig. 6 flow produces, by layer."""

    circuit: dict = field(default_factory=dict)
    architecture: dict = field(default_factory=dict)
    system: dict = field(default_factory=dict)
    application: dict = field(default_factory=dict)


class CrossLayerPipeline:
    """Runs the full Fig. 6 stack for one (arch, corner) choice."""

    def __init__(
        self,
        arch: str = "resnet20",
        variation_pct: float = 20.0,
        protected: bool = True,
        scale: Scale | None = None,
    ):
        self.arch = arch
        self.variation_pct = variation_pct
        self.protected = protected
        self.scale = scale or Scale.quick()

    def run(self) -> PipelineReport:
        report = PipelineReport()

        # 1. Circuit level.
        mc_result = MonteCarlo(trials=10_000).run(self.variation_pct)
        report.circuit = {
            "variation_pct": self.variation_pct,
            "copy_error_rate": mc_result.error_rate,
            "trials": mc_result.trials,
        }

        # 2. Architecture level.
        estimate, area_pct = lock_table_estimate()
        report.architecture = {
            "lock_table_bytes": estimate.size_bytes,
            "lock_table_mm2": estimate.area_mm2,
            "lock_table_access_ns": estimate.access_ns,
            "area_overhead_pct": area_pct,
        }

        # 3+4. System and application levels.
        dataset, qmodel = build_victim(self.arch, self.scale)
        clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
        system = build_system(qmodel, protected=self.protected)
        # The victim's own request mix -- weight-streaming inference
        # plus the guard-row traffic that opens unlock windows -- is
        # the serving subsystem's shared VictimTenant workload.
        tenant = VictimTenant(system.store, system.controller)
        tenant.stream_inference()
        hook = tenant if self.protected else None
        attack = ProgressiveBitSearch(
            qmodel,
            dataset,
            BFAConfig(attack_batch=self.scale.attack_batch),
            store=system.store,
            driver=system.driver,
            before_execute=hook,
        )
        result = attack.run(max(5, self.scale.attack_iterations // 4))
        stats = system.device.stats
        report.system = {
            "memory_stats": stats.as_dict(),
            "blocked_requests": stats.blocked_requests,
            "swaps": stats.swaps,
            "protected": self.protected,
        }
        report.application = {
            "model": qmodel.model.name,
            "clean_accuracy": clean,
            "post_attack_accuracy": result.accuracies[-1],
            "executed_flips": result.executed_flips,
        }
        return report
