"""Deterministic fault injection for fleet orchestration and serving.

Fleet-scale sweeps only earn the name "fault-tolerant" when the faults
are reproducible: a chaos run that crashes *some* worker *somewhere*
cannot be replayed, compared against a baseline, or bisected.  This
module therefore makes every fault a pure function of a seed and a
cell name:

* :class:`FaultSpec` -- one injected behaviour (``crash`` / ``hang`` /
  ``slow`` for harness workers) with its attempt window;
* :class:`FaultPlan` -- the seeded plan mapping scenario cells to
  worker faults, either pinned by ``fnmatch`` pattern or drawn from
  per-cell seeded rates (``derive_seed(f"fault:{name}", seed)``, so a
  cell's draw never depends on the rest of the table);
* :class:`ChannelFault` -- a serving-side fault (``fail`` / ``stall``
  of one channel at a given time slice) consumed by
  :class:`~repro.serving.engine.ServingSimulation` and honoured by the
  replay and live paths identically.

The contract the tests pin (``tests/test_faults.py``): the same plan
against the same table always injects the same faults, a crashed
worker's cell is retried and its siblings complete, a persistent fault
quarantines into a deterministic structured error, and a serving run
with an injected channel fault still conserves ``offered == served +
shed`` with every un-servable op booked under the ``"channel_fault"``
shed reason.
"""

from __future__ import annotations

import fnmatch
import os
import time
from dataclasses import dataclass

import numpy as np

from ..seeds import derive_seed

__all__ = [
    "WORKER_FAULT_KINDS",
    "CHANNEL_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "ChannelFault",
]

#: Worker-side fault kinds a :class:`FaultPlan` can inject.
WORKER_FAULT_KINDS = ("crash", "hang", "slow")

#: Serving-side fault kinds a :class:`ChannelFault` can inject.
CHANNEL_FAULT_KINDS = ("fail", "stall")

#: The exit status a crash fault dies with (``os._exit`` -- no cleanup,
#: no exception, the closest a test can get to an OOM kill).
CRASH_EXIT_CODE = 23


@dataclass(frozen=True)
class FaultSpec:
    """One worker fault: what happens, for how many attempts.

    Attributes:
        kind: ``"crash"`` (``os._exit``, simulating an OOM-killed
            worker), ``"hang"`` (sleep far past any timeout), or
            ``"slow"`` (sleep ``delay_s`` then run normally).
        until_attempt: Inject while the cell's attempt index is below
            this bound -- ``1`` faults only the first attempt (the
            recoverable case), a large value faults every attempt (the
            quarantine case).
        delay_s: Sleep duration for ``slow`` and ``hang``.
    """

    kind: str
    until_attempt: int = 1
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"unknown worker fault kind {self.kind!r}; "
                f"expected one of {WORKER_FAULT_KINDS}"
            )
        if self.until_attempt < 1:
            raise ValueError("until_attempt must be >= 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


@dataclass(frozen=True)
class ChannelFault:
    """One serving-channel fault, activated at a slice boundary.

    Attributes:
        channel: Index of the channel to fault.
        kind: ``"fail"`` (the channel stops serving: every op that
            would land on it is shed with reason ``"channel_fault"``,
            unless the channel scaler can spill it to a replica) or
            ``"stall"`` (a one-shot brownout: the channel's clock jumps
            ``stall_ns`` forward, inflating every later op's sojourn).
        at_slice: The fault activates at the boundary closing this
            slice index; ops of earlier slices are untouched.
        stall_ns: Clock jump for ``"stall"``.
    """

    channel: int
    kind: str = "fail"
    at_slice: int = 0
    stall_ns: float = 5e7

    def __post_init__(self) -> None:
        if self.channel < 0:
            raise ValueError("channel must be >= 0")
        if self.kind not in CHANNEL_FAULT_KINDS:
            raise ValueError(
                f"unknown channel fault kind {self.kind!r}; "
                f"expected one of {CHANNEL_FAULT_KINDS}"
            )
        if self.at_slice < 0:
            raise ValueError("at_slice must be >= 0")
        if self.stall_ns <= 0:
            raise ValueError("stall_ns must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic assignment of worker faults to cells.

    Two selection mechanisms compose (pinned wins):

    * **pinned cells** -- ``cells`` maps ``fnmatch`` patterns to
      :class:`FaultSpec`; the first matching pattern decides.
    * **seeded rates** -- each cell draws once from
      ``derive_seed(f"fault:{name}", seed)`` and the draw lands in the
      cumulative ``crash_rate`` / ``hang_rate`` / ``slow_rate`` bands.
      Rate-selected faults use ``until_attempt`` / ``slow_s`` /
      ``hang_s`` from the plan.

    Both are pure functions of ``(name, seed)``: the same plan against
    the same table injects the same faults regardless of worker count,
    execution order, or resumption.
    """

    seed: int = 0
    cells: tuple[tuple[str, FaultSpec], ...] = ()
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    until_attempt: int = 1
    slow_s: float = 0.05
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        total = self.crash_rate + self.hang_rate + self.slow_rate
        if not 0.0 <= total <= 1.0:
            raise ValueError("fault rates must sum to within [0, 1]")

    def worker_fault(self, name: str, attempt: int = 0) -> FaultSpec | None:
        """The fault (if any) this plan injects into ``name`` on its
        ``attempt``-th try; ``None`` means run clean."""
        spec = self._select(name)
        if spec is None or attempt >= spec.until_attempt:
            return None
        return spec

    def _select(self, name: str) -> FaultSpec | None:
        for pattern, spec in self.cells:
            if fnmatch.fnmatchcase(name, pattern):
                return spec
        if self.crash_rate or self.hang_rate or self.slow_rate:
            rng = np.random.default_rng(
                derive_seed(f"fault:{name}", self.seed)
            )
            draw = rng.random()
            if draw < self.crash_rate:
                return FaultSpec("crash", until_attempt=self.until_attempt)
            if draw < self.crash_rate + self.hang_rate:
                return FaultSpec(
                    "hang",
                    until_attempt=self.until_attempt,
                    delay_s=self.hang_s,
                )
            if draw < self.crash_rate + self.hang_rate + self.slow_rate:
                return FaultSpec(
                    "slow",
                    until_attempt=self.until_attempt,
                    delay_s=self.slow_s,
                )
        return None

    def inject(self, name: str, attempt: int = 0) -> None:
        """Perform the planned fault in the current (worker) process.

        ``crash`` never returns (``os._exit``); ``hang`` and ``slow``
        sleep; a clean cell returns immediately.  Run this only inside
        a worker process -- a crash fault would take the caller down.
        """
        spec = self.worker_fault(name, attempt)
        if spec is None:
            return
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        time.sleep(spec.delay_s)
