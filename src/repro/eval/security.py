"""Analytical security models behind Figs. 7(a) and 7(b).

Simulating hundreds of days of 64 ms refresh windows is infeasible, so
the long-horizon numbers are closed-form, with every constant exposed
and documented:

* **SHADOW**: per refresh window the attacker defeats the shuffle with
  probability ``k / threshold`` (more shuffling = harder); the system
  is *compromised outright* after ``compromise_factor * threshold``
  attacks, after which its mitigation latency stops growing (the
  "defense threshold" plateau in Fig. 7(a)).
* **DRAM-Locker**: the attacker only makes progress inside exposure
  windows opened by failed SWAPs; landing TRH activations requires
  ``ceil(TRH / exposure_acts)`` consecutive failures at probability
  ``copy_error_rate`` each, so the per-window win probability is
  exponentially small -- the reason the Fig. 7(b) bar exceeds the plot
  (">4000 days") even with the pessimistic 10 % per-copy error the
  paper charges.

Defense time is the paper's criterion: the number of days until the
attacker's cumulative success probability reaches 1 % (the defense is
"successful" while it exceeds 99 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "TREF_SECONDS",
    "defense_days_from_win_prob",
    "ShadowSecurityModel",
    "LockerSecurityModel",
]

#: One refresh window (64 ms), the attack-attempt granularity.
TREF_SECONDS = 0.064

#: SHADOW's calibration constant: per-window win probability k/T.
#: Chosen so the TRH=8k bar lands near the paper's ~2 500 days.
SHADOW_WIN_CONSTANT = 2.37e-8


def defense_days_from_win_prob(win_prob_per_tref: float) -> float:
    """Days until cumulative attacker success reaches 1 %."""
    if win_prob_per_tref <= 0.0:
        return math.inf
    if win_prob_per_tref >= 1.0:
        return 0.0
    if win_prob_per_tref < 1e-9:
        # log1p underflows; use the exact small-p limit N = -ln(0.99)/p.
        windows = -math.log(0.99) / win_prob_per_tref
    else:
        windows = math.log(0.99) / math.log1p(-win_prob_per_tref)
    return windows * TREF_SECONDS / 86_400.0


@dataclass(frozen=True)
class ShadowSecurityModel:
    """SHADOW at one shuffle threshold."""

    threshold: int
    win_constant: float = SHADOW_WIN_CONSTANT
    compromise_factor: float = 20.0
    full_shuffle_rows: int = 512
    rowclone_ns: float = 96.7

    @property
    def win_probability_per_tref(self) -> float:
        return min(1.0, self.win_constant / self.threshold)

    @property
    def defense_days(self) -> float:
        return defense_days_from_win_prob(self.win_probability_per_tref)

    @property
    def compromise_attacks(self) -> int:
        """Attack count beyond which integrity is lost (latency plateau)."""
        return int(self.compromise_factor * self.threshold)

    def latency_per_tref_s(self, attacks: int) -> float:
        """Mitigation latency in one refresh window holding ``attacks``.

        Every ``threshold`` activations SHADOW re-shuffles the subarray's
        potential target rows ("unintelligent swap operations on all
        potential target rows"), at three RowClones per moved row.
        Past the compromise point the delay stops escalating.
        """
        effective = min(attacks, self.compromise_attacks)
        triggers = effective / self.threshold
        per_trigger_ns = self.full_shuffle_rows * 3 * self.rowclone_ns
        return triggers * per_trigger_ns * 1e-9


@dataclass(frozen=True)
class LockerSecurityModel:
    """DRAM-Locker under the paper's Fig. 7 assumptions."""

    trh: int = 1000
    copy_error_rate: float = 0.10
    exposure_acts: int = 80
    lock_lookup_ns: float = 1.2
    swap_ns: float = 3 * 96.7
    background_swaps_per_tref: float = 8.0

    @property
    def failures_needed(self) -> int:
        """Consecutive failed copies required to land TRH activations."""
        return max(1, math.ceil(self.trh / self.exposure_acts))

    @property
    def win_probability_per_tref(self) -> float:
        return self.copy_error_rate ** self.failures_needed

    @property
    def defense_days(self) -> float:
        return defense_days_from_win_prob(self.win_probability_per_tref)

    def latency_per_tref_s(self, attacks: int) -> float:
        """Lock-table lookups for every (skipped) attack instruction plus
        the steady re-lock SWAP traffic; no compromise plateau exists."""
        lookups_ns = attacks * self.lock_lookup_ns
        swaps_ns = self.background_swaps_per_tref * self.swap_ns
        return (lookups_ns + swaps_ns) * 1e-9
