"""Benchmark-regression checks over BENCH_*.json artifacts.

The nightly CI job replays a harness matrix and compares the fresh
artifact against a committed baseline: the build fails when wall-clock
runtime or any *protected* accuracy (the quantity DRAM-Locker exists to
preserve) regresses beyond tolerance.  The comparison logic lives here
so it is unit-testable; ``benchmarks/check_regression.py`` is the thin
CLI the workflow invokes.

What counts as a protected accuracy:

* ``attack`` scenarios with ``"protected": true`` -> ``final_accuracy``;
* figure runners with per-defense curves -> the final accuracy recorded
  under ``stats["with DRAM-Locker"]``;
* everything else contributes no accuracy check (runtime still counts).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field

__all__ = [
    "ATTACK_SEARCH_SCHEMA",
    "BAKEOFF_SCHEMA",
    "DEFENDED_HAMMER_SCHEMA",
    "OBS_SCHEMA",
    "RUNTABLE_BENCH_SCHEMA",
    "SERVING_LIVE_SCHEMA",
    "SERVING_SCHEMA",
    "RegressionReport",
    "protected_accuracies",
    "compare_artifacts",
    "compare_attack_search",
    "compare_bakeoff",
    "compare_defended_hammer",
    "compare_obs",
    "compare_runtable",
    "compare_serving",
    "compare_serving_live",
    "host_meta",
    "load_artifact",
]

LOCKED_LABEL = "with DRAM-Locker"

#: Schema tag of the attack-search microbenchmark artifact
#: (``benchmarks/bench_attack_search.py``).
ATTACK_SEARCH_SCHEMA = "dram-locker-attack-search-bench/1"

#: Schema tag of the defended-hammer microbenchmark artifact
#: (``benchmarks/bench_defended_hammer.py``).
DEFENDED_HAMMER_SCHEMA = "dram-locker-defended-hammer-bench/1"

#: Schema tag of the serving benchmark artifact
#: (``benchmarks/bench_serving.py``).
SERVING_SCHEMA = "dram-locker-serving-bench/1"

#: Schema tag of the live-frontend serving benchmark artifact
#: (``benchmarks/bench_serving_live.py``).
SERVING_LIVE_SCHEMA = "dram-locker-serving-live-bench/1"

#: Schema tag of the run-table orchestration benchmark artifact
#: (``benchmarks/bench_runtable.py``).
RUNTABLE_BENCH_SCHEMA = "dram-locker-runtable-bench/1"

#: Schema tag of the defense bake-off artifact
#: (``benchmarks/bench_bakeoff.py``).
BAKEOFF_SCHEMA = "dram-locker-bakeoff-bench/1"

#: Schema tag of the telemetry-overhead benchmark artifact
#: (``benchmarks/bench_obs.py``).
OBS_SCHEMA = "dram-locker-obs-bench/1"


def load_artifact(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def host_meta() -> dict:
    """Provenance block stamped into every benchmark/harness artifact.

    Deliberately contains **no wall-clock timestamp**: two artifacts
    produced on the same host from the same tree must stay
    byte-identical (the run-table resume-identity gate depends on it).
    """
    try:
        import numpy

        numpy_version = str(numpy.__version__)
    except Exception:  # pragma: no cover - numpy is a hard dep in CI
        numpy_version = "unknown"
    try:
        sha = (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=False,
            ).stdout.strip()
            or "unknown"
        )
    except Exception:
        sha = "unknown"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": sha,
    }


def protected_accuracies(artifact: dict) -> dict[str, float]:
    """Every protected-accuracy metric an artifact carries, by name."""
    metrics: dict[str, float] = {}
    for name, payload in artifact.get("results", {}).items():
        if not isinstance(payload, dict) or "error" in payload:
            continue
        if payload.get("protected") and payload.get("final_accuracy") is not None:
            metrics[name] = float(payload["final_accuracy"])
            continue
        stats = payload.get("stats")
        if isinstance(stats, dict) and LOCKED_LABEL in stats:
            locked = stats[LOCKED_LABEL]
            if isinstance(locked, dict) and "final_accuracy" in locked:
                metrics[name] = float(locked["final_accuracy"])
    return metrics


@dataclass
class RegressionReport:
    """Outcome of one artifact-vs-baseline comparison."""

    violations: list[str] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [f"{len(self.checks)} check(s), {len(self.violations)} violation(s)"]
        lines += [f"  ok: {check}" for check in self.checks]
        lines += [f"  REGRESSION: {violation}" for violation in self.violations]
        return "\n".join(lines)


def compare_artifacts(
    current: dict,
    baseline: dict,
    runtime_tolerance: float = 0.10,
    accuracy_tolerance: float = 0.10,
) -> RegressionReport:
    """Fail when runtime grew or protected accuracy shrank by more than
    the given fractional tolerances relative to the baseline."""
    report = RegressionReport()

    for payload_name, payload in current.get("results", {}).items():
        if isinstance(payload, dict) and "error" in payload:
            report.violations.append(
                f"scenario {payload_name!r} failed: "
                f"{str(payload['error']).splitlines()[-1]}"
            )

    base_total = baseline.get("timing", {}).get("total_s")
    cur_total = current.get("timing", {}).get("total_s")
    if base_total and cur_total is not None:
        limit = base_total * (1.0 + runtime_tolerance)
        check = (
            f"runtime {cur_total:.2f}s vs baseline {base_total:.2f}s "
            f"(limit {limit:.2f}s)"
        )
        if cur_total > limit:
            report.violations.append(check)
        else:
            report.checks.append(check)

    base_acc = protected_accuracies(baseline)
    cur_acc = protected_accuracies(current)
    for name, base_value in sorted(base_acc.items()):
        if name not in cur_acc:
            report.violations.append(
                f"protected accuracy for {name!r} missing from current artifact"
            )
            continue
        floor = base_value * (1.0 - accuracy_tolerance)
        check = (
            f"{name}: protected accuracy {cur_acc[name]:.2f}% vs baseline "
            f"{base_value:.2f}% (floor {floor:.2f}%)"
        )
        if cur_acc[name] < floor:
            report.violations.append(check)
        else:
            report.checks.append(check)
    return report


def compare_attack_search(
    current: dict,
    baseline: dict,
    speedup_tolerance: float = 0.25,
) -> RegressionReport:
    """Regression gate for the attack-search microbenchmark artifact.

    Two things must hold: the suffix engine still matches the
    full-forward reference bit-for-bit in every recorded cell (a
    correctness property, no tolerance), and each cell's *speedup
    ratio* has not shrunk more than ``speedup_tolerance`` versus the
    committed baseline.  Ratios -- unlike wall-clock seconds --
    transfer across runner classes, so this check is meaningful even
    when the absolute timings are not.
    """
    report = RegressionReport()
    current_families = current.get("families", {})
    for name, cell in sorted(current_families.items()):
        if not cell.get("results_identical", False):
            report.violations.append(
                f"{name}: suffix engine diverged from the full-forward "
                "reference"
            )
    for name, base_cell in sorted(baseline.get("families", {}).items()):
        cell = current_families.get(name)
        if cell is None:
            report.violations.append(
                f"family {name!r} missing from current artifact"
            )
            continue
        floor = base_cell["speedup"] * (1.0 - speedup_tolerance)
        check = (
            f"{name}: speedup {cell['speedup']:.2f}x vs baseline "
            f"{base_cell['speedup']:.2f}x (floor {floor:.2f}x)"
        )
        if cell["speedup"] < floor:
            report.violations.append(check)
        else:
            report.checks.append(check)
    pool = current.get("pool", {})
    if pool and not pool.get("results_identical", True):
        report.violations.append(
            "persistent worker pool changed matrix results"
        )
    return report


def compare_serving(
    current: dict,
    baseline: dict,
    throughput_tolerance: float = 0.25,
) -> RegressionReport:
    """Regression gate for the serving benchmark artifact.

    Four properties:

    * **SLA-stat equivalence** (no tolerance): every cell's
      deterministic SLA fingerprint -- request/issued/blocked tallies
      and latency percentiles, all *simulated* quantities that transfer
      across runner classes -- must equal the committed baseline
      exactly; a drift means the serving path's behaviour changed.
    * **Engine equivalence** (no tolerance): every current cell that
      recorded an ``engine_check`` must report the events-engine
      payload bit-identical to the bulk reference (the scalar <= bulk
      <= events contract in ``docs/ARCHITECTURE.md``).
    * **Channel scaling**: each defense's 1-to-max-channel aggregate
      requests/sec ratio must not shrink more than
      ``throughput_tolerance`` versus the baseline (ratios of simulated
      throughput, so they transfer too).
    * **Protection intact** (no tolerance): every locker cell's victim
      flip-event count equals the committed baseline's -- zero for any
      cell the baseline does not know.  (The count is deterministic;
      at high channel counts a pinned nonzero count records a known
      unlock-SWAP-failure exposure event, not a regression.)  The
      model-victim probe's accuracy must be unchanged under the
      co-located attack.
    """
    report = RegressionReport()
    current_cells = current.get("cells", {})
    for name, cell in sorted(current_cells.items()):
        engine_check = cell.get("engine_check")
        if engine_check is None:
            continue
        check = f"{name}: events engine bit-identical to bulk reference"
        if engine_check.get("identical"):
            report.checks.append(check)
        else:
            report.violations.append(
                f"{name}: events engine diverged from the bulk reference"
            )
    for name, base_cell in sorted(baseline.get("cells", {}).items()):
        cell = current_cells.get(name)
        if cell is None:
            report.violations.append(f"cell {name!r} missing from current artifact")
            continue
        base_sla = base_cell.get("sla_fingerprint")
        if base_sla is not None:
            check = f"{name}: SLA fingerprint matches baseline"
            if cell.get("sla_fingerprint") != base_sla:
                report.violations.append(
                    f"{name}: SLA fingerprint diverged from baseline "
                    f"({cell.get('sla_fingerprint')} != {base_sla})"
                )
            else:
                report.checks.append(check)
    for defense, base_scale in sorted(baseline.get("scaling", {}).items()):
        scale = current.get("scaling", {}).get(defense)
        if scale is None:
            report.violations.append(
                f"scaling entry {defense!r} missing from current artifact"
            )
            continue
        floor = base_scale["ratio"] * (1.0 - throughput_tolerance)
        check = (
            f"{defense}: channel-scaling ratio {scale['ratio']:.2f}x vs "
            f"baseline {base_scale['ratio']:.2f}x (floor {floor:.2f}x)"
        )
        if scale["ratio"] < floor:
            report.violations.append(check)
        else:
            report.checks.append(check)
    for name, cell in sorted(current_cells.items()):
        if not cell.get("protected"):
            continue
        flips = cell.get("victim_flip_events", 0)
        base_flips = (
            baseline.get("cells", {}).get(name, {}).get("victim_flip_events", 0)
        )
        check = (
            f"{name}: protected victim flip events {flips} "
            f"(baseline {base_flips})"
        )
        if flips != base_flips:
            report.violations.append(check)
        else:
            report.checks.append(check)
    victim = current.get("victim")
    if victim is None:
        # The probe may only be absent when the baseline never had it;
        # a silent drop of a gated section is itself a regression.
        if baseline.get("victim") is not None:
            report.violations.append(
                "model-victim probe missing from current artifact"
            )
    elif victim.get("skipped"):
        # Recorded with --skip-model-victim: explicit, so not a drop.
        report.checks.append("model-victim probe explicitly skipped")
    else:
        check = (
            f"model victim accuracy {victim.get('post_attack_accuracy'):.2f}% "
            f"vs clean {victim.get('clean_accuracy'):.2f}% under attack"
        )
        if not victim.get("accuracy_unchanged"):
            report.violations.append(check)
        else:
            report.checks.append(check)
    return report


def compare_serving_live(
    current: dict,
    baseline: dict,
) -> RegressionReport:
    """Regression gate for the live-frontend serving artifact.

    Everything compared is a *simulated* quantity (deterministic
    replays of recorded traces), so the gate is exact -- no tolerances:

    * **Replay equivalence**: every recorded replay cell must report
      the infinite-speedup replay bit-identical to the closed-loop run
      of the same config (the replay-equivalence contract,
      ``docs/SERVING.md``).
    * **Overload determinism**: each overload cell's SLA fingerprint
      and shed count must equal the committed baseline's exactly.
    * **Admission effectiveness**: every admitted overload cell that
      records ``holds_p99`` must hold its sojourn target, and no
      admitted cell's sojourn p99 may exceed the unadmitted (open)
      cell's -- shedding must never make the tail *worse*.
    * **Protection intact**: the co-located cell's victim flip events
      must equal the baseline's (zero) while admission sheds load.
    * **Conservation**: the wall-clock-paced live run must report
      ``offered == served + shed`` (wall seconds themselves are not
      compared; they do not transfer across runner classes).
    """
    report = RegressionReport()

    current_replay = current.get("replay", {}).get("cells", {})
    for name, cell in sorted(current_replay.items()):
        check = f"replay {name}: bit-identical to the closed loop"
        if cell.get("identical"):
            report.checks.append(check)
        else:
            report.violations.append(
                f"replay {name}: diverged from the closed loop"
            )
    for name in sorted(baseline.get("replay", {}).get("cells", {})):
        if name not in current_replay:
            report.violations.append(
                f"replay cell {name!r} missing from current artifact"
            )

    current_overload = current.get("overload", {}).get("cells", {})
    for name, base_cell in sorted(
        baseline.get("overload", {}).get("cells", {}).items()
    ):
        cell = current_overload.get(name)
        if cell is None:
            report.violations.append(
                f"overload cell {name!r} missing from current artifact"
            )
            continue
        for key in ("sla_fingerprint", "shed"):
            if key not in base_cell:
                continue
            check = f"overload {name}: {key} matches baseline"
            if cell.get(key) != base_cell[key]:
                report.violations.append(
                    f"overload {name}: {key} diverged from baseline "
                    f"({cell.get(key)} != {base_cell[key]})"
                )
            else:
                report.checks.append(check)
    open_cell = current_overload.get("open", {})
    open_p99 = open_cell.get("sojourn_p99_ns")
    for name, cell in sorted(current_overload.items()):
        if "holds_p99" in cell:
            check = (
                f"overload {name}: sojourn p99 "
                f"{cell.get('sojourn_p99_ns', float('nan')):.0f}ns holds "
                f"target {cell.get('p99_target_ns', float('nan')):.0f}ns"
            )
            if cell["holds_p99"]:
                report.checks.append(check)
            else:
                report.violations.append(check)
        if name == "open" or open_p99 is None:
            continue
        p99 = cell.get("sojourn_p99_ns")
        if p99 is not None:
            check = (
                f"overload {name}: admitted sojourn p99 {p99:.0f}ns <= "
                f"open {open_p99:.0f}ns"
            )
            if p99 <= open_p99:
                report.checks.append(check)
            else:
                report.violations.append(check)

    colocated = current.get("colocated")
    base_colocated = baseline.get("colocated")
    if colocated is None:
        if base_colocated is not None:
            report.violations.append(
                "co-located cell missing from current artifact"
            )
    else:
        base_flips = (base_colocated or {}).get("victim_flip_events", 0)
        flips = colocated.get("victim_flip_events", 0)
        check = (
            f"co-located: victim flip events {flips} "
            f"(baseline {base_flips}) with {colocated.get('shed', 0)} "
            "ops shed"
        )
        if flips != base_flips:
            report.violations.append(check)
        else:
            report.checks.append(check)

    live = current.get("live")
    if live is None:
        if baseline.get("live") is not None:
            report.violations.append(
                "live pacing section missing from current artifact"
            )
    else:
        check = (
            f"live: conservation offered={live.get('offered')} == "
            f"served={live.get('served')} + shed={live.get('shed')}"
        )
        if live.get("conserved"):
            report.checks.append(check)
        else:
            report.violations.append(check)
    return report


def compare_defended_hammer(
    current: dict,
    baseline: dict,
    speedup_tolerance: float = 0.25,
) -> RegressionReport:
    """Regression gate for the defended-hammer microbenchmark artifact.

    Mirrors :func:`compare_attack_search`: the bulk engine must still
    match the scalar reference bit-for-bit in every defense cell (a
    correctness property, no tolerance), and each cell's *speedup
    ratio* -- which transfers across runner classes, unlike wall-clock
    -- must not have shrunk more than ``speedup_tolerance`` versus the
    committed baseline.  Cells that also recorded the events engine
    (``events_identical``) must report it bit-identical to the same
    scalar reference.
    """
    report = RegressionReport()
    current_defenses = current.get("defenses", {})
    for name, cell in sorted(current_defenses.items()):
        if not cell.get("results_identical", False):
            report.violations.append(
                f"{name}: bulk engine diverged from the scalar reference"
            )
        if "events_identical" in cell and not cell["events_identical"]:
            report.violations.append(
                f"{name}: events engine diverged from the scalar reference"
            )
    for name, base_cell in sorted(baseline.get("defenses", {}).items()):
        cell = current_defenses.get(name)
        if cell is None:
            report.violations.append(
                f"defense {name!r} missing from current artifact"
            )
            continue
        floor = base_cell["speedup"] * (1.0 - speedup_tolerance)
        check = (
            f"{name}: speedup {cell['speedup']:.2f}x vs baseline "
            f"{base_cell['speedup']:.2f}x (floor {floor:.2f}x)"
        )
        if cell["speedup"] < floor:
            report.violations.append(check)
        else:
            report.checks.append(check)
    return report


def compare_runtable(
    current: dict,
    baseline: dict,
    overhead_tolerance: float = 0.25,
) -> RegressionReport:
    """Regression gate for the run-table orchestration artifact.

    The fleet properties the orchestration layer exists to provide are
    all deterministic, so most of the gate is exact:

    * **Checkpoint transparency**: the checkpointed table's results
      must be bit-identical to a plain ``run_matrix`` sweep of the
      same cells (``results_identical``) -- journalling must never
      change what is computed.
    * **Crash recovery**: the subprocess SIGKILLed mid-sweep and
      resumed with ``--resume`` must emit a results section
      bit-identical to the uninterrupted run (``resume_identical``),
      and must actually have resumed from a non-empty journal.
    * **Fault containment**: the chaos table must quarantine exactly
      its always-crashing cells (count pinned to the baseline's),
      recover its crash-once cells, and its channel-fault cell must
      conserve ``offered == served + shed`` with zero victim flips
      under DRAM-Locker.
    * **Checkpoint overhead**: the journalled run's wall-clock
      overhead *ratio* over the plain sweep -- which transfers across
      runner classes, unlike wall seconds -- must not exceed the
      baseline's by more than ``overhead_tolerance``.
    """
    report = RegressionReport()

    checkpoint = current.get("checkpoint", {})
    if checkpoint.get("results_identical"):
        report.checks.append(
            "checkpoint: journalled results identical to plain run_matrix"
        )
    else:
        report.violations.append(
            "checkpoint: journalled results diverged from plain run_matrix"
        )

    recovery = current.get("recovery", {})
    if recovery.get("resume_identical"):
        report.checks.append(
            f"recovery: SIGKILL at {recovery.get('journal_lines_at_kill')} "
            "journal line(s) + --resume is bit-identical"
        )
    else:
        report.violations.append(
            "recovery: resumed artifact diverged from uninterrupted run"
        )
    if not recovery.get("journal_lines_at_kill", 0):
        report.violations.append(
            "recovery: victim run was killed before journalling any cell "
            "(resume path not exercised)"
        )

    chaos = current.get("chaos", {})
    base_chaos = baseline.get("chaos", {})
    for key in ("quarantined", "errors", "recovered"):
        if key not in base_chaos:
            continue
        check = (
            f"chaos: {key} {chaos.get(key)} == baseline {base_chaos[key]}"
        )
        if chaos.get(key) != base_chaos[key]:
            report.violations.append(check)
        else:
            report.checks.append(check)
    fault = chaos.get("channel_fault")
    if fault is None:
        if base_chaos.get("channel_fault") is not None:
            report.violations.append(
                "chaos: channel-fault cell missing from current artifact"
            )
    else:
        check = (
            f"chaos: channel fault conserved offered="
            f"{fault.get('offered_ops')} == served={fault.get('served_ops')}"
            f" + shed={fault.get('shed_ops')} with "
            f"{fault.get('victim_flip_events')} victim flip(s)"
        )
        if fault.get("conserved") and not fault.get("victim_flip_events"):
            report.checks.append(check)
        else:
            report.violations.append(check)

    overhead = checkpoint.get("overhead_ratio")
    base_overhead = baseline.get("checkpoint", {}).get("overhead_ratio")
    if overhead is not None and base_overhead is not None:
        ceiling = base_overhead * (1.0 + overhead_tolerance)
        check = (
            f"checkpoint: overhead {overhead:.2f}x vs baseline "
            f"{base_overhead:.2f}x (ceiling {ceiling:.2f}x)"
        )
        if overhead > ceiling:
            report.violations.append(check)
        else:
            report.checks.append(check)
    return report


def compare_bakeoff(
    current: dict,
    baseline: dict,
    accuracy_tolerance: float = 0.10,
    latency_tolerance: float = 0.25,
) -> RegressionReport:
    """Regression gate for the defense bake-off artifact.

    Everything behavioural in the bake-off is deterministic simulation,
    so most of the gate is exact:

    * **Chaos-cell contract** (no tolerance, self-contained): every
      injected corruption detected (``all_injections_detected``), every
      injection's detection latency recorded, and post-recovery
      accuracy within the cell's committed ``accuracy_budget_pct`` of
      the clean baseline.
    * **Engine equivalence** (no tolerance): every serving cell that
      recorded an ``engine_check`` must report the bulk and events
      payloads bit-identical.
    * **Prevention intact** (no tolerance): each DRAM-Locker serving
      cell's victim flip-event count equals the baseline's -- zero for
      cells the baseline does not know.
    * **SLA-stat equivalence** (no tolerance): serving-cell SLA
      fingerprints equal the committed baseline's exactly.
    * **Protection frontier**: per defense, the *worst* defended
      accuracy across the attack matrix must not shrink more than
      ``accuracy_tolerance`` (fractional) versus the baseline, and the
      chaos cell's detection latency must not grow more than
      ``latency_tolerance``.
    """
    report = RegressionReport()

    chaos = current.get("chaos")
    base_chaos = baseline.get("chaos")
    if chaos is None:
        if base_chaos is not None:
            report.violations.append(
                "chaos cell missing from current artifact"
            )
    else:
        check = (
            f"chaos: {chaos.get('injections_detected')}/"
            f"{chaos.get('injected_corruptions')} injected corruption(s) "
            "detected"
        )
        if chaos.get("all_injections_detected"):
            report.checks.append(check)
        else:
            report.violations.append(check)
        budget = chaos.get("accuracy_budget_pct", 0.5)
        delta = chaos.get("accuracy_delta_pct")
        check = (
            f"chaos: post-recovery accuracy within {budget}pp of clean "
            f"(delta {delta}pp)"
        )
        if delta is None or delta > budget:
            report.violations.append(check)
        else:
            report.checks.append(check)
        latencies = chaos.get("detection_latency_ns", [])
        check = (
            f"chaos: detection latency recorded for "
            f"{len(latencies)} injection(s)"
        )
        if not latencies or any(value is None for value in latencies):
            report.violations.append(
                "chaos: detection latency missing for at least one "
                "injection"
            )
        else:
            report.checks.append(check)
        base_latencies = (base_chaos or {}).get("detection_latency_ns")
        measurable = (
            latencies
            and base_latencies
            and all(value is not None for value in latencies)
            and all(value is not None for value in base_latencies)
        )
        if measurable:
            ceiling = max(base_latencies) * (1.0 + latency_tolerance)
            worst = max(latencies)
            check = (
                f"chaos: worst detection latency {worst:.0f}ns vs "
                f"baseline {max(base_latencies):.0f}ns "
                f"(ceiling {ceiling:.0f}ns)"
            )
            # An all-zero baseline (detected at the injection-slice
            # probe) pins the current run to zero as well.
            if worst > ceiling and worst > max(base_latencies):
                report.violations.append(check)
            else:
                report.checks.append(check)

    current_serving = current.get("serving_cells", {})
    for name, cell in sorted(current_serving.items()):
        engine_check = cell.get("engine_check")
        if engine_check is None:
            continue
        check = f"{name}: events engine bit-identical to bulk reference"
        if engine_check.get("identical"):
            report.checks.append(check)
        else:
            report.violations.append(
                f"{name}: events engine diverged from the bulk reference"
            )
    for name, base_cell in sorted(baseline.get("serving_cells", {}).items()):
        cell = current_serving.get(name)
        if cell is None:
            report.violations.append(
                f"serving cell {name!r} missing from current artifact"
            )
            continue
        base_sla = base_cell.get("sla_fingerprint")
        if base_sla is not None:
            check = f"{name}: SLA fingerprint matches baseline"
            if cell.get("sla_fingerprint") != base_sla:
                report.violations.append(
                    f"{name}: SLA fingerprint diverged from baseline "
                    f"({cell.get('sla_fingerprint')} != {base_sla})"
                )
            else:
                report.checks.append(check)
    for name, cell in sorted(current_serving.items()):
        if cell.get("defense") != "DRAM-Locker":
            continue
        flips = cell.get("victim_flip_events", 0)
        base_flips = (
            baseline.get("serving_cells", {})
            .get(name, {})
            .get("victim_flip_events", 0)
        )
        check = (
            f"{name}: locker victim flip events {flips} "
            f"(baseline {base_flips})"
        )
        if flips != base_flips:
            report.violations.append(check)
        else:
            report.checks.append(check)

    current_frontier = current.get("frontier", {})
    for defense, base_point in sorted(baseline.get("frontier", {}).items()):
        point = current_frontier.get(defense)
        if point is None:
            report.violations.append(
                f"frontier point {defense!r} missing from current artifact"
            )
            continue
        base_worst = base_point.get("worst_defended_accuracy")
        worst = point.get("worst_defended_accuracy")
        if base_worst is None or worst is None:
            continue
        floor = base_worst * (1.0 - accuracy_tolerance)
        check = (
            f"{defense}: worst defended accuracy {worst:.2f}% vs "
            f"baseline {base_worst:.2f}% (floor {floor:.2f}%)"
        )
        if worst < floor:
            report.violations.append(check)
        else:
            report.checks.append(check)
    return report


def compare_obs(
    current: dict,
    baseline: dict,
    disabled_budget_pct: float = 1.0,
    enabled_tolerance: float = 0.50,
) -> RegressionReport:
    """Regression gate for the telemetry-overhead artifact.

    The telemetry core's contract has two halves, and the gate checks
    both:

    * **Observational inertness** (no tolerance, self-contained):
      every cell run with telemetry enabled must produce a payload
      bit-identical to the disabled run (``payload_identical``), and
      the deterministic event counts -- metric ``updates`` and
      ``audit_events`` -- must equal the committed baseline's exactly.
      A drift means instrumentation leaked into simulation state.
    * **Zero overhead when disabled** (absolute budget, self-contained):
      each cell's ``disabled_pct`` -- the measured per-guard check cost
      times the number of guard sites hit, as a percentage of the
      cell's telemetry-off runtime -- must stay under
      ``disabled_budget_pct``.  The estimate is built from a guard
      microbenchmark rather than differencing two noisy wall-clock
      runs, so it is stable enough to gate on in CI.

    The *enabled* path is allowed to cost real time; its ``enabled_ratio``
    (on/off wall-clock) only has to stay within ``enabled_tolerance``
    of the committed baseline's ratio -- ratios transfer across runner
    classes, wall seconds do not.
    """
    report = RegressionReport()
    current_cells = current.get("cells", {})
    for name, cell in sorted(current_cells.items()):
        check = f"{name}: enabled payload bit-identical to disabled run"
        if cell.get("payload_identical"):
            report.checks.append(check)
        else:
            report.violations.append(
                f"{name}: telemetry changed the simulation payload"
            )
        pct = cell.get("disabled_pct")
        check = (
            f"{name}: disabled-path overhead {pct if pct is None else round(pct, 4)}% "
            f"(budget {disabled_budget_pct}%)"
        )
        if pct is None or pct >= disabled_budget_pct:
            report.violations.append(check)
        else:
            report.checks.append(check)
    for name, base_cell in sorted(baseline.get("cells", {}).items()):
        cell = current_cells.get(name)
        if cell is None:
            report.violations.append(f"cell {name!r} missing from current artifact")
            continue
        for key in ("updates", "audit_events"):
            if key not in base_cell:
                continue
            check = (
                f"{name}: {key} {cell.get(key)} == baseline {base_cell[key]}"
            )
            if cell.get(key) != base_cell[key]:
                report.violations.append(
                    f"{name}: {key} diverged from baseline "
                    f"({cell.get(key)} != {base_cell[key]})"
                )
            else:
                report.checks.append(check)
        base_ratio = base_cell.get("enabled_ratio")
        ratio = cell.get("enabled_ratio")
        if base_ratio is None or ratio is None:
            continue
        ceiling = base_ratio * (1.0 + enabled_tolerance)
        check = (
            f"{name}: enabled-path ratio {ratio:.3f}x vs baseline "
            f"{base_ratio:.3f}x (ceiling {ceiling:.3f}x)"
        )
        if ratio > ceiling:
            report.violations.append(check)
        else:
            report.checks.append(check)
    return report
