"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro.eval list
    python -m repro.eval table1
    python -m repro.eval fig7b
    python -m repro.eval fig8 --arch resnet20 --full
    python -m repro.eval all            # everything cheap (no training)
    python -m repro.eval matrix --set smoke --out artifacts
                                        # parallel scenario harness
    python -m repro.eval runtable --set demo --out artifacts --resume
                                        # checkpointed factorial sweeps

``--log-level {debug,info,warning,error}`` (accepted anywhere on the
command line, including before ``matrix``/``runtable``) turns on
structured jsonl logging to stderr via :mod:`repro.obs.logging`; it
never changes stdout output or exit codes.
"""

from __future__ import annotations

import argparse
import sys

from ..obs.logging import LOG_LEVELS, configure_logging
from .experiments import (
    Scale,
    run_fig1a,
    run_fig1b,
    run_fig5,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_pta,
    run_rowclone_savings,
    run_sec4d_montecarlo,
    run_table1,
    run_table2,
)
from .reporting import downsample, format_series, format_table

CHEAP = ("fig1b", "fig5", "sec4d", "table1", "fig7a", "fig7b", "rowclone")
TRAINING = ("fig1a", "fig8", "pta", "table2")


def _print_fig1a(scale: Scale) -> None:
    out = run_fig1a(scale)
    print(f"clean {out['clean_accuracy']:.1f}% (chance {out['chance_accuracy']:.1f}%)")
    for name in ("bfa", "random"):
        xs, ys = zip(*downsample(out[name], 10))
        print(format_series(name, xs, ys, "{:.1f}"))


def _print_fig8(scale: Scale, arch: str) -> None:
    out = run_fig8(arch, scale)
    print(f"{arch}: clean {out['clean_accuracy']:.1f}%")
    for label, accs in out["curves"].items():
        xs, ys = zip(*downsample(accs, 10))
        print(format_series(label, xs, ys, "{:.1f}"))
    for label, stats in out["stats"].items():
        print(f"  {label}: {stats}")


def _print_pta(scale: Scale) -> None:
    out = run_pta(scale)
    print(f"clean {out['clean_accuracy']:.1f}%")
    for label, accs in out["curves"].items():
        print(label, [f"{a:.1f}" for a in accs])


def _print_table2(scale: Scale) -> None:
    out = run_table2(scale)
    print(
        format_table(
            ["Model", "Clean", "Post-attack", "Bit-flips"],
            [
                (r["model"], f"{r['clean_accuracy']:.2f}",
                 f"{r['post_attack_accuracy']:.2f}", r["bit_flips"])
                for r in out["rows"]
            ],
        )
    )


def _print_fig7a() -> None:
    out = run_fig7a()
    counts = out["attack_counts"]
    print("attacks".ljust(12) + "".join(f"{n:>12}" for n in counts))
    for name, values in out["series"].items():
        print(name.ljust(12) + "".join(f"{v:12.2e}" for v in values))


def _print_fig7b() -> None:
    out = run_fig7b()
    for threshold, days in out["shadow_days"].items():
        print(f"SHADOW @ {threshold}: {days:8.0f} days")
    print(f"DRAM-Locker: {out['locker_days']:.3g} days (>4000: "
          f"{out['locker_exceeds_plot']})")


def _extract_log_level(argv: list[str]) -> tuple[list[str], str | None]:
    """Strip ``--log-level [=]X`` from anywhere in ``argv``.

    Handled here -- before dispatch -- so the flag works uniformly for
    the experiment runners and for the delegated ``matrix``/``runtable``
    sub-CLIs without threading it through every parser.
    """
    rest: list[str] = []
    level: str | None = None
    index = 0
    while index < len(argv):
        token = argv[index]
        if token == "--log-level" and index + 1 < len(argv):
            level = argv[index + 1]
            index += 2
            continue
        if token.startswith("--log-level="):
            level = token.split("=", 1)[1]
            index += 1
            continue
        rest.append(token)
        index += 1
    if level is not None and level not in LOG_LEVELS:
        raise SystemExit(
            f"error: --log-level must be one of {', '.join(LOG_LEVELS)}"
        )
    return rest, level


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv, log_level = _extract_log_level(list(argv))
    configure_logging(log_level)
    if argv and argv[0] == "matrix":
        # Delegate to the parallel scenario harness CLI.
        from .harness import main as harness_main

        return harness_main(argv[1:])
    if argv and argv[0] == "runtable":
        # Delegate to the checkpoint-resumable run-table CLI.
        from .runtable import main as runtable_main

        return runtable_main(argv[1:])
    parser = argparse.ArgumentParser(prog="python -m repro.eval")
    parser.add_argument(
        "experiment", help="which table/figure (or 'list'/'all'/'matrix')"
    )
    parser.add_argument("--arch", default="resnet20", choices=["resnet20", "vgg11"])
    parser.add_argument("--full", action="store_true", help="near-paper scale")
    args = parser.parse_args(argv)
    scale = Scale.full() if args.full else Scale.quick()

    if args.experiment == "list":
        from ..attacks import available_attacks

        print("cheap:", ", ".join(CHEAP))
        print("training-based:", ", ".join(TRAINING))
        print(
            "registered attacks (matrix --set attacks):",
            ", ".join(available_attacks()),
        )
        return 0

    runners = {
        "fig1b": lambda: print(format_table(["generation", "TRH"], run_fig1b())),
        "fig5": lambda: print(run_fig5()["swap_program_listing"]),
        "sec4d": lambda: print(
            format_table(
                ["variation", "error rate"],
                [
                    (f"+/-{r['variation_pct']:.0f}%", f"{100 * r['error_rate']:.2f}%")
                    for r in run_sec4d_montecarlo()
                ],
            )
        ),
        "table1": lambda: print(run_table1()["text"]),
        "fig7a": _print_fig7a,
        "fig7b": _print_fig7b,
        "rowclone": lambda: print(run_rowclone_savings()),
        "fig1a": lambda: _print_fig1a(scale),
        "fig8": lambda: _print_fig8(scale, args.arch),
        "pta": lambda: _print_pta(scale),
        "table2": lambda: _print_table2(scale),
    }
    if args.experiment == "all":
        for name in CHEAP:
            print(f"\n=== {name} ===")
            runners[name]()
        return 0
    runner = runners.get(args.experiment)
    if runner is None:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    runner()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
