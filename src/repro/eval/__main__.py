"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro.eval list
    python -m repro.eval table1
    python -m repro.eval fig7b
    python -m repro.eval fig8 --arch resnet20 --full
    python -m repro.eval all            # everything cheap (no training)
    python -m repro.eval matrix --set smoke --out artifacts
                                        # parallel scenario harness
    python -m repro.eval runtable --set demo --out artifacts --resume
                                        # checkpointed factorial sweeps
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    Scale,
    run_fig1a,
    run_fig1b,
    run_fig5,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_pta,
    run_rowclone_savings,
    run_sec4d_montecarlo,
    run_table1,
    run_table2,
)
from .reporting import downsample, format_series, format_table

CHEAP = ("fig1b", "fig5", "sec4d", "table1", "fig7a", "fig7b", "rowclone")
TRAINING = ("fig1a", "fig8", "pta", "table2")


def _print_fig1a(scale: Scale) -> None:
    out = run_fig1a(scale)
    print(f"clean {out['clean_accuracy']:.1f}% (chance {out['chance_accuracy']:.1f}%)")
    for name in ("bfa", "random"):
        xs, ys = zip(*downsample(out[name], 10))
        print(format_series(name, xs, ys, "{:.1f}"))


def _print_fig8(scale: Scale, arch: str) -> None:
    out = run_fig8(arch, scale)
    print(f"{arch}: clean {out['clean_accuracy']:.1f}%")
    for label, accs in out["curves"].items():
        xs, ys = zip(*downsample(accs, 10))
        print(format_series(label, xs, ys, "{:.1f}"))
    for label, stats in out["stats"].items():
        print(f"  {label}: {stats}")


def _print_pta(scale: Scale) -> None:
    out = run_pta(scale)
    print(f"clean {out['clean_accuracy']:.1f}%")
    for label, accs in out["curves"].items():
        print(label, [f"{a:.1f}" for a in accs])


def _print_table2(scale: Scale) -> None:
    out = run_table2(scale)
    print(
        format_table(
            ["Model", "Clean", "Post-attack", "Bit-flips"],
            [
                (r["model"], f"{r['clean_accuracy']:.2f}",
                 f"{r['post_attack_accuracy']:.2f}", r["bit_flips"])
                for r in out["rows"]
            ],
        )
    )


def _print_fig7a() -> None:
    out = run_fig7a()
    counts = out["attack_counts"]
    print("attacks".ljust(12) + "".join(f"{n:>12}" for n in counts))
    for name, values in out["series"].items():
        print(name.ljust(12) + "".join(f"{v:12.2e}" for v in values))


def _print_fig7b() -> None:
    out = run_fig7b()
    for threshold, days in out["shadow_days"].items():
        print(f"SHADOW @ {threshold}: {days:8.0f} days")
    print(f"DRAM-Locker: {out['locker_days']:.3g} days (>4000: "
          f"{out['locker_exceeds_plot']})")


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "matrix":
        # Delegate to the parallel scenario harness CLI.
        from .harness import main as harness_main

        return harness_main(argv[1:])
    if argv and argv[0] == "runtable":
        # Delegate to the checkpoint-resumable run-table CLI.
        from .runtable import main as runtable_main

        return runtable_main(argv[1:])
    parser = argparse.ArgumentParser(prog="python -m repro.eval")
    parser.add_argument(
        "experiment", help="which table/figure (or 'list'/'all'/'matrix')"
    )
    parser.add_argument("--arch", default="resnet20", choices=["resnet20", "vgg11"])
    parser.add_argument("--full", action="store_true", help="near-paper scale")
    args = parser.parse_args(argv)
    scale = Scale.full() if args.full else Scale.quick()

    if args.experiment == "list":
        from ..attacks import available_attacks

        print("cheap:", ", ".join(CHEAP))
        print("training-based:", ", ".join(TRAINING))
        print(
            "registered attacks (matrix --set attacks):",
            ", ".join(available_attacks()),
        )
        return 0

    runners = {
        "fig1b": lambda: print(format_table(["generation", "TRH"], run_fig1b())),
        "fig5": lambda: print(run_fig5()["swap_program_listing"]),
        "sec4d": lambda: print(
            format_table(
                ["variation", "error rate"],
                [
                    (f"+/-{r['variation_pct']:.0f}%", f"{100 * r['error_rate']:.2f}%")
                    for r in run_sec4d_montecarlo()
                ],
            )
        ),
        "table1": lambda: print(run_table1()["text"]),
        "fig7a": _print_fig7a,
        "fig7b": _print_fig7b,
        "rowclone": lambda: print(run_rowclone_savings()),
        "fig1a": lambda: _print_fig1a(scale),
        "fig8": lambda: _print_fig8(scale, args.arch),
        "pta": lambda: _print_pta(scale),
        "table2": lambda: _print_table2(scale),
    }
    if args.experiment == "all":
        for name in CHEAP:
            print(f"\n=== {name} ===")
            runners[name]()
        return 0
    runner = runners.get(args.experiment)
    if runner is None:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    runner()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
