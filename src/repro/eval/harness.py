"""Parallel scenario harness: the defense x attack x model x scale matrix.

Every figure/table runner used to be a hand-rolled serial script.  This
module turns them into declarative :class:`Scenario` specs -- a named
(runner, arch, scale, seed, params) point of the evaluation matrix --
and a :func:`run_matrix` executor that fans scenarios out over
``multiprocessing`` workers with deterministic per-scenario seeds and
writes one ``BENCH_<tag>.json`` artifact capturing accuracy curves,
memory stats, and wall-clock per scenario.

Properties the test suite pins down (``tests/test_harness.py``):

* **Determinism** -- the artifact's ``results`` section is a pure
  function of the scenario list and ``base_seed``; re-running, or
  changing the worker count, changes only the ``timing`` section.
* **Seed derivation** -- a scenario without an explicit seed gets
  ``derive_seed(name, base_seed)``, a stable CRC-based value, so adding
  or reordering scenarios never shifts another scenario's seed.

Command line::

    python -m repro.eval.harness --set smoke --out artifacts
    python -m repro.eval.harness --set quick --workers 4 --tag nightly
"""

from __future__ import annotations

import argparse
import atexit
import cProfile
import itertools
import json
import logging
import multiprocessing
import os
import re
import time
import traceback
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .. import obs
from ..controller.controller import MemoryController
from ..defenses.builders import (
    DEFENSE_BUILDERS,
    DEFENDED_HAMMER_DEFENSES,
    resolve_serving_defense,
)
from ..engines import resolve_engine
from ..attacks import available_attacks
from ..attacks.hammer import HammerDriver
from ..dram.config import DRAMConfig
from ..dram.device import DRAMDevice
from ..dram.vulnerability import VulnerabilityMap
from ..locker.locker import DRAMLocker, LockerConfig
from ..seeds import derive_seed
from .faults import FaultPlan
from .experiments import (
    Scale,
    run_attack_scenario,
    run_fig1a,
    run_fig1b,
    run_fig5,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_layout_ablation,
    run_pta,
    run_radius_ablation,
    run_relock_ablation,
    run_rowclone_savings,
    run_sec4d_montecarlo,
    run_table1,
    run_table2,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "MatrixResult",
    "MatrixFailure",
    "derive_seed",
    "run_scenario",
    "run_matrix",
    "scenario_result_payload",
    "SupervisorConfig",
    "attack_prewarm",
    "shutdown_worker_pool",
    "attack_scenarios",
    "bakeoff_scenarios",
    "BAKEOFF_DEFENSES",
    "cheap_scenarios",
    "smoke_scenarios",
    "quick_scenarios",
    "serving_scenarios",
    "SCENARIO_RUNNERS",
    "DEFENSE_BUILDERS",
    "DEFENDED_HAMMER_DEFENSES",
]

logger = logging.getLogger("repro.eval.harness")


# ----------------------------------------------------------------------
# Scenario specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One point of the defense x attack x model x scale x seed matrix.

    Attributes:
        name: Unique label inside a matrix; also the artifact key and
            the seed-derivation input.
        runner: Key into :data:`SCENARIO_RUNNERS`.
        scale: Fidelity/runtime knobs forwarded to the runner.
        seed: Explicit seed; ``None`` derives one from the name.
        params: Extra runner keyword arguments as a sorted tuple of
            ``(key, value)`` pairs (tuples keep the spec hashable and
            cheap to pickle across workers).
    """

    name: str
    runner: str
    scale: Scale = field(default_factory=Scale.quick)
    seed: int | None = None
    params: tuple[tuple[str, Any], ...] = ()

    def resolved_seed(self, base_seed: int = 0) -> int:
        if self.seed is not None:
            return self.seed
        return derive_seed(self.name, base_seed)

    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)


# Stable per-scenario seed: independent of list order and of every
# other scenario, so matrices stay reproducible as they grow.  One
# definition for the whole stack lives in repro.seeds.


@dataclass
class ScenarioResult:
    """Outcome of one scenario execution.

    ``attempts`` and ``quarantined`` are set only by the supervised
    parallel path: ``attempts`` lists the counted failure outcomes
    (``"worker-lost"``, ``"timeout"``, ``"error"``) that preceded this
    result, and ``quarantined=True`` marks a cell that exhausted its
    retry budget and was isolated as a structured error instead of
    poisoning the matrix.
    """

    name: str
    runner: str
    seed: int
    wall_clock_s: float
    payload: dict | None = None
    error: str | None = None
    attempts: tuple[str, ...] = ()
    quarantined: bool = False
    #: Per-cell telemetry snapshot (:meth:`repro.obs.Telemetry.
    #: snapshot`), recorded only when telemetry is active in the
    #: parent (or ``REPRO_TELEMETRY`` is set, which survives spawn
    #: workers).  Deliberately excluded from the artifact payload.
    telemetry: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class MatrixFailure(RuntimeError):
    """Raised by ``run_matrix(strict=True)`` when any scenario failed."""

    def __init__(self, failures: "list[ScenarioResult]"):
        self.failures = failures
        names = ", ".join(result.name for result in failures)
        super().__init__(
            f"{len(failures)} scenario(s) failed: {names}\n\n"
            + "\n\n".join(
                f"--- {result.name} ---\n{result.error}" for result in failures
            )
        )


@dataclass
class MatrixResult:
    """All scenario results plus the matrix-level timing."""

    tag: str
    base_seed: int
    workers: int
    wall_clock_s: float
    results: list[ScenarioResult]
    scenarios: list[Scenario]
    artifact_path: str | None = None
    #: Time spent creating the worker pool; 0.0 when the persistent
    #: pool was reused (or the matrix ran serially).
    pool_startup_s: float = 0.0
    #: Time spent in the parent-side ``prewarm`` hook, if any.
    prewarm_s: float = 0.0
    #: Supervisor attempt log: name -> failure outcomes observed before
    #: the cell's final result ("worker-lost" / "timeout" / "error" /
    #: "aborted").  Timing-section material: which cells needed retries
    #: is infrastructure history, not part of the deterministic results.
    attempt_log: dict[str, list[str]] = field(default_factory=dict)

    def __getitem__(self, name: str) -> ScenarioResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    @property
    def failures(self) -> list[ScenarioResult]:
        return [result for result in self.results if not result.ok]

    def telemetry_summary(self) -> dict | None:
        """Merged per-cell telemetry (worker-count invariant by the
        merge semantics: counters and histogram bins sum, gauges take
        the max, audit kinds tally).  ``None`` when no cell recorded
        telemetry (the disabled default)."""
        cells = [
            result.telemetry for result in self.results if result.telemetry
        ]
        if not cells:
            return None
        kinds: dict[str, int] = {}
        for cell in cells:
            for kind, count in cell["audit"]["kinds"].items():
                kinds[kind] = kinds.get(kind, 0) + count
        return {
            "metrics": obs.MetricsRegistry.merge(
                [cell["metrics"] for cell in cells]
            ),
            "audit": {
                "events": sum(cell["audit"]["events"] for cell in cells),
                "kinds": dict(sorted(kinds.items())),
            },
        }

    def as_artifact(self) -> dict:
        """The ``BENCH_*.json`` document.  Everything except ``timing``
        and ``meta`` is a deterministic function of (scenarios,
        base_seed)."""
        from .regression import host_meta

        return {
            "schema": "dram-locker-bench/1",
            "meta": host_meta(),
            "tag": self.tag,
            "base_seed": self.base_seed,
            "scenarios": [
                {
                    "name": scenario.name,
                    "runner": scenario.runner,
                    "seed": scenario.resolved_seed(self.base_seed),
                    "scale": asdict(scenario.scale),
                    "params": scenario.kwargs(),
                }
                for scenario in self.scenarios
            ],
            "results": {
                result.name: scenario_result_payload(result)
                for result in self.results
            },
            "timing": {
                "workers": self.workers,
                "total_s": self.wall_clock_s,
                "pool_startup_s": self.pool_startup_s,
                "prewarm_s": self.prewarm_s,
                "per_scenario_s": {
                    result.name: result.wall_clock_s
                    for result in self.results
                },
                **(
                    {"attempts": self.attempt_log} if self.attempt_log else {}
                ),
            },
        }

    def write_artifact(self, directory: str) -> str:
        if not _TAG_RE.fullmatch(self.tag):
            raise ValueError(
                f"artifact tag {self.tag!r} must match {_TAG_RE.pattern}"
                " (it becomes part of the BENCH_<tag>.json filename)"
            )
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"BENCH_{self.tag}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                self.as_artifact(),
                handle,
                indent=2,
                sort_keys=True,
                default=_json_fallback,
            )
            handle.write("\n")
        self.artifact_path = path
        return path


def scenario_result_payload(result: ScenarioResult) -> dict | None:
    """One result's entry in the artifact's ``results`` section -- the
    deterministic form shared by :meth:`MatrixResult.as_artifact` and
    the run-table checkpoint journal, so a journaled cell merges back
    bit-identical to an uninterrupted artifact."""
    if result.ok:
        return result.payload
    return {
        "error": result.error,
        **({"attempts": list(result.attempts)} if result.attempts else {}),
        **({"quarantined": True} if result.quarantined else {}),
    }


#: Tags become BENCH_<tag>.json filenames; keep them path-safe.
_TAG_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*")


def _json_fallback(value: Any) -> Any:
    item = getattr(value, "item", None)
    if callable(item):
        return item()  # numpy scalars
    return str(value)


# ----------------------------------------------------------------------
# Runner registry
# ----------------------------------------------------------------------
def _seeded(scale: Scale, seed: int) -> Scale:
    return replace(scale, seed=seed)


def _run_fig8(scale: Scale, seed: int, arch: str = "resnet20") -> dict:
    return run_fig8(arch=arch, scale=_seeded(scale, seed))


def _run_fig1a(scale: Scale, seed: int) -> dict:
    return run_fig1a(_seeded(scale, seed))


def _run_pta(scale: Scale, seed: int) -> dict:
    return run_pta(_seeded(scale, seed))


def _run_table2(scale: Scale, seed: int, **params) -> dict:
    return run_table2(_seeded(scale, seed), **params)


def _run_sec4d(scale: Scale, seed: int, trials: int = 10_000) -> dict:
    return {"rows": run_sec4d_montecarlo(trials=trials)}


def _run_relock_ablation(scale: Scale, seed: int, **params) -> dict:
    results = run_relock_ablation(seed=seed, **params)
    return {str(interval): stats for interval, stats in results.items()}


def _run_radius_ablation(scale: Scale, seed: int) -> dict:
    return {str(radius): out for radius, out in run_radius_ablation().items()}


def _run_layout_ablation(scale: Scale, seed: int) -> dict:
    return {
        ("guard-rows" if guard else "contiguous"): stats
        for guard, stats in run_layout_ablation().items()
    }


# DEFENSE_BUILDERS / DEFENDED_HAMMER_DEFENSES are re-exported above
# from repro.defenses.builders (the canonical definitions) so existing
# ``harness.DEFENSE_BUILDERS`` callers keep working unchanged.


def _run_defense_campaign(
    scale: Scale,
    seed: int,
    defense: str = "None",
    trh: int = 400,
    victim_local: int = 20,
    target_bit: int = 5,
) -> dict:
    """Double-sided hammering of one templated bit under one defense --
    the per-contender unit of ``examples/compare_defenses.py``."""
    config = DRAMConfig.small()
    vulnerability = VulnerabilityMap(config, weak_cell_fraction=0.0)
    device = DRAMDevice(config, vulnerability=vulnerability, trh=trh)
    victim = device.mapper.row_index((0, 0, victim_local))
    use_locker = defense == "DRAM-Locker"
    locker = None
    baseline = None
    if use_locker:
        locker = DRAMLocker(device, LockerConfig())
        locker.protect([victim])
    else:
        builder = DEFENSE_BUILDERS.get(defense)
        if builder is None:
            raise ValueError(f"unknown defense {defense!r}")
        baseline = builder()
    controller = MemoryController(device, defense=baseline, locker=locker)

    device.vulnerability.register_template(victim, [target_bit])
    flipped = False
    for _ in range(3 * trh):
        for aggressor in device.mapper.neighbors(victim):
            controller.hammer(aggressor)
            if device.peek_bytes(victim, 0, 1)[0] >> target_bit & 1:
                flipped = True
                break
        if flipped:
            break
    stats = device.stats
    mitigation_ms = (
        baseline.mitigation_ns_total / 1e6
        if baseline is not None
        else stats.defense_ns / 1e6
    )
    return {
        "defense": defense,
        "flipped": flipped,
        "mitigation_ms": mitigation_ms,
        "blocked": stats.blocked_requests,
        "extra_refreshes": stats.refreshes,
        "rowclones": stats.rowclones,
        "memory_stats": stats.as_dict(),
    }


def _run_defended_hammer(
    scale: Scale,
    seed: int,
    defense: str = "TRR",
    trh: int = 3000,
    patience: float = 2.0,
    victims: int = 2,
    engine: str = "bulk",
) -> dict:
    """The ``HammerDriver.hammer_bit`` hot loop under a DRAM-level
    defense: double-sided TRH-burst campaigns against templated victim
    bits -- the defended analogue of the attack matrix's hammer layer
    and the unit ``benchmarks/bench_defended_hammer.py`` times scalar
    vs bulk.  Deterministic for fixed parameters; the payload carries
    no wall-clock, so engines must agree bit-for-bit."""
    config = DRAMConfig.small()
    vulnerability = VulnerabilityMap(config, weak_cell_fraction=0.0)
    device = DRAMDevice(config, vulnerability=vulnerability, trh=trh)
    victim_rows = [
        device.mapper.row_index((0, 0, 15 + 6 * index))
        for index in range(victims)
    ]
    use_locker = defense == "DRAM-Locker"
    locker = None
    baseline = None
    if use_locker:
        locker = DRAMLocker(device, LockerConfig())
        locker.protect(victim_rows)
    else:
        builder = DEFENDED_HAMMER_DEFENSES.get(defense)
        if builder is None:
            raise ValueError(f"unknown defense {defense!r}")
        baseline = builder()
    controller = MemoryController(
        device, defense=baseline, locker=locker, engine=engine
    )
    driver = HammerDriver(controller, patience=patience)

    outcomes = []
    for row in victim_rows:
        outcome = driver.hammer_bit(row, victim_bit=5)
        outcomes.append(
            {
                "victim_row": outcome.victim_row,
                "flipped": outcome.flipped,
                "issued": outcome.activations_issued,
                "blocked": outcome.activations_blocked,
            }
        )
    stats = device.stats
    return {
        "defense": defense,
        "engine": engine,
        "trh": trh,
        "outcomes": outcomes,
        "protected_bits_flipped": sum(1 for o in outcomes if o["flipped"]),
        "mitigation_ns": (
            baseline.mitigation_ns_total
            if baseline is not None
            else stats.defense_ns
        ),
        "defense_actions": baseline.actions if baseline is not None else 0,
        "memory_stats": stats.as_dict(),
    }


def _run_attack(scale: Scale, seed: int, **params) -> dict:
    return run_attack_scenario(scale=_seeded(scale, seed), **params)


#: Defense cells of the serving matrix.  ``"DRAM-Locker"`` installs one
#: locker per channel; baseline names install one defense instance per
#: channel from :data:`DEFENDED_HAMMER_DEFENSES`; ``"None"`` is the
#: undefended system.
def _run_serving(
    scale: Scale,
    seed: int,
    tenants: int = 4,
    channels: int = 1,
    defense: str = "DRAM-Locker",
    colocated: bool = True,
    arrival: str = "poisson",
    slices: int = 24,
    ops_per_slice: float = 6.0,
    policy: str = "row",
    victim: str = "bits",
    arch: str = "resnet20",
    engine: str = "bulk",
    fault_channel: int = -1,
    fault_kind: str = "fail",
    fault_slice: int = 0,
    fault_stall_ns: float = 5e7,
    scaling_channels: int = 0,
    scaling_p99_target_ns: float = 1e6,
) -> dict:
    """One serving cell: multi-tenant traffic on a sharded system.

    The payload is a pure function of the parameters and ``seed`` (all
    arrival/popularity/swap-failure RNG streams are name-derived), so
    serving cells keep the matrix's worker-count invariance.  With
    ``victim="model"`` a trained quick-scale victim (shared through the
    victim cache) resides on channel 0 and its accuracy is measured
    before/after the co-located campaign.

    ``fault_channel >= 0`` injects a deterministic
    :class:`~repro.eval.faults.ChannelFault` (``fault_kind`` fail or
    stall, activating at the boundary closing ``fault_slice``); the
    payload then carries a ``"fault"`` section with the conservation
    tally.  ``scaling_channels > 0`` pre-builds that many total
    channels and lets the channel scaler spill hot (or failed-over)
    tenants onto the spares -- block policy only.
    """
    from ..serving import ScalingConfig, ServingConfig, run_serving

    protected, builder = resolve_serving_defense(defense)
    model_victim = None
    if victim == "model":
        from .experiments import build_victim

        model_victim = build_victim(arch, _seeded(scale, 0))
    elif victim != "bits":
        raise ValueError(f"unknown victim shape {victim!r}")
    config = ServingConfig(
        tenants=tenants,
        channels=channels,
        slices=slices,
        ops_per_slice=ops_per_slice,
        arrival=arrival,
        colocated=colocated,
        policy=policy,
        engine=engine,
        seed=seed,
        scaling=(
            ScalingConfig(
                max_channels=scaling_channels,
                p99_target_ns=scaling_p99_target_ns,
            )
            if scaling_channels
            else None
        ),
    )
    fault = None
    if fault_channel >= 0:
        from .faults import ChannelFault

        fault = ChannelFault(
            channel=fault_channel,
            kind=fault_kind,
            at_slice=fault_slice,
            stall_ns=fault_stall_ns,
        )
    payload = run_serving(
        config,
        protected=protected,
        defense_builder=builder,
        model_victim=model_victim,
        fault=fault,
    )
    payload["defense"] = defense
    return payload


def _run_serving_live(
    scale: Scale,
    seed: int,
    tenants: int = 4,
    channels: int = 1,
    defense: str = "DRAM-Locker",
    colocated: bool = True,
    arrival: str = "poisson",
    slices: int = 24,
    ops_per_slice: float = 6.0,
    policy: str = "row",
    engine: str = "bulk",
    verify: bool = False,
    overload: float = 1.0,
    admission: str = "none",
    p99_target_factor: float = 4.0,
    scaling_channels: int = 0,
    utilization: float = 0.7,
) -> dict:
    """One live-frontend cell: record a trace, replay it, stress it.

    The cell always records the base config's calibrated trace and
    replays it deterministically (no threads -- the matrix keeps its
    worker-count invariance).  ``verify=True`` additionally runs the
    closed loop and reports whether the replay is bit-identical
    (the replay-equivalence contract).  ``overload > 1`` re-records the
    same ops with the trace clock compressed by that factor -- the same
    work arriving N times faster -- and ``admission`` decides what
    screens it: ``"none"``, ``"pressure"`` (sojourn-p99 shedding at
    ``p99_target_factor`` x the uncompressed baseline), or ``"token"``
    (per-tenant token bucket at the base offered rate).
    ``scaling_channels`` turns on dynamic channel scaling (block policy
    only) with the same sojourn target.
    """
    from dataclasses import replace

    from ..serving import (
        AdmissionConfig,
        ScalingConfig,
        ServingConfig,
        ServingSimulation,
        record_serving_trace,
        replay_neutral,
        serve,
    )

    resolve_engine(engine)
    base_config = ServingConfig(
        tenants=tenants,
        channels=channels,
        slices=slices,
        ops_per_slice=ops_per_slice,
        arrival=arrival,
        colocated=colocated,
        policy=policy,
        engine=engine,
        seed=seed,
        defense=defense,
    )
    base_trace = record_serving_trace(base_config, utilization=utilization)
    base = serve(base_config, trace=base_trace)
    base_sojourn = base.sojourn_p99_ns()

    replay_identical = None
    if verify:
        closed = ServingSimulation(base_config).run()
        replay_identical = (
            replay_neutral(base.payload) == replay_neutral(closed)
        )

    target_ns = None
    result = base
    if overload > 1.0 or admission != "none" or scaling_channels:
        if admission == "pressure" or scaling_channels:
            if base_sojourn is None:
                raise ValueError(
                    "sojourn-based admission/scaling needs a sojourn "
                    "baseline (events-engine replays have none)"
                )
            target_ns = base_sojourn * p99_target_factor
        admission_config = None
        if admission == "pressure":
            admission_config = AdmissionConfig(p99_target_ns=target_ns)
        elif admission == "token":
            admission_config = AdmissionConfig(
                rate=ops_per_slice / base_trace.slice_duration_s
            )
        elif admission != "none":
            raise ValueError(f"unknown admission mode {admission!r}")
        scaling = (
            ScalingConfig(
                max_channels=scaling_channels, p99_target_ns=target_ns
            )
            if scaling_channels
            else None
        )
        cell_config = replace(
            base_config, admission=admission_config, scaling=scaling
        )
        trace = (
            record_serving_trace(
                base_config,
                slice_duration_s=base_trace.slice_duration_s / overload,
            )
            if overload > 1.0
            else base_trace
        )
        result = serve(cell_config, trace=trace)

    payload = result.payload
    payload["defense"] = defense
    payload["live_cell"] = {
        "overload": overload,
        "admission": admission,
        "base_sojourn_p99_ns": base_sojourn,
        "sojourn_p99_ns": result.sojourn_p99_ns(),
        "p99_target_ns": target_ns,
        "shed": result.shed_total,
        "offered": result.live["pacing"]["offered"],
        "replay_identical": replay_identical,
    }
    return payload


def _run_defense_bakeoff(
    scale: Scale,
    seed: int,
    attack: str = "bfa",
    defense: str = "None",
    channels: int = 1,
    arch: str = "resnet20",
    iterations: int = 6,
    slices: int = 12,
    ops_per_slice: float = 6.0,
    engine: str = "bulk",
    serving: bool = False,
    probe_interval: int = 4,
    quarantine_slices: int = 1,
    inject_slice: int = -1,
    inject_rows: int = 2,
    **attack_params,
) -> dict:
    """One bake-off cell: an attack-registry campaign and/or a serving
    run under one defense family (``None`` / ``DRAM-Locker`` /
    ``RADAR`` / ``DNN-Defender``).

    The **attack phase** (``attack != "none"``) runs the registered
    attack against the defended in-DRAM victim and reports the
    protection outcome plus the defense's mitigation accounting -- the
    bake-off's protection axis.  The **serving phase**
    (``serving=True``) runs a model-victim serving cell with the
    victim-health monitor riding it -- the SLA-overhead, detection
    latency, and post-recovery-accuracy axes.  ``inject_slice >= 0``
    makes it the chaos cell: deterministic weight-row corruption at
    that slice boundary, which the monitor must detect and recover.

    Both phases pin the trained victim to seed 0 (the attack matrix's
    shared-victim-cache convention); ``seed`` drives the serving
    workload RNG streams.
    """
    from ..serving import HealthConfig, ServingConfig, run_serving
    from .experiments import build_victim

    payload: dict = {
        "defense": defense,
        "attack": attack,
        "channels": channels,
        "arch": arch,
    }
    if attack != "none":
        payload["attack_phase"] = run_attack_scenario(
            scale=_seeded(scale, 0),
            attack=attack,
            arch=arch,
            defense=defense,
            iterations=iterations,
            **attack_params,
        )
    if serving:
        protected, builder = resolve_serving_defense(defense)
        health = HealthConfig(
            probe_interval=probe_interval,
            quarantine_slices=quarantine_slices,
            inject_at=(inject_slice,) if inject_slice >= 0 else (),
            inject_rows=inject_rows,
        )
        config = ServingConfig(
            channels=channels,
            slices=slices,
            ops_per_slice=ops_per_slice,
            engine=engine,
            seed=seed,
            defense=defense,
        )
        payload["serving_phase"] = run_serving(
            config,
            protected=protected,
            defense_builder=builder,
            model_victim=build_victim(arch, _seeded(scale, 0)),
            health=health,
        )
    return payload


SCENARIO_RUNNERS: dict[str, Callable[..., dict]] = {
    "attack": _run_attack,
    "fig1a": _run_fig1a,
    "fig1b": lambda scale, seed: {"rows": run_fig1b()},
    "fig5": lambda scale, seed: run_fig5(),
    "sec4d": _run_sec4d,
    "table1": lambda scale, seed: run_table1(),
    "fig7a": lambda scale, seed: run_fig7a(),
    "fig7b": lambda scale, seed: run_fig7b(),
    "fig8": _run_fig8,
    "pta": _run_pta,
    "table2": _run_table2,
    "rowclone": lambda scale, seed: run_rowclone_savings(),
    "ablation_radius": _run_radius_ablation,
    "ablation_layout": _run_layout_ablation,
    "ablation_relock": _run_relock_ablation,
    "defense_campaign": _run_defense_campaign,
    "defended_hammer": _run_defended_hammer,
    "serving": _run_serving,
    "serving_live": _run_serving_live,
    "defense_bakeoff": _run_defense_bakeoff,
}


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenario(
    scenario: Scenario, base_seed: int = 0, profile_dir: str | None = None
) -> ScenarioResult:
    """Execute one scenario in-process.  With ``profile_dir`` set, the
    runner executes under cProfile and the stats are dumped to
    ``profile_dir/profile_<name>.pstats`` (load with ``pstats.Stats``)."""
    seed = scenario.resolved_seed(base_seed)
    runner = SCENARIO_RUNNERS.get(scenario.runner)
    started = time.perf_counter()
    if runner is None:
        return ScenarioResult(
            scenario.name,
            scenario.runner,
            seed,
            0.0,
            error=f"unknown runner {scenario.runner!r}",
        )
    profiler = None
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)
        profiler = cProfile.Profile()
    # One fresh Telemetry per cell: the snapshot travels back on the
    # ScenarioResult, so merged matrix telemetry is invariant to the
    # worker count (REPRO_TELEMETRY reaches spawn workers, which do not
    # inherit the parent's obs.ACTIVE).
    telemetry = (
        obs.Telemetry()
        if obs.ACTIVE is not None or os.environ.get("REPRO_TELEMETRY")
        else None
    )

    def invoke():
        if profiler is not None:
            return profiler.runcall(
                runner, scenario.scale, seed, **scenario.kwargs()
            )
        return runner(scenario.scale, seed, **scenario.kwargs())

    try:
        if telemetry is not None:
            with obs.enabled_scope(telemetry):
                with telemetry.trace.span(
                    "cell", cell=scenario.name, runner=scenario.runner
                ):
                    payload = invoke()
        else:
            payload = invoke()
    except Exception:  # noqa: BLE001 - workers must report, not die
        return ScenarioResult(
            scenario.name,
            scenario.runner,
            seed,
            time.perf_counter() - started,
            error=traceback.format_exc(),
            telemetry=telemetry.snapshot() if telemetry is not None else None,
        )
    finally:
        if profiler is not None:
            # Run-table cell names carry "/" separators; flatten them
            # so the stats land in profile_dir itself.
            stem = scenario.name.replace("/", "_")
            profiler.dump_stats(
                os.path.join(profile_dir, f"profile_{stem}.pstats")
            )
    return ScenarioResult(
        scenario.name,
        scenario.runner,
        seed,
        time.perf_counter() - started,
        payload=payload,
        telemetry=telemetry.snapshot() if telemetry is not None else None,
    )


def _scenario_worker(
    job: tuple[int, int, Scenario, int, str | None, int, Any],
) -> ScenarioResult:
    epoch, index, scenario, base_seed, profile_dir, attempt, faults = job
    if _WORKER_EVENTS is not None:
        try:
            # Announce (dispatch epoch, cell, attempt, pid) before any
            # real work: the supervisor uses this to attribute a worker
            # death to the cell it was running.
            _WORKER_EVENTS.put((epoch, index, attempt, os.getpid()))
        except Exception:  # noqa: BLE001 - announcements are best-effort
            pass
    if faults is not None:
        faults.inject(scenario.name, attempt)
    return run_scenario(scenario, base_seed, profile_dir=profile_dir)


# ----------------------------------------------------------------------
# The persistent worker pool
# ----------------------------------------------------------------------
# One pool per process, reused across run_matrix invocations (benchmark
# recorders and the CLI run several matrices back to back; forking a
# fresh pool for each re-pays interpreter startup and page-table setup
# every time).  Under fork, workers inherit the parent's module-level
# state -- in particular the in-process victim-cache layer
# (repro.nn.cache), which is how prewarmed dataset/victim arrays ship
# to workers without being pickled into any scenario payload.  Under
# spawn (no inheritance), the same arrays ship once per pool through
# multiprocessing.shared_memory segments attached in the worker
# initializer.
_POOL_STATE: dict[str, Any] = {
    "pool": None,
    "method": None,
    "processes": 0,
    "generation": -1,
    "segments": [],
    "events": None,
}

_ATTACHED_SEGMENTS: list = []  # worker-side references, kept alive

#: Worker-side start-event queue, set by the pool initializer.
_WORKER_EVENTS: Any = None

#: Monotonic dispatch-epoch counter: one epoch per supervised matrix,
#: so stale start events from an earlier matrix on the same persistent
#: pool can never be attributed to a new in-flight cell.
_DISPATCH_EPOCHS = itertools.count()


def _shareable_generation() -> int:
    """Changes when the parent gains shareable state a live pool's
    workers have not seen (entries are content-addressed and never
    removed, so the count is a faithful change detector)."""
    from ..nn.cache import memory_cache_entries

    return len(memory_cache_entries())


def _export_shared_victims() -> tuple[list, list]:
    """Copy every in-process victim-cache entry into shared-memory
    segments; returns (manifest for the worker initializer, segments
    the parent must keep alive and eventually unlink)."""
    from multiprocessing import shared_memory

    from ..nn.cache import memory_cache_entries

    manifest = []
    segments = []
    for (directory, key), state in memory_cache_entries().items():
        for name, array in state.items():
            array = np.ascontiguousarray(array)
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes)
            )
            segment.buf[: array.nbytes] = array.tobytes()
            segments.append(segment)
            manifest.append(
                (directory, key, name, segment.name, array.shape, str(array.dtype))
            )
    return manifest, segments


def _attach_shared_victims(manifest: list, unregister: bool = True) -> None:
    """Worker initializer: rebuild the in-process victim-cache layer
    on top of the parent's shared-memory segments (zero copies).
    ``unregister=False`` is for in-process callers (tests), where the
    creating process's resource tracker still owns the segments."""
    from multiprocessing import shared_memory

    from ..nn.cache import memory_cache_put

    entries: dict[tuple[str, str], dict[str, np.ndarray]] = {}
    for directory, key, name, segment_name, shape, dtype in manifest:
        segment = shared_memory.SharedMemory(name=segment_name)
        _ATTACHED_SEGMENTS.append(segment)
        if unregister:
            try:
                # Attaching registers with the resource tracker on
                # 3.10-3.12, which would double-unlink when the parent
                # cleans up; the parent owns these segments.
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # noqa: BLE001 - tracker varies by version
                pass
        array: np.ndarray = np.ndarray(
            tuple(shape), dtype=np.dtype(dtype), buffer=segment.buf
        )
        entries.setdefault((directory, key), {})[name] = array
    for (directory, key), arrays in entries.items():
        memory_cache_put(directory, key, arrays)


def _pool_initializer(events: Any, manifest: list | None) -> None:
    """Worker initializer: install the start-event queue and, under
    spawn, attach the parent's shared-memory victim cache."""
    global _WORKER_EVENTS
    _WORKER_EVENTS = events
    if manifest is not None:
        _attach_shared_victims(manifest)


def _pool_pids(pool: Any) -> set[int]:
    """Live worker pids; empty for pool doubles without ``_pool``
    (which simply disables death detection for them)."""
    workers = getattr(pool, "_pool", None) or []
    return {proc.pid for proc in workers if proc.pid is not None}


def shutdown_worker_pool(force: bool = False) -> None:
    """Retire the persistent pool and release its shared memory.

    The healthy path (``force=False``) closes the pool and joins its
    workers, letting them exit cleanly; ``force=True`` terminates them
    -- for poisoned/hung pools and for process exit, where joining a
    wedged worker would hang forever.  Shared-memory segments are
    unlinked on both paths, including segments registered by a pool
    creation that failed partway (``pool`` is ``None`` but ``segments``
    is not empty).
    """
    pool = _POOL_STATE["pool"]
    if pool is not None:
        # A supervised matrix that lost workers leaves the crashed
        # attempts' apply_async entries in the pool's result cache;
        # close()+join() would then block forever in _handle_results
        # waiting for results no worker will ever produce.
        if getattr(pool, "_cache", None):
            force = True
        if force:
            pool.terminate()
        else:
            pool.close()
        pool.join()
    events = _POOL_STATE.get("events")
    if events is not None:
        try:
            events.close()
        except Exception:  # noqa: BLE001 - queue teardown is best-effort
            pass
    for segment in _POOL_STATE["segments"]:
        try:
            segment.close()
            segment.unlink()
        except OSError:
            pass
    _POOL_STATE.update(
        pool=None,
        method=None,
        processes=0,
        generation=-1,
        segments=[],
        events=None,
    )


atexit.register(shutdown_worker_pool, True)


def _acquire_pool(processes: int) -> tuple[Any, float]:
    """The persistent pool, (re)created as needed; returns
    ``(pool, startup_seconds)`` with startup 0.0 on reuse."""
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else "spawn"
    generation = _shareable_generation()
    state = _POOL_STATE
    if (
        state["pool"] is not None
        and state["method"] == method
        and state["processes"] == processes
        and state["generation"] == generation
    ):
        return state["pool"], 0.0
    shutdown_worker_pool(force=True)
    context = multiprocessing.get_context(method)
    started = time.perf_counter()
    # SimpleQueue, not Queue: its put() writes the pipe synchronously,
    # so a worker's start announcement is durable even when the worker
    # dies (os._exit) immediately afterwards -- Queue's feeder thread
    # would race the crash and could drop the event.
    events = context.SimpleQueue()
    if method == "fork":
        manifest: list | None = None
        segments: list = []
    else:
        manifest, segments = _export_shared_victims()
    # Segments and the event queue are registered *before* Pool() so a
    # creation failure still has them released by shutdown_worker_pool
    # instead of leaking kernel-backed shared memory.
    state.update(
        pool=None,
        method=None,
        processes=0,
        generation=-1,
        segments=segments,
        events=events,
    )
    pool = context.Pool(
        processes=processes,
        initializer=_pool_initializer,
        initargs=(events, manifest),
    )
    startup = time.perf_counter() - started
    state.update(
        pool=pool,
        method=method,
        processes=processes,
        generation=generation,
    )
    return pool, startup


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs for the supervised parallel dispatcher.

    Attributes:
        timeout_s: Per-attempt wall-clock deadline measured from
            dispatch.  A cell past its deadline is declared hung; the
            only way to reclaim a hung worker is to tear the pool down,
            so the pool is rebuilt and collateral in-flight cells are
            requeued without spending a retry.  ``None`` disables
            deadlines (a truly hung worker then blocks forever, as the
            old ``pool.map`` did).
        retries: How many *additional* attempts a cell gets after a
            counted failure (worker death, timeout, or -- with
            ``retry_errors`` -- an in-worker exception).  A cell that
            fails ``retries + 1`` times is quarantined.
        backoff_base_s: Base of the seeded exponential backoff between
            a cell's attempts; attempt ``k`` waits
            ``backoff_base_s * 2**(k-1) * (0.5 + u)`` with ``u`` drawn
            from ``derive_seed(f"retry:{name}", base_seed)``.
        poll_interval_s: Supervisor loop cadence.
        retry_errors: Also retry cells whose runner raised.  Off by
            default: a deterministic runner exception will raise again,
            and the structured error result is the useful artifact.
    """

    timeout_s: float | None = None
    retries: int = 2
    backoff_base_s: float = 0.05
    poll_interval_s: float = 0.02
    retry_errors: bool = False

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")


@dataclass
class _Flight:
    """One in-flight cell attempt."""

    handle: Any
    attempt: int
    dispatched_at: float
    deadline: float | None
    pid: int | None = None


def _supervised_map(
    scenarios: list[Scenario],
    base_seed: int,
    profile_dir: str | None,
    processes: int,
    config: SupervisorConfig,
    faults: FaultPlan | None,
    on_result: Callable[[ScenarioResult], None] | None,
) -> tuple[list[ScenarioResult], float, dict[str, list[str]]]:
    """Async dispatch with timeouts, bounded retries, and quarantine.

    Replaces the blocking ``pool.map``: cells are dispatched with
    ``apply_async`` (at most ``processes`` in flight, so per-attempt
    deadlines measured from dispatch are meaningful), worker deaths are
    attributed to the cell the worker announced via the start-event
    queue, and a persistently failing or hung cell becomes a structured
    quarantined :class:`ScenarioResult` instead of poisoning the pool.
    Returns ``(results, pool_startup_s, attempt_log)``; results keep
    scenario order regardless of completion order.
    """
    pool, startup_s = _acquire_pool(processes)
    events = _POOL_STATE.get("events")
    epoch = next(_DISPATCH_EPOCHS)
    total = len(scenarios)
    results: list[ScenarioResult | None] = [None] * total
    attempt_log: dict[str, list[str]] = {}
    failures = [0] * total
    backoff_rngs: dict[int, np.random.Generator] = {}
    pending: list[tuple[int, float]] = [(index, 0.0) for index in range(total)]
    inflight: dict[int, _Flight] = {}
    known_pids = _pool_pids(pool)
    # Every worker pid ever seen dead this matrix.  The instantaneous
    # known-vs-current diff alone loses a death that becomes visible
    # before the victim's start announcement has been drained: the pid
    # leaves the diff on the tick it is consumed, and the cell it was
    # running would sit unattributed until the timeout backstop.
    lost_pids: set[int] = set()

    def finalize(index: int, result: ScenarioResult) -> None:
        results[index] = result
        if on_result is not None:
            on_result(result)

    def counted_outcomes(index: int) -> list[str]:
        return [
            outcome
            for outcome in attempt_log.get(scenarios[index].name, [])
            if outcome != "aborted"
        ]

    def backoff_delay(index: int) -> float:
        rng = backoff_rngs.get(index)
        if rng is None:
            rng = backoff_rngs[index] = np.random.default_rng(
                derive_seed(f"retry:{scenarios[index].name}", base_seed)
            )
        exponent = max(0, failures[index] - 1)
        return config.backoff_base_s * (2**exponent) * (0.5 + rng.random())

    def quarantine(index: int, elapsed_s: float) -> None:
        scenario = scenarios[index]
        outcomes = counted_outcomes(index)
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("fleet.quarantines")
            tel.audit.emit("fleet-quarantine", cell=scenario.name)
        finalize(
            index,
            ScenarioResult(
                scenario.name,
                scenario.runner,
                scenario.resolved_seed(base_seed),
                elapsed_s,
                error=(
                    f"quarantined after {len(outcomes)} attempt(s); "
                    f"outcomes: {', '.join(outcomes)}"
                ),
                attempts=tuple(outcomes),
                quarantined=True,
            ),
        )

    def fail_or_retry(
        index: int, flight: _Flight, outcome: str, counted: bool = True
    ) -> None:
        attempt_log.setdefault(scenarios[index].name, []).append(outcome)
        if counted:
            tel = obs.ACTIVE
            if tel is not None:
                tel.metrics.inc("fleet.retries")
            failures[index] += 1
            if failures[index] > config.retries:
                quarantine(index, time.monotonic() - flight.dispatched_at)
                return
            delay = backoff_delay(index)
        else:
            delay = 0.0
        pending.append((index, time.monotonic() + delay))

    while pending or inflight:
        now = time.monotonic()
        if pending and len(inflight) < processes:
            still_pending: list[tuple[int, float]] = []
            for index, not_before in sorted(pending, key=lambda p: p[1]):
                if not_before > now or len(inflight) >= processes:
                    still_pending.append((index, not_before))
                    continue
                job = (
                    epoch,
                    index,
                    scenarios[index],
                    base_seed,
                    profile_dir,
                    failures[index],
                    faults,
                )
                handle = pool.apply_async(_scenario_worker, (job,))
                dispatched = time.monotonic()
                inflight[index] = _Flight(
                    handle,
                    failures[index],
                    dispatched,
                    (
                        dispatched + config.timeout_s
                        if config.timeout_s is not None
                        else None
                    ),
                )
            pending = still_pending
        if events is not None:
            try:
                # Single reader: empty() going momentarily stale only
                # delays an event to the next poll tick.
                while not events.empty():
                    event_epoch, index, attempt, pid = events.get()
                    flight = inflight.get(index)
                    if (
                        event_epoch == epoch
                        and flight is not None
                        and flight.attempt == attempt
                    ):
                        flight.pid = pid
                        if pid in lost_pids and not flight.handle.ready():
                            # Late announcement from a worker whose
                            # death was already observed.
                            del inflight[index]
                            fail_or_retry(index, flight, "worker-lost")
            except OSError:
                pass
        for index in list(inflight):
            flight = inflight[index]
            if not flight.handle.ready():
                continue
            del inflight[index]
            try:
                result = flight.handle.get()
            except Exception as exc:  # noqa: BLE001 - dispatch-layer failure
                fail_or_retry(
                    index, flight, f"error: {type(exc).__name__}: {exc}"
                )
                continue
            if result.error is not None and config.retry_errors:
                attempt_log.setdefault(scenarios[index].name, []).append(
                    "error"
                )
                failures[index] += 1
                if failures[index] > config.retries:
                    finalize(
                        index,
                        replace(
                            result,
                            attempts=tuple(counted_outcomes(index)),
                            quarantined=True,
                        ),
                    )
                else:
                    pending.append(
                        (index, time.monotonic() + backoff_delay(index))
                    )
                continue
            finalize(index, result)
        current_pids = _pool_pids(pool)
        dead_pids = known_pids - current_pids
        known_pids = current_pids
        if dead_pids:
            lost_pids |= dead_pids
            for index in list(inflight):
                flight = inflight[index]
                if flight.pid in lost_pids and not flight.handle.ready():
                    del inflight[index]
                    fail_or_retry(index, flight, "worker-lost")
        if config.timeout_s is not None and inflight:
            now = time.monotonic()
            hung = [
                index
                for index, flight in inflight.items()
                if flight.deadline is not None and now > flight.deadline
            ]
            if hung:
                for index in hung:
                    fail_or_retry(index, inflight.pop(index), "timeout")
                # A hung worker cannot be reclaimed individually: tear
                # the whole pool down and requeue the collateral cells
                # without charging them an attempt.
                for index in list(inflight):
                    fail_or_retry(
                        index, inflight.pop(index), "aborted", counted=False
                    )
                shutdown_worker_pool(force=True)
                pool, rebuild_s = _acquire_pool(processes)
                tel = obs.ACTIVE
                if tel is not None:
                    tel.metrics.inc("fleet.pool_rebuilds")
                startup_s += rebuild_s
                events = _POOL_STATE.get("events")
                known_pids = _pool_pids(pool)
                # The fresh pool may reuse a retired pid.
                lost_pids -= known_pids
        if pending or inflight:
            time.sleep(config.poll_interval_s)
    final = [result for result in results if result is not None]
    assert len(final) == total  # every cell finalized exactly once
    return final, startup_s, attempt_log


def attack_prewarm(
    scale: Scale | None = None, arch: str = "resnet20"
) -> Callable[[], None]:
    """A ``run_matrix(prewarm=...)`` hook that builds the attack
    matrix's shared victim in the parent, so workers inherit the
    trained arrays through fork (or shared memory under spawn)."""
    from .experiments import build_victim

    resolved = replace(scale or Scale.quick(), seed=0)

    def warm() -> None:
        build_victim(arch, resolved)

    return warm


def run_matrix(
    scenarios: Sequence[Scenario] | Iterable[Scenario],
    workers: int | None = None,
    base_seed: int = 0,
    tag: str = "matrix",
    artifact_dir: str | None = None,
    strict: bool = False,
    profile_dir: str | None = None,
    prewarm: Callable[[], None] | None = None,
    supervise: SupervisorConfig | None = None,
    faults: FaultPlan | None = None,
    on_result: Callable[[ScenarioResult], None] | None = None,
) -> MatrixResult:
    """Run a scenario matrix, optionally in parallel, and collect one
    :class:`MatrixResult`.

    ``workers=None`` picks ``min(len(scenarios), cpu_count)``;
    ``workers<=1`` runs serially in-process (no subprocesses, handy for
    tests and for composing with an outer parallel harness).  Results
    are returned in scenario order regardless of completion order, and
    the ``results`` payloads are independent of the worker count.

    Parallel matrices share one persistent worker pool per process;
    the artifact's ``timing.pool_startup_s`` records what creating (or
    reusing, 0.0) it cost.  ``prewarm`` runs in the parent before the
    pool is acquired -- state it loads into module-level caches (the
    trained-victim memory layer) reaches workers by fork inheritance
    or, under spawn, via ``multiprocessing.shared_memory`` -- and its
    cost is recorded as ``timing.prewarm_s``.

    ``profile_dir`` forwards to :func:`run_scenario`: every scenario
    dumps ``profile_<name>.pstats`` cProfile stats there.

    ``strict=True`` raises :class:`MatrixFailure` after the artifact is
    written when any scenario errored -- for callers (benchmark
    recorders, CI steps) where a half-failed matrix must not pass
    silently as a recorded artifact.

    The parallel path is supervised (see :class:`SupervisorConfig`):
    per-attempt timeouts, bounded seeded-backoff retries, and
    quarantine of persistently failing cells -- one dead or hung
    worker costs that cell its attempt, not the whole matrix.
    ``faults`` injects a deterministic :class:`~repro.eval.faults.FaultPlan`
    into workers (ignored on the serial path: a crash fault would take
    the parent down).  ``on_result`` is called in the parent with every
    finalized :class:`ScenarioResult` as it completes -- the checkpoint
    hook run-tables journal through.
    """
    scenarios = list(scenarios)
    names = [scenario.name for scenario in scenarios]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scenario names in matrix: {names}")
    if workers is None:
        workers = max(1, min(len(scenarios), os.cpu_count() or 1))
    logger.info(
        "matrix tag=%s scenarios=%d workers=%d", tag, len(scenarios), workers
    )
    started = time.perf_counter()
    prewarm_s = 0.0
    if prewarm is not None:
        prewarm_started = time.perf_counter()
        prewarm()
        prewarm_s = time.perf_counter() - prewarm_started
    pool_startup_s = 0.0
    attempt_log: dict[str, list[str]] = {}
    if workers <= 1 or len(scenarios) <= 1:
        workers = 1
        results = []
        for scenario in scenarios:
            result = run_scenario(scenario, base_seed, profile_dir=profile_dir)
            if on_result is not None:
                on_result(result)
            results.append(result)
    else:
        try:
            results, pool_startup_s, attempt_log = _supervised_map(
                scenarios,
                base_seed,
                profile_dir,
                workers,
                supervise or SupervisorConfig(),
                faults,
                on_result,
            )
        except BaseException:
            # A poisoned dispatch layer (unpicklable job, broken pool
            # double) is unrecoverable here; drop the pool so the next
            # matrix starts fresh instead of reusing a broken one.
            shutdown_worker_pool(force=True)
            raise
    matrix = MatrixResult(
        tag=tag,
        base_seed=base_seed,
        workers=workers,
        wall_clock_s=time.perf_counter() - started,
        results=results,
        scenarios=scenarios,
        pool_startup_s=pool_startup_s,
        prewarm_s=prewarm_s,
        attempt_log=attempt_log,
    )
    logger.info(
        "matrix tag=%s done wall_clock_s=%.2f failures=%d",
        tag, matrix.wall_clock_s, len(matrix.failures),
    )
    if artifact_dir is not None:
        matrix.write_artifact(artifact_dir)
    if strict and matrix.failures:
        raise MatrixFailure(matrix.failures)
    return matrix


# ----------------------------------------------------------------------
# Canned scenario sets
# ----------------------------------------------------------------------
def cheap_scenarios(scale: Scale | None = None) -> list[Scenario]:
    """Everything that runs without training a victim model."""
    scale = scale or Scale.quick()
    return [
        Scenario("fig1b-trh", "fig1b", scale),
        Scenario("fig5-isa", "fig5", scale),
        Scenario("sec4d-montecarlo", "sec4d", scale, seed=0,
                 params=(("trials", 4000),)),
        Scenario("table1-overhead", "table1", scale),
        Scenario("fig7a-latency", "fig7a", scale),
        Scenario("fig7b-defense-days", "fig7b", scale),
        Scenario("rowclone-savings", "rowclone", scale),
        Scenario("ablation-radius", "ablation_radius", scale),
        Scenario("ablation-layout", "ablation_layout", scale),
        Scenario("ablation-relock", "ablation_relock", scale, seed=0),
    ]


def smoke_scenarios(scale: Scale | None = None) -> list[Scenario]:
    """The CI smoke matrix: every cheap scenario plus one trained-victim
    end-to-end (Fig. 8, ResNet-20) and the defense-campaign sweep."""
    scale = scale or Scale.quick()
    defenses = ("None", "PARA", "Graphene", "DRAM-Locker")
    return (
        cheap_scenarios(scale)
        + [
            Scenario(
                f"campaign-{name}", "defense_campaign", scale, seed=0,
                params=(("defense", name),),
            )
            for name in defenses
        ]
        + [
            Scenario("fig8-resnet20", "fig8", scale, seed=0,
                     params=(("arch", "resnet20"),)),
        ]
    )


def quick_scenarios(scale: Scale | None = None) -> list[Scenario]:
    """The full quick-scale reproduction matrix (all trained victims)."""
    scale = scale or Scale.quick()
    return smoke_scenarios(scale) + [
        Scenario("fig8-vgg11", "fig8", scale, seed=0,
                 params=(("arch", "vgg11"),)),
        Scenario("fig1a-bfa-vs-random", "fig1a", scale, seed=0),
        Scenario("pta-page-table", "pta", scale, seed=0),
        Scenario("table2-software-defenses", "table2", scale, seed=0,
                 params=(("flip_budget", 30),)),
    ]


#: Attack-specific parameter overrides for the canned attack matrix.
#: ``iterations`` keeps one flip-budget across families so the matrix
#: compares like with like; targeted attacks aim class 1 -> 0.
_ATTACK_MATRIX_PARAMS: dict[str, tuple[tuple[str, Any], ...]] = {
    "bfa": (),
    "random": (),
    "pta": (("iterations", 6),),
    "tbfa-n-to-1": (("target_class", 0),),
    "tbfa-1-to-1": (("target_class", 0), ("source_class", 1)),
    "tbfa-stealthy": (("target_class", 0), ("source_class", 1)),
    "backdoor": (("target_class", 0),),
    "multi-round-bfa": (("rounds", 3),),
}


def attack_scenarios(
    scale: Scale | None = None,
    arch: str = "resnet20",
    iterations: int = 10,
    attacks: Sequence[str] | None = None,
) -> list[Scenario]:
    """Every registered attack, with and without DRAM-Locker.

    All scenarios pin ``seed=0`` so they share one trained victim --
    the matrix is the showcase (and the benchmark) for the
    trained-victim cache: N attack cells, one training run.
    """
    scale = scale or Scale.quick()
    names = list(attacks) if attacks is not None else available_attacks()
    scenarios = []
    for name in names:
        extra = _ATTACK_MATRIX_PARAMS.get(name, ())
        if not any(key == "iterations" for key, _ in extra):
            extra = (("iterations", iterations),) + extra
        for protected in (False, True):
            suffix = "locked" if protected else "open"
            scenarios.append(
                Scenario(
                    f"attack-{name}-{suffix}",
                    "attack",
                    scale,
                    seed=0,
                    params=(
                        ("attack", name),
                        ("arch", arch),
                        ("protected", protected),
                    )
                    + extra,
                )
            )
    return scenarios


def serving_scenarios(scale: Scale | None = None) -> list[Scenario]:
    """The serving matrix: tenants x defense x colocation x channels.

    Every cell is training-free (bit victims) and seconds-scale; the
    channel sweep under each defense is what ``bench_serving.py``
    times, and the colocation/tenant sweeps probe the SLA story
    (blocked share, exposure windows, tail latency under attack).
    """
    scale = scale or Scale.quick()

    def cell(name: str, **params) -> Scenario:
        return Scenario(
            name, "serving", scale,
            params=tuple(sorted(params.items())),
        )

    scenarios = [
        # Channel scaling under the two headline defenses, attacker on.
        cell(f"serving-{defense.lower().replace('/', '-')}-ch{channels}",
             defense=defense, channels=channels)
        for defense in ("None", "DRAM-Locker")
        for channels in (1, 2, 4)
    ]
    scenarios += [
        # Baseline-defense contenders at two channels.
        cell("serving-trr-ch2", defense="TRR", channels=2),
        cell("serving-graphene-ch2", defense="Graphene", channels=2),
        # Attacker-colocation off: the pure multi-tenant SLA baseline.
        cell("serving-locker-solo-ch1", defense="DRAM-Locker",
             channels=1, colocated=False),
        cell("serving-locker-solo-ch4", defense="DRAM-Locker",
             channels=4, colocated=False),
        # Tenant-count sweep (Zipf contention) and a bursty arrival cell.
        cell("serving-locker-tenants2-ch2", defense="DRAM-Locker",
             channels=2, tenants=2),
        cell("serving-locker-tenants8-ch2", defense="DRAM-Locker",
             channels=2, tenants=8),
        cell("serving-locker-bursty-ch2", defense="DRAM-Locker",
             channels=2, arrival="bursty"),
        # Event-driven fast-forward engine: payloads must match the
        # bulk cells above bit-for-bit (tests/test_engine_equivalence.py
        # pins the contract; these cells keep it exercised nightly).
        cell("serving-locker-events-ch4", defense="DRAM-Locker",
             channels=4, engine="events"),
        cell("serving-none-events-ch4", defense="None",
             channels=4, engine="events"),
    ]
    return scenarios


def serving_live_scenarios(scale: Scale | None = None) -> list[Scenario]:
    """The live-frontend matrix: replay equivalence plus overload.

    Two equivalence cells pin replay == closed loop under both
    execution engines; the overload triplet compresses arrivals 2x on
    a solo cell and compares no admission vs pressure shedding vs a
    token bucket; the last two put the attacker back (admitted cell)
    and exercise dynamic channel scaling under block policy.
    ``benchmarks/bench_serving_live.py`` records the same story with
    wall-clock pacing on top.
    """
    scale = scale or Scale.quick()

    def cell(name: str, **params) -> Scenario:
        return Scenario(
            name, "serving_live", scale,
            params=tuple(sorted(params.items())),
        )

    return [
        cell("live-replay-equiv-ch2", channels=2, verify=True),
        cell("live-replay-equiv-events-ch2", channels=2,
             engine="events", verify=True),
        cell("live-overload2x-open", colocated=False, overload=2.0),
        cell("live-overload2x-pressure", colocated=False, overload=2.0,
             admission="pressure"),
        cell("live-overload2x-token", colocated=False, overload=2.0,
             admission="token"),
        cell("live-colocated-admitted-ch2", channels=2, overload=2.0,
             admission="pressure"),
        cell("live-scaling-block", colocated=False, overload=2.0,
             policy="block", scaling_channels=2),
    ]


#: The bake-off's defense contenders (prevention vs detect-and-recover).
BAKEOFF_DEFENSES = ("None", "DRAM-Locker", "RADAR", "DNN-Defender")


def bakeoff_scenarios(scale: Scale | None = None) -> list[Scenario]:
    """The defense bake-off: attack registry x defense family, plus
    serving-overhead cells and the chaos cell.

    Three blocks.  (1) Every registered attack against every contender
    -- the protection axis, one shared cached victim.  (2) Serving
    cells (model victim + health monitor, no injection) per defense
    across a channel sweep -- the SLA-overhead axis.  (3) The chaos
    cell: RADAR with deterministic weight corruption injected mid-run,
    which must be detected (100 %) and recovered to near-clean
    accuracy -- ``benchmarks/bench_bakeoff.py`` gates exactly that.
    """
    scale = scale or Scale.quick()

    def slug(defense: str) -> str:
        return defense.lower().replace("/", "-")

    def cell(name: str, **params) -> Scenario:
        return Scenario(
            name, "defense_bakeoff", scale, seed=0,
            params=tuple(sorted(params.items())),
        )

    scenarios = [
        cell(
            f"bakeoff-{attack}-{slug(defense)}",
            attack=attack, defense=defense,
            **dict(_ATTACK_MATRIX_PARAMS.get(attack, ())),
        )
        for attack in available_attacks()
        for defense in BAKEOFF_DEFENSES
    ]
    scenarios += [
        cell(
            f"bakeoff-serving-{slug(defense)}-ch{channels}",
            attack="none", defense=defense, channels=channels,
            serving=True,
        )
        for defense in BAKEOFF_DEFENSES
        for channels in (1, 2)
    ]
    scenarios.append(
        cell(
            "bakeoff-chaos-radar",
            attack="none", defense="RADAR", serving=True,
            inject_slice=6, inject_rows=2,
        )
    )
    return scenarios


_SCENARIO_SETS = {
    "cheap": cheap_scenarios,
    "smoke": smoke_scenarios,
    "quick": quick_scenarios,
    "attacks": attack_scenarios,
    "serving": serving_scenarios,
    "serving-live": serving_live_scenarios,
    "bakeoff": bakeoff_scenarios,
}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.eval.harness")
    parser.add_argument(
        "--set", dest="scenario_set", default="smoke",
        choices=sorted(_SCENARIO_SETS),
        help="which canned scenario matrix to run",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--tag", default=None)
    parser.add_argument("--out", default=None, help="artifact directory")
    parser.add_argument(
        "--full", action="store_true", help="near-paper scale"
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="dump per-scenario cProfile stats (profile_<name>.pstats) "
             "into the artifact directory (requires --out)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)
    if args.profile and args.out is None:
        parser.error("--profile requires --out (the stats land there)")

    scale = Scale.full() if args.full else Scale.quick()
    scenarios = _SCENARIO_SETS[args.scenario_set](scale)
    if args.list:
        for scenario in scenarios:
            print(
                f"{scenario.name:32s} runner={scenario.runner:18s} "
                f"seed={scenario.resolved_seed(args.base_seed)}"
            )
        return 0

    tag = args.tag or args.scenario_set
    # The attack matrix shares one trained victim across every cell:
    # building it in the parent ships the arrays to workers instead of
    # having the first worker per process rebuild it.
    prewarm = (
        attack_prewarm(scale) if args.scenario_set == "attacks" else None
    )
    matrix = run_matrix(
        scenarios,
        workers=args.workers,
        base_seed=args.base_seed,
        tag=tag,
        artifact_dir=args.out,
        profile_dir=args.out if args.profile else None,
        prewarm=prewarm,
    )
    for result in matrix.results:
        status = "ok" if result.ok else "FAILED"
        print(f"{result.name:32s} {status:7s} {result.wall_clock_s:8.2f}s")
    print(
        f"total {matrix.wall_clock_s:.2f}s across {matrix.workers} worker(s)"
        f" (pool startup {matrix.pool_startup_s:.2f}s,"
        f" prewarm {matrix.prewarm_s:.2f}s)"
    )
    if matrix.artifact_path:
        print(f"artifact: {matrix.artifact_path}")
    if matrix.failures:
        for failure in matrix.failures:
            print(f"\n--- {failure.name} ---\n{failure.error}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
