"""Experiment runners: one function per table/figure of the paper.

Every runner returns plain data (dicts/lists) that the benchmark
harness prints; nothing here depends on pytest.  ``Scale`` bundles the
knobs that trade fidelity for runtime -- ``Scale.quick()`` is used by
the benchmark suite, ``Scale.full()`` approaches the paper's settings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks import AttackContext, run_attack
from ..attacks.bfa import BFAConfig, ProgressiveBitSearch
from ..attacks.hammer import HammerDriver
from ..attacks.pta import PageTableAttack, build_paged_weights
from ..attacks.random_attack import RandomAttack
from ..circuits.montecarlo import MonteCarlo, PAPER_ERROR_RATES
from ..controller.controller import MemoryController
from ..defenses.overhead import format_table1, table1_reports
from ..dram.config import DRAMConfig
from ..dram.device import DRAMDevice
from ..dram.timing import trh_table
from ..dram.vulnerability import VulnerabilityMap
from ..isa import Opcode, assemble, disassemble, swap_program
from ..locker.locker import DRAMLocker, LockerConfig
from ..locker.planner import LockMode, plan_protection
from ..nn.cache import VictimCache, cached_train
from ..nn.data import Dataset, synthetic_cifar10, synthetic_cifar100
from ..nn.hardening import TABLE2_BUILDERS, HardenedModel
from ..nn.models import resnet20, vgg11
from ..nn.quant import QuantizedModel
from ..nn.storage import WeightStore
from ..nn.train import TrainConfig
from ..serving.workload import GuardRowTenant
from .security import LockerSecurityModel, ShadowSecurityModel

__all__ = [
    "Scale",
    "ProtectedSystem",
    "build_victim",
    "build_system",
    "run_fig1a",
    "run_fig1b",
    "run_fig5",
    "run_sec4d_montecarlo",
    "run_table1",
    "run_fig7a",
    "run_fig7b",
    "run_fig8",
    "run_pta",
    "run_table2",
    "run_attack_scenario",
    "run_rowclone_savings",
    "run_radius_ablation",
    "run_layout_ablation",
    "run_relock_ablation",
]

#: The paper's Fig. 7/8 worst case and the +/-20 % swap failure rate.
WORST_CASE_TRH = 1000
SWAP_FAILURE_RATE = PAPER_ERROR_RATES[20]  # 0.096


@dataclass(frozen=True)
class Scale:
    """Runtime/fidelity knobs shared by the experiment runners."""

    input_hw: int = 16
    resnet_width: int = 8
    vgg_width: int = 16
    epochs: int = 4
    attack_iterations: int = 40
    attack_batch: int = 64
    seed: int = 0

    @staticmethod
    def quick() -> "Scale":
        """Benchmark-suite settings (seconds per experiment)."""
        return Scale(
            input_hw=16,
            resnet_width=8,
            vgg_width=16,
            epochs=4,
            attack_iterations=25,
            attack_batch=48,
        )

    @staticmethod
    def full() -> "Scale":
        """Near-paper settings (minutes per experiment)."""
        return Scale(
            input_hw=32,
            resnet_width=16,
            vgg_width=32,
            epochs=8,
            attack_iterations=100,
            attack_batch=128,
        )


# ----------------------------------------------------------------------
# Victim construction
# ----------------------------------------------------------------------
def build_victim(
    arch: str, scale: Scale, cache: VictimCache | None = None
) -> tuple[Dataset, QuantizedModel]:
    """Train the paper's (architecture, dataset) pairing and quantize it.

    Training goes through the content-addressed victim cache (keyed by
    initial weights, dataset content, and train config), so the
    defense x attack matrix trains each victim once; a hit restores
    bit-identical weights.  Pass ``VictimCache.disabled()`` to force a
    fresh train, or set ``REPRO_VICTIM_CACHE=off`` in the environment.
    """
    if arch == "resnet20":
        dataset = synthetic_cifar10(hw=scale.input_hw, seed=scale.seed)
        model = resnet20(
            num_classes=10,
            width=scale.resnet_width,
            input_hw=scale.input_hw,
            seed=scale.seed,
        )
    elif arch == "vgg11":
        dataset = synthetic_cifar100(hw=scale.input_hw, seed=scale.seed + 1)
        model = vgg11(
            num_classes=100,
            width=scale.vgg_width,
            input_hw=scale.input_hw,
            seed=scale.seed,
        )
    else:
        raise ValueError(f"unknown architecture {arch!r}")
    cached_train(
        model,
        dataset,
        TrainConfig(epochs=scale.epochs, seed=scale.seed),
        cache=cache,
        arch=arch,
    )
    return dataset, QuantizedModel(model)


# ----------------------------------------------------------------------
# System construction
# ----------------------------------------------------------------------
@dataclass
class ProtectedSystem:
    """A victim model resident in simulated DRAM, optionally locked."""

    device: DRAMDevice
    controller: MemoryController
    store: WeightStore
    driver: HammerDriver
    locker: DRAMLocker | None
    defense: object | None = None


def build_system(
    qmodel: QuantizedModel,
    protected: bool,
    trh: int = WORST_CASE_TRH,
    swap_failure_rate: float = SWAP_FAILURE_RATE,
    seed: int = 0,
    defense_builder=None,
) -> ProtectedSystem:
    """Place the model's weights in DRAM, with or without DRAM-Locker.

    ``swap_failure_rate`` is the whole-SWAP failure probability the
    paper charges (9.6 % at the +/-20 % corner); the per-RowClone rate
    is derived so three copies compose to it.  ``defense_builder``
    installs a baseline/detect-and-recover defense instance on the
    controller instead of (or alongside) the locker; defenses exposing
    the victim-load hooks (``bind_store`` / ``prioritize``) are bound
    to the weight store, mirroring the serving engine's model-victim
    attach.
    """
    config = DRAMConfig.small()
    vulnerability = VulnerabilityMap(config, seed=seed, weak_cell_fraction=5e-5)
    device = DRAMDevice(config, vulnerability=vulnerability, trh=trh)
    locker = None
    if protected:
        per_copy = 1.0 - (1.0 - swap_failure_rate) ** (1.0 / 3.0)
        locker = DRAMLocker(
            device,
            LockerConfig(
                copy_error_rate=per_copy,
                relock_interval=2 * trh + 10,
                seed=seed,
            ),
        )
    defense = defense_builder() if defense_builder is not None else None
    controller = MemoryController(device, defense=defense, locker=locker)
    store = WeightStore(device, qmodel, guard_rows=True)
    if locker is not None:
        plan = locker.protect(store.data_rows, mode=LockMode.ADJACENT)
        assert plan.is_complete, "guard-row layout should have no holes"
    if defense is not None:
        if hasattr(defense, "bind_store"):
            defense.bind_store(store)
        if hasattr(defense, "prioritize"):
            defense.prioritize(store.data_rows)
        # Syncs/write-backs must follow the defense's row translation
        # (a permuting defense relocates threatened weight rows).
        store.row_source = defense.translate
    driver = HammerDriver(controller, patience=2.0)
    return ProtectedSystem(device, controller, store, driver, locker, defense)


def _background_tenant_hook(system: ProtectedSystem, seed: int = 1) -> GuardRowTenant:
    """Multi-tenant traffic: one privileged access to a guard row
    adjacent to the attacker's target, right before each campaign.

    This is DRAM-Locker's only failure surface: the access forces an
    unlock-SWAP whose (process-variation) failure opens the exposure
    window the attacker needs.  The stream itself is the serving
    subsystem's shared :class:`~repro.serving.GuardRowTenant`
    (draw-for-draw identical to the closure this used to build); this
    wrapper just binds it to a :class:`ProtectedSystem`.
    """
    return GuardRowTenant(system.store, system.controller, seed=seed)


# ----------------------------------------------------------------------
# Fig. 1(a): BFA vs random flips (software attack on VGG-11)
# ----------------------------------------------------------------------
def run_fig1a(scale: Scale | None = None) -> dict:
    scale = scale or Scale.quick()
    dataset, qmodel = build_victim("vgg11", scale)
    clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
    config = BFAConfig(attack_batch=scale.attack_batch, seed=scale.seed)

    snapshot = qmodel.snapshot()
    bfa = ProgressiveBitSearch(qmodel, dataset, config).run(
        scale.attack_iterations
    )
    qmodel.restore(snapshot)
    random = RandomAttack(qmodel, dataset, seed=scale.seed).run(
        scale.attack_iterations
    )
    qmodel.restore(snapshot)
    return {
        "clean_accuracy": clean,
        "chance_accuracy": 100.0 / dataset.num_classes,
        "bfa": bfa.accuracies,
        "random": random.accuracies,
    }


# ----------------------------------------------------------------------
# Fig. 1(b): TRH by DRAM generation
# ----------------------------------------------------------------------
def run_fig1b() -> list[tuple[str, str]]:
    return trh_table()


# ----------------------------------------------------------------------
# Fig. 5: the ISA
# ----------------------------------------------------------------------
def run_fig5() -> dict:
    program = swap_program()
    listing = disassemble(program)
    reassembled = assemble(listing)
    return {
        "swap_program_words": [f"{word:#06x}" for word in program],
        "swap_program_listing": listing,
        "round_trip_ok": reassembled == program,
        "opcodes": {op.name: f"{op.value:02b}" for op in Opcode},
    }


# ----------------------------------------------------------------------
# Section IV-D: Monte-Carlo swap-error sweep
# ----------------------------------------------------------------------
def run_sec4d_montecarlo(trials: int = 10_000) -> list[dict]:
    sweep = MonteCarlo(trials=trials).sweep((0, 5, 10, 15, 20))
    rows = []
    for result in sweep:
        paper = PAPER_ERROR_RATES.get(int(result.variation_pct))
        rows.append(
            {
                "variation_pct": result.variation_pct,
                "trials": result.trials,
                "failures": result.failures,
                "error_rate": result.error_rate,
                "paper_error_rate": paper,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table I: overhead comparison
# ----------------------------------------------------------------------
def run_table1() -> dict:
    config = DRAMConfig.ddr4_32gb()
    return {
        "config": config.describe(),
        "reports": table1_reports(config),
        "text": format_table1(config),
    }


# ----------------------------------------------------------------------
# Fig. 7(a): latency per Tref vs number of BFA attempts
# ----------------------------------------------------------------------
def run_fig7a(
    attack_counts: tuple[int, ...] = (0, 10_000, 20_000, 40_000, 60_000, 80_000),
) -> dict:
    shadow_thresholds = (1000, 2000, 4000, 8000)
    series: dict[str, list[float]] = {}
    for threshold in shadow_thresholds:
        model = ShadowSecurityModel(threshold=threshold)
        series[f"SHADOW{threshold}"] = [
            model.latency_per_tref_s(n) for n in attack_counts
        ]
    locker = LockerSecurityModel(trh=WORST_CASE_TRH)
    series["DL"] = [locker.latency_per_tref_s(n) for n in attack_counts]
    return {"attack_counts": list(attack_counts), "series": series}


# ----------------------------------------------------------------------
# Fig. 7(b): defense time in days
# ----------------------------------------------------------------------
def run_fig7b() -> dict:
    thresholds = (1000, 2000, 4000, 8000)
    shadow_days = {
        f"{t // 1000}K": ShadowSecurityModel(threshold=t).defense_days
        for t in thresholds
    }
    locker = LockerSecurityModel(trh=WORST_CASE_TRH, copy_error_rate=0.10)
    return {
        "shadow_days": shadow_days,
        "locker_days": locker.defense_days,
        "locker_exceeds_plot": locker.defense_days > 4000,
    }


# ----------------------------------------------------------------------
# Fig. 8: BFA against the full system, with and without DRAM-Locker
# ----------------------------------------------------------------------
def run_fig8(arch: str = "resnet20", scale: Scale | None = None) -> dict:
    scale = scale or Scale.quick()
    dataset, qmodel = build_victim(arch, scale)
    clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
    snapshot = qmodel.snapshot()
    config = BFAConfig(attack_batch=scale.attack_batch, seed=scale.seed)
    curves: dict[str, list[float]] = {}
    stats: dict[str, dict] = {}

    for protected in (False, True):
        qmodel.restore(snapshot)
        system = build_system(qmodel, protected=protected, seed=scale.seed)
        hook = _background_tenant_hook(system) if protected else None
        attack = ProgressiveBitSearch(
            qmodel,
            dataset,
            config,
            store=system.store,
            driver=system.driver,
            before_execute=hook,
        )
        result = attack.run(scale.attack_iterations)
        label = "with DRAM-Locker" if protected else "without DRAM-Locker"
        curves[label] = result.accuracies
        stats[label] = {
            "executed_flips": result.executed_flips,
            "iterations": len(result.accuracies),
            "blocked_activations": sum(
                flip.activations_blocked for flip in result.flips
            ),
            "final_accuracy": result.accuracies[-1] if result.accuracies else clean,
        }
    qmodel.restore(snapshot)
    return {
        "arch": arch,
        "clean_accuracy": clean,
        "chance_accuracy": 100.0 / dataset.num_classes,
        "curves": curves,
        "stats": stats,
    }


# ----------------------------------------------------------------------
# PTA: page-table attack, with and without DRAM-Locker
# ----------------------------------------------------------------------
def run_pta(scale: Scale | None = None) -> dict:
    scale = scale or Scale.quick()
    dataset, qmodel = build_victim("resnet20", scale)
    clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
    snapshot = qmodel.snapshot()
    curves: dict[str, list[float]] = {}
    stats: dict[str, dict] = {}
    iterations = max(6, scale.attack_iterations // 4)

    for protected in (False, True):
        qmodel.restore(snapshot)
        system = build_system(qmodel, protected=protected, seed=scale.seed)
        paged = build_paged_weights(
            system.store, system.controller, locker=system.locker
        )
        attack = PageTableAttack(
            qmodel, dataset, paged, system.driver, seed=scale.seed
        )
        result = attack.run(iterations)
        label = "with DRAM-Locker" if protected else "without DRAM-Locker"
        curves[label] = result.accuracies
        stats[label] = {
            "executed_redirects": result.executed_redirects,
            "redirected_pages": len(paged.redirected_pages()),
            "final_accuracy": result.accuracies[-1] if result.accuracies else clean,
        }
    qmodel.restore(snapshot)
    return {
        "clean_accuracy": clean,
        "chance_accuracy": 100.0 / dataset.num_classes,
        "curves": curves,
        "stats": stats,
    }


# ----------------------------------------------------------------------
# Registry-driven attack scenarios (the attack x defense matrix)
# ----------------------------------------------------------------------
def run_attack_scenario(
    scale: Scale | None = None,
    attack: str = "bfa",
    arch: str = "resnet20",
    protected: bool = True,
    in_dram: bool = True,
    iterations: int | None = None,
    defense: str | None = None,
    **attack_params,
) -> dict:
    """One cell of the attack x defense matrix, dispatched by name.

    Any attack registered with :func:`repro.attacks.register_attack`
    runs here: the victim comes out of the trained-victim cache, lands
    in simulated DRAM (unless ``in_dram=False``, the pure software
    ablation), optionally behind DRAM-Locker, and the attack executes
    through the registry's uniform ``run_attack`` entry point.

    ``defense`` selects the whole defense family by serving name
    (``"None"`` / ``"DRAM-Locker"`` / any
    :data:`~repro.defenses.builders.DEFENDED_HAMMER_DEFENSES` entry,
    e.g. ``"RADAR"`` or ``"DNN-Defender"``), overriding ``protected``;
    the payload then carries a ``"defense"`` section with the instance's
    mitigation accounting -- the bake-off's protection axis.
    """
    scale = scale or Scale.quick()
    defense_builder = None
    if defense is not None:
        from ..defenses.builders import resolve_serving_defense

        protected, defense_builder = resolve_serving_defense(defense)
        if not in_dram:
            raise ValueError("defense= requires in_dram=True")
    dataset, qmodel = build_victim(arch, scale)
    clean = qmodel.model.accuracy(dataset.test_x, dataset.test_y)
    snapshot = qmodel.snapshot()
    ctx = AttackContext(
        qmodel,
        dataset,
        seed=scale.seed,
        attack_batch=scale.attack_batch,
    )
    system = None
    if in_dram:
        system = build_system(
            qmodel,
            protected=protected,
            seed=scale.seed,
            defense_builder=defense_builder,
        )
        ctx.store = system.store
        ctx.driver = system.driver
        if protected:
            ctx.before_execute = _background_tenant_hook(system)
    elif protected:
        raise ValueError("protected=True requires in_dram=True")
    outcome = run_attack(
        attack, ctx, iterations or scale.attack_iterations, **attack_params
    )
    qmodel.restore(snapshot)
    payload = {
        "arch": arch,
        "protected": protected,
        "in_dram": in_dram,
        "clean_accuracy": clean,
        "chance_accuracy": 100.0 / dataset.num_classes,
        **outcome,
    }
    if defense is not None:
        payload["defense"] = _defense_section(defense, system)
    return payload


def _defense_section(name: str, system: ProtectedSystem | None) -> dict:
    """The bake-off's protection accounting for one attack cell."""
    section: dict = {"name": name}
    instance = system.defense if system is not None else None
    if instance is not None:
        section.update(
            mitigation_ns=instance.mitigation_ns_total,
            actions=instance.actions,
        )
        for attr in (
            "corruptions_detected",
            "rows_restored",
            "rows_zeroed",
            "scrubs",
            "read_checks",
            "swaps_performed",
        ):
            if hasattr(instance, attr):
                section[attr] = getattr(instance, attr)
    if system is not None and system.locker is not None:
        section["locker"] = system.locker.exposure_summary()
    return section


# ----------------------------------------------------------------------
# Table II: software-defense comparison
# ----------------------------------------------------------------------
def run_table2(
    scale: Scale | None = None,
    flip_budget: int = 60,
    broken_accuracy: float = 20.0,
) -> dict:
    """Attack every hardened model until it breaks or the budget ends.

    ``broken_accuracy``: the attack stops once accuracy falls to this
    level (the paper's ~10 % on CIFAR-10 scaled to the synthetic task's
    chance level plus margin).
    """
    scale = scale or Scale.quick()
    dataset = synthetic_cifar10(hw=scale.input_hw, seed=scale.seed)
    train_config = TrainConfig(epochs=scale.epochs, seed=scale.seed)
    rows: list[dict] = []
    baseline_clean = None

    for label, builder in TABLE2_BUILDERS.items():
        hardened: HardenedModel = builder(
            dataset, config=train_config, width=scale.resnet_width
        )
        if label == "Baseline ResNet-20":
            baseline_clean = hardened.clean_accuracy
        qmodel = QuantizedModel(hardened.model)
        attack = ProgressiveBitSearch(
            qmodel,
            dataset,
            BFAConfig(attack_batch=scale.attack_batch, seed=scale.seed),
            repair=hardened.repair,
        )
        result = attack.run(flip_budget, stop_at_accuracy=broken_accuracy)
        reached = result.iterations_to_reach(broken_accuracy)
        rows.append(
            {
                "model": label,
                "clean_accuracy": hardened.clean_accuracy,
                "post_attack_accuracy": result.accuracies[-1],
                "bit_flips": reached if reached is not None else f">{flip_budget}",
                "broken": reached is not None,
            }
        )

    # DRAM-Locker's row: the guard-row system blocks the attack outright,
    # so clean accuracy is preserved at the paper's 1 150-flip budget.
    rows.append(
        {
            "model": "DRAM-Locker",
            "clean_accuracy": baseline_clean,
            "post_attack_accuracy": baseline_clean,
            "bit_flips": 1150,
            "broken": False,
        }
    )
    return {"dataset": dataset.name, "rows": rows, "chance": 10.0}


# ----------------------------------------------------------------------
# Ablations of DRAM-Locker's design choices (DESIGN.md section 6)
# ----------------------------------------------------------------------
def _ablation_device(
    trh: int = 100, half_double: float | None = None
) -> DRAMDevice:
    config = DRAMConfig.small()
    return DRAMDevice(
        config,
        vulnerability=VulnerabilityMap(config, weak_cell_fraction=0.0),
        trh=trh,
        half_double_factor=half_double,
    )


def _half_double_attack(device, controller, victim: int, bit: int) -> bool:
    """Hammer at distance 2 (Half-Double) until the bit flips or the
    budget runs out."""
    device.vulnerability.register_template(victim, [bit])
    aggressors = [
        row
        for row in device.mapper.neighbors(victim, radius=2)
        if row not in device.mapper.neighbors(victim, radius=1)
    ]
    budget = device.timing.trh * 6
    for _ in range(budget // max(1, len(aggressors))):
        for aggressor in aggressors:
            controller.hammer(aggressor)
            byte = device.peek_bytes(victim, bit // 8, 1)[0]
            if byte >> (bit % 8) & 1:
                return True
    return False


def run_radius_ablation() -> dict[int, bool]:
    """Lock radius 1 vs 2 against the distance-2 Half-Double pattern."""
    outcomes = {}
    for radius in (1, 2):
        device = _ablation_device(half_double=2.0)
        locker = DRAMLocker(device, LockerConfig())
        controller = MemoryController(device, locker=locker)
        victim = device.mapper.row_index((0, 0, 20))
        locker.protect([victim], radius=radius)
        outcomes[radius] = _half_double_attack(device, controller, victim, 3)
    return outcomes


def run_layout_ablation() -> dict[bool, dict]:
    """Guard-row vs contiguous weight layout: protection-plan coverage."""
    qmodel = QuantizedModel(
        resnet20(num_classes=4, width=4, input_hw=8, seed=0)
    )
    coverage = {}
    for guard in (True, False):
        device = _ablation_device()
        store = WeightStore(device, qmodel, guard_rows=guard)
        plan = plan_protection(
            device.mapper, store.data_rows, mode=LockMode.ADJACENT
        )
        coverage[guard] = {
            "data_rows": len(store.data_rows),
            "locked_rows": len(plan.locked_rows),
            "uncovered_victims": len(plan.uncovered_victims),
            "complete": plan.is_complete,
        }
    return coverage


def run_relock_ablation(
    intervals: tuple[int, ...] = (50, 200, 800), seed: int = 0
) -> dict[int, dict]:
    """Re-lock interval vs unlock/restore SWAP traffic under tenant load."""
    results = {}
    for interval in intervals:
        device = _ablation_device()
        locker = DRAMLocker(device, LockerConfig(relock_interval=interval))
        controller = MemoryController(device, locker=locker)
        locker.lock_rows([21])
        rng = np.random.default_rng(seed)
        for _ in range(2000):
            row = int(rng.choice([21, 30, 40]))
            controller.read(row, privileged=True)
        results[interval] = {
            "unlock_swaps": locker.unlock_swaps,
            "restores": locker.restores,
            "defense_ns": device.stats.defense_ns,
        }
    return results


# ----------------------------------------------------------------------
# RowClone savings (Section II background claims)
# ----------------------------------------------------------------------
def run_rowclone_savings(row_bytes: int = 8192) -> dict:
    from ..dram.energy import DDR4_ENERGY
    from ..dram.timing import DDR4_2400

    timing = DDR4_2400
    bursts = row_bytes // 64
    channel_latency_ns = 2 * (timing.trcd + timing.tcl) + 2 * bursts * timing.tccd + timing.trp
    rowclone_latency_ns = timing.rowclone_ns
    channel_energy_nj = DDR4_ENERGY.channel_copy_nj(row_bytes)
    rowclone_energy_nj = DDR4_ENERGY.rowclone_copy_nj()
    return {
        "row_bytes": row_bytes,
        "channel_latency_ns": channel_latency_ns,
        "rowclone_latency_ns": rowclone_latency_ns,
        "latency_factor": channel_latency_ns / rowclone_latency_ns,
        "channel_energy_nj": channel_energy_nj,
        "rowclone_energy_nj": rowclone_energy_nj,
        "energy_factor": channel_energy_nj / rowclone_energy_nj,
        "paper_latency_factor": 11.6,
        "paper_energy_factor": 74.4,
    }
