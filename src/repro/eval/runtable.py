"""Checkpoint-resumable factorial run-tables over :func:`run_matrix`.

The fleet layer the bake-off sweeps need: a :class:`RunTableSpec` names
a factorial experiment (runner x axes x replicates), expands it into a
deterministic cell list, and executes it through the supervised matrix
with three fleet properties layered on top:

* **Checkpointing** -- every finished cell is appended to a crash-safe
  jsonl journal (one fsync'd line per cell) the moment its result
  exists.  ``resume=True`` skips journaled cells, and because the
  merged artifact is rebuilt from journal records in deterministic
  cell order, a table killed with SIGKILL mid-sweep and resumed emits
  a ``results`` section bit-identical to an uninterrupted run.
* **Replicate seeds** -- every cell's name encodes its factor levels
  and replicate index, and its seed is ``derive_seed(name, base_seed)``
  (cells pass ``seed=None`` to the harness), so replicates are
  independent and no cell's seed depends on the table around it.
* **Sharding** -- ``shard=(i, n)`` deterministically assigns cells
  ``i, i+n, i+2n, ...`` of the full ordering to this process; shards
  journal into shard-suffixed files, so machines can sweep disjoint
  slices of one table concurrently and artifacts merge trivially.

CLI::

    python -m repro.eval runtable --set demo --out artifacts
    python -m repro.eval runtable --set chaos --out artifacts --resume
    python -m repro.eval runtable --set demo --out artifacts --shard 1/4
    python -m repro.eval runtable summarize artifacts/RUNTABLE_demo.json
"""

from __future__ import annotations

import argparse
import fnmatch
import itertools
import json
import math
import os
import sys
import time
from dataclasses import dataclass, field, replace

from .. import obs
from .faults import FaultPlan, FaultSpec
from .harness import (
    Scale,
    Scenario,
    ScenarioResult,
    SupervisorConfig,
    _json_fallback,
    run_matrix,
    scenario_result_payload,
)

__all__ = [
    "RUNTABLE_SCHEMA",
    "RunTableSpec",
    "CheckpointJournal",
    "RunTableResult",
    "run_table",
    "summarize_groups",
    "RUNTABLE_SETS",
    "main",
]

RUNTABLE_SCHEMA = "dram-locker-runtable/1"


@dataclass(frozen=True)
class RunTableSpec:
    """One factorial sweep: runner x axes x replicates.

    Attributes:
        name: Table name; prefixes every cell name and the artifact.
        runner: Key into the harness's ``SCENARIO_RUNNERS``.
        axes: ``(factor, (level, ...))`` pairs.  Cells are the full
            Cartesian product; factor order inside a cell name is
            sorted, so the cell list is independent of declaration
            order.
        replicates: Seeds per factor combination; each replicate is a
            distinct cell named ``.../r<k>`` with its own derived seed.
        scale: Fidelity knobs forwarded to every cell.
        base_params: Runner params shared by every cell (overridden by
            axis levels of the same name).
        overrides: ``(fnmatch pattern, ((param, value), ...))`` pairs:
            extra params merged into cells whose *name* matches --
            how a chaos table gives one cell a channel fault.
        timeout_s / retries: Per-cell supervision policy (see
            :class:`~repro.eval.harness.SupervisorConfig`).
    """

    name: str
    runner: str
    axes: tuple[tuple[str, tuple], ...] = ()
    replicates: int = 1
    scale: Scale = field(default_factory=Scale.quick)
    base_params: tuple[tuple[str, object], ...] = ()
    overrides: tuple[tuple[str, tuple[tuple[str, object], ...]], ...] = ()
    timeout_s: float | None = None
    retries: int = 2

    def __post_init__(self) -> None:
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        factors = [factor for factor, _levels in self.axes]
        if len(set(factors)) != len(factors):
            raise ValueError(f"duplicate factors in axes: {factors}")
        for factor, levels in self.axes:
            if not levels:
                raise ValueError(f"axis {factor!r} has no levels")

    def cells(self) -> list[Scenario]:
        """The deterministic full cell list (every shard sees the same
        ordering; assignment slices it)."""
        axes = sorted(self.axes)
        level_sets = [levels for _factor, levels in axes]
        cells = []
        for combo in itertools.product(*level_sets):
            factor_params = tuple(
                (factor, level)
                for (factor, _levels), level in zip(axes, combo)
            )
            stem = "/".join(
                f"{factor}={level}" for factor, level in factor_params
            )
            for replicate in range(self.replicates):
                name = (
                    f"{self.name}/{stem}/r{replicate}"
                    if stem
                    else f"{self.name}/r{replicate}"
                )
                params = dict(self.base_params)
                params.update(factor_params)
                for pattern, extra in self.overrides:
                    if fnmatch.fnmatchcase(name, pattern):
                        params.update(extra)
                cells.append(
                    Scenario(
                        name,
                        self.runner,
                        self.scale,
                        seed=None,  # derive_seed(name, base_seed)
                        params=tuple(sorted(params.items())),
                    )
                )
        return cells


class CheckpointJournal:
    """Append-only jsonl checkpoint: one fsync'd record per cell.

    Records are ``{"cell", "runner", "seed", "wall_clock_s",
    "result"}`` with ``result`` in the artifact's results-section form
    (:func:`~repro.eval.harness.scenario_result_payload`), so merging
    journal records reproduces an uninterrupted artifact bit-for-bit.
    A torn final line (the process died mid-write) is tolerated on
    load; a torn line anywhere else is corruption and raises.
    """

    def __init__(self, path: str):
        self.path = path

    def load(self, repair: bool = False) -> dict[str, dict]:
        """Completed-cell records by cell name (empty if no journal).

        ``repair=True`` truncates a torn final line off the file --
        required before appending to a journal left by a killed run,
        or the torn fragment would end up mid-file.
        """
        if not os.path.exists(self.path):
            return {}
        records: dict[str, dict] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            text = handle.read()
        lines = text.splitlines(keepends=True)
        valid_bytes = 0
        for lineno, line in enumerate(lines):
            if not line.strip():
                valid_bytes += len(line.encode("utf-8"))
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    # Torn tail from a mid-write crash.
                    if repair:
                        with open(self.path, "a", encoding="utf-8") as out:
                            out.truncate(valid_bytes)
                    break
                raise ValueError(
                    f"corrupt journal {self.path}: bad record at line "
                    f"{lineno + 1} (only the final line may be torn)"
                )
            records[record["cell"]] = record
            valid_bytes += len(line.encode("utf-8"))
        return records

    def append(self, record: dict) -> None:
        """Durably append one record: single write, flush, fsync."""
        line = (
            json.dumps(record, sort_keys=True, default=_json_fallback) + "\n"
        )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("fleet.journal_fsyncs")


@dataclass
class RunTableResult:
    """One (shard of a) run-table execution."""

    spec: RunTableSpec
    artifact_path: str
    journal_path: str
    cells: int
    executed: int
    resumed: int
    quarantined: int
    errors: int
    wall_clock_s: float
    artifact: dict


def _shard_of(cells: list[Scenario], index: int, count: int) -> list[Scenario]:
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"bad shard {index}/{count}")
    return cells[index::count]


def run_table(
    spec: RunTableSpec,
    out_dir: str,
    *,
    base_seed: int = 0,
    workers: int | None = None,
    resume: bool = False,
    shard: tuple[int, int] = (0, 1),
    tag: str | None = None,
    faults: FaultPlan | None = None,
    profile_dir: str | None = None,
) -> RunTableResult:
    """Execute (one shard of) a run-table with checkpointing.

    Fresh runs truncate any stale journal; ``resume=True`` loads it
    and executes only the missing cells.  Either way the merged
    artifact is rebuilt from the journal in deterministic cell order,
    which is what makes a killed-and-resumed table bit-identical
    (``results`` section) to an uninterrupted one.  Quarantined and
    errored cells are checkpointed like any other -- a resume does not
    retry them (rerun without ``--resume`` for that).

    ``profile_dir`` forwards to :func:`run_matrix`: every executed
    cell runs under cProfile and dumps ``profile_<name>.pstats`` there
    (resumed cells are skipped, so a resume profiles only what ran).
    """
    started = time.perf_counter()
    shard_index, shard_count = shard
    cells = spec.cells()
    my_cells = _shard_of(cells, shard_index, shard_count)
    tag = tag or spec.name
    suffix = f".shard{shard_index}of{shard_count}" if shard_count > 1 else ""
    os.makedirs(out_dir, exist_ok=True)
    journal = CheckpointJournal(
        os.path.join(out_dir, f"{tag}{suffix}.journal.jsonl")
    )
    if resume:
        completed = journal.load(repair=True)
    else:
        completed = {}
        if os.path.exists(journal.path):
            os.unlink(journal.path)
    todo = [cell for cell in my_cells if cell.name not in completed]

    def checkpoint(result: ScenarioResult) -> None:
        journal.append(
            {
                "cell": result.name,
                "runner": result.runner,
                "seed": result.seed,
                "wall_clock_s": result.wall_clock_s,
                "result": scenario_result_payload(result),
            }
        )

    matrix = None
    if todo:
        if faults is not None and workers == 1:
            raise ValueError(
                "worker fault injection needs workers >= 2 (a crash fault "
                "on the serial path would kill the table itself)"
            )
        matrix = run_matrix(
            todo,
            workers=workers,
            base_seed=base_seed,
            tag="runtable-shard",
            supervise=SupervisorConfig(
                timeout_s=spec.timeout_s, retries=spec.retries
            ),
            faults=faults,
            on_result=checkpoint,
            profile_dir=profile_dir,
        )
    records = journal.load()
    missing = [cell.name for cell in my_cells if cell.name not in records]
    if missing:
        raise RuntimeError(
            f"run-table finished with unjournaled cells: {missing}"
        )
    results = {cell.name: records[cell.name]["result"] for cell in my_cells}
    groups: dict[str, dict[str, int]] = {}
    for cell in my_cells:
        group_name = cell.name.rsplit("/r", 1)[0]
        group = groups.setdefault(group_name, {"replicates": 0, "errors": 0})
        group["replicates"] += 1
        payload = results[cell.name]
        if isinstance(payload, dict) and "error" in payload:
            group["errors"] += 1
    quarantined = sum(
        1
        for payload in results.values()
        if isinstance(payload, dict) and payload.get("quarantined")
    )
    errors = sum(
        1
        for payload in results.values()
        if isinstance(payload, dict) and "error" in payload
    )
    from .regression import host_meta

    artifact = {
        "schema": RUNTABLE_SCHEMA,
        "meta": host_meta(),
        "table": spec.name,
        "tag": tag,
        "base_seed": base_seed,
        "axes": {factor: list(levels) for factor, levels in spec.axes},
        "replicates": spec.replicates,
        "shard": {
            "index": shard_index,
            "count": shard_count,
            "cells": len(my_cells),
            "total_cells": len(cells),
        },
        "cells": [
            {
                "name": cell.name,
                "runner": cell.runner,
                "seed": cell.resolved_seed(base_seed),
                "params": cell.kwargs(),
            }
            for cell in my_cells
        ],
        "results": results,
        "summary": {"groups": groups, "quarantined": quarantined,
                    "errors": errors},
        "timing": {
            "total_s": time.perf_counter() - started,
            "executed": len(todo),
            "resumed": len(my_cells) - len(todo),
            "workers": matrix.workers if matrix is not None else 0,
            **(
                {"attempts": matrix.attempt_log}
                if matrix is not None and matrix.attempt_log
                else {}
            ),
        },
    }
    artifact_path = os.path.join(out_dir, f"RUNTABLE_{tag}{suffix}.json")
    # Atomic publish: the artifact is either the old complete file or
    # the new complete file, never a torn write.
    tmp_path = artifact_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(
            artifact,
            handle,
            indent=2,
            sort_keys=True,
            default=_json_fallback,
        )
        handle.write("\n")
    os.replace(tmp_path, artifact_path)
    return RunTableResult(
        spec=spec,
        artifact_path=artifact_path,
        journal_path=journal.path,
        cells=len(my_cells),
        executed=len(todo),
        resumed=len(my_cells) - len(todo),
        quarantined=quarantined,
        errors=errors,
        wall_clock_s=time.perf_counter() - started,
        artifact=artifact,
    )


# ----------------------------------------------------------------------
# Replicate aggregation
# ----------------------------------------------------------------------
#: Two-sided 95 % Student-t critical values by degrees of freedom;
#: beyond the table the normal approximation is within half a percent.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    12: 2.179, 15: 2.131, 20: 2.086, 30: 2.042,
}


def _t95(df: int) -> float:
    if df in _T95:
        return _T95[df]
    for bound in sorted(_T95):
        if df < bound:
            return _T95[bound]
    return 1.960


def _flatten_metrics(payload: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a result payload by dotted path.  Booleans and
    non-dict containers are not metrics and are skipped."""
    metrics: dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            metrics[path] = float(value)
        elif isinstance(value, dict):
            metrics.update(_flatten_metrics(value, path))
    return metrics


def summarize_groups(
    artifact: dict, metrics: list[str] | None = None
) -> dict[str, dict[str, dict]]:
    """Per-group mean +/- 95 % confidence interval over replicates.

    Cells sharing a factor combination (the name minus its ``/r<k>``
    replicate suffix) form a group; every numeric leaf of their result
    payloads (dotted path) is aggregated over the replicate seeds to
    ``{"n", "mean", "ci95"}``, with the half-width from the Student-t
    distribution (``ci95`` is ``None`` for a single replicate, where no
    spread estimate exists).  ``metrics`` optionally restricts the
    paths by :func:`fnmatch.fnmatchcase` patterns.  Errored cells are
    excluded (their group keeps its surviving replicates).
    """
    groups: dict[str, list[dict[str, float]]] = {}
    for name, payload in artifact.get("results", {}).items():
        if not isinstance(payload, dict) or "error" in payload:
            continue
        group = name.rsplit("/r", 1)[0]
        groups.setdefault(group, []).append(_flatten_metrics(payload))
    summary: dict[str, dict[str, dict]] = {}
    for group, replicates in sorted(groups.items()):
        paths: set[str] = set()
        for flattened in replicates:
            paths.update(flattened)
        entry: dict[str, dict] = {}
        for path in sorted(paths):
            if metrics is not None and not any(
                fnmatch.fnmatchcase(path, pattern) for pattern in metrics
            ):
                continue
            values = [
                flattened[path]
                for flattened in replicates
                if path in flattened
            ]
            n = len(values)
            mean = sum(values) / n
            ci95 = None
            if n > 1:
                variance = sum((v - mean) ** 2 for v in values) / (n - 1)
                ci95 = _t95(n - 1) * math.sqrt(variance / n)
            entry[path] = {"n": n, "mean": mean, "ci95": ci95}
        summary[group] = entry
    return summary


def _merge_artifacts(paths: list[str]) -> dict:
    """Concatenate the results sections of (shard) artifacts.  A cell
    journaled by two files must agree, or the merge is refused."""
    merged: dict = {"results": {}}
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            artifact = json.load(handle)
        for name, payload in artifact.get("results", {}).items():
            known = merged["results"].get(name)
            if known is not None and known != payload:
                raise ValueError(
                    f"cell {name!r} differs between artifacts; refusing "
                    "to merge"
                )
            merged["results"][name] = payload
    return merged


def summarize_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval runtable summarize",
        description="Per-cell mean +/- 95%-CI over replicate seeds.",
    )
    parser.add_argument(
        "artifacts", nargs="+", help="RUNTABLE_*.json artifact(s) / shards"
    )
    parser.add_argument(
        "--metrics", nargs="+", default=None,
        help="fnmatch patterns over dotted metric paths "
             "(e.g. 'sla.aggregate.*')",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the replicate groups and exit (missing artifacts "
             "are reported, not errors)",
    )
    args = parser.parse_args(argv)
    if args.list:
        for path in args.artifacts:
            if not os.path.exists(path):
                print(f"{path}: not generated yet")
                continue
            summary = summarize_groups(_merge_artifacts([path]))
            for group in summary:
                print(f"{path}: {group}")
        return 0
    merged = _merge_artifacts(args.artifacts)
    summary = summarize_groups(merged, metrics=args.metrics)
    for group, entry in summary.items():
        for path, stats in entry.items():
            spread = (
                "(single replicate)"
                if stats["ci95"] is None
                else f"+/- {stats['ci95']:.6g}"
            )
            print(
                f"{group}  {path}  n={stats['n']}  "
                f"{stats['mean']:.6g} {spread}"
            )
    return 0


# ----------------------------------------------------------------------
# Canned tables
# ----------------------------------------------------------------------
def _demo_table() -> tuple[RunTableSpec, FaultPlan | None]:
    """A small defense x channels serving sweep with replicates --
    the shape of the bake-off tables, sized for CI."""
    spec = RunTableSpec(
        name="demo",
        runner="serving",
        axes=(
            ("defense", ("None", "DRAM-Locker")),
            ("channels", (1, 2)),
        ),
        replicates=2,
        base_params=(
            ("tenants", 3),
            ("slices", 6),
            ("ops_per_slice", 4.0),
        ),
    )
    return spec, None


def _chaos_table() -> tuple[RunTableSpec, FaultPlan | None]:
    """The fault-injection acceptance table: a crash-once cell (must
    recover via retry), a crash-always cell (must quarantine), a clean
    cell, and a channel-fault serving cell (must conserve offered ==
    served + shed with zero victim flips under DRAM-Locker)."""
    spec = RunTableSpec(
        name="chaos",
        runner="serving",
        axes=(
            ("defense", ("None", "DRAM-Locker")),
            ("channels", (1, 2)),
        ),
        replicates=1,
        base_params=(
            ("tenants", 3),
            ("slices", 6),
            ("ops_per_slice", 4.0),
        ),
        overrides=(
            (
                "chaos/channels=2/defense=DRAM-Locker/r0",
                (("fault_channel", 1), ("fault_slice", 3)),
            ),
        ),
        timeout_s=120.0,
        retries=2,
    )
    faults = FaultPlan(
        cells=(
            (
                "chaos/channels=1/defense=None/r0",
                FaultSpec("crash", until_attempt=1),
            ),
            (
                "chaos/channels=2/defense=None/r0",
                FaultSpec("crash", until_attempt=99),
            ),
        )
    )
    return spec, faults


#: Canned tables by name: factory -> (spec, fault plan or None).
RUNTABLE_SETS = {
    "demo": _demo_table,
    "chaos": _chaos_table,
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "summarize":
        return summarize_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval runtable",
        description="Checkpoint-resumable factorial run-tables.",
    )
    parser.add_argument(
        "--set",
        dest="table",
        default="demo",
        choices=sorted(RUNTABLE_SETS),
        help="canned run-table to execute",
    )
    parser.add_argument("--out", default="artifacts", help="output directory")
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already in the checkpoint journal",
    )
    parser.add_argument(
        "--shard",
        default="0/1",
        help="deterministic cell slice to run, as i/n (default 0/1)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--tag", default=None, help="artifact/journal tag")
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="override the table's per-cell timeout (seconds)",
    )
    parser.add_argument(
        "--retries", type=int, default=None,
        help="override the table's per-cell retry budget",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="dump per-cell cProfile stats (profile_<name>.pstats) "
             "into the output directory",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the cell list and exit"
    )
    args = parser.parse_args(argv)
    try:
        shard_index, shard_count = (
            int(part) for part in args.shard.split("/")
        )
    except ValueError:
        parser.error(f"--shard must look like i/n, got {args.shard!r}")
    spec, faults = RUNTABLE_SETS[args.table]()
    if args.timeout is not None:
        spec = replace(spec, timeout_s=args.timeout)
    if args.retries is not None:
        spec = replace(spec, retries=args.retries)
    if args.list:
        for cell in _shard_of(spec.cells(), shard_index, shard_count):
            print(f"{cell.name}  seed={cell.resolved_seed(args.base_seed)}")
        return 0
    result = run_table(
        spec,
        args.out,
        base_seed=args.base_seed,
        workers=args.workers,
        resume=args.resume,
        shard=(shard_index, shard_count),
        tag=args.tag,
        faults=faults,
        profile_dir=args.out if args.profile else None,
    )
    print(
        f"run-table {spec.name}: {result.cells} cell(s) "
        f"({result.executed} executed, {result.resumed} resumed, "
        f"{result.quarantined} quarantined, {result.errors} error(s)) "
        f"in {result.wall_clock_s:.1f}s -> {result.artifact_path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
