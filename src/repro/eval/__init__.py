"""Experiment runners and reporting for every table and figure."""

from .experiments import (
    ProtectedSystem,
    Scale,
    build_system,
    build_victim,
    run_fig1a,
    run_fig1b,
    run_fig5,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_pta,
    run_rowclone_savings,
    run_sec4d_montecarlo,
    run_table1,
    run_table2,
)
from .framework import CrossLayerPipeline, PipelineReport
from .reporting import downsample, format_series, format_table
from .security import (
    LockerSecurityModel,
    ShadowSecurityModel,
    TREF_SECONDS,
    defense_days_from_win_prob,
)

__all__ = [
    "CrossLayerPipeline",
    "LockerSecurityModel",
    "PipelineReport",
    "ProtectedSystem",
    "Scale",
    "ShadowSecurityModel",
    "TREF_SECONDS",
    "build_system",
    "build_victim",
    "defense_days_from_win_prob",
    "downsample",
    "format_series",
    "format_table",
    "run_fig1a",
    "run_fig1b",
    "run_fig5",
    "run_fig7a",
    "run_fig7b",
    "run_fig8",
    "run_pta",
    "run_rowclone_savings",
    "run_sec4d_montecarlo",
    "run_table1",
    "run_table2",
]
