"""The event-driven fast-forward core (``engine="events"``).

The bulk engine (:meth:`MemoryController.execute_batch`) already
vectorizes quiet ACT runs, but it stops the fast path at *every* chunk
boundary -- each refresh tick costs one scalar ``execute()`` round trip
even when nothing else can happen for thousands of activations.  This
module leaps those boundaries: it computes the next *state-changing
event* in closed form, commits the whole quiet epoch -- including the
refresh ticks inside it -- in one ``np.add.accumulate`` pass, and only
drops to the scalar reference path at events that can change an
observable outcome.

Event types and their closed forms (all derived from live state, no
estimation):

* **refresh tick** -- the scalar engine fires a REF slice when the
  folded clock first satisfies ``now_ns >= next_ref_ns``
  (:meth:`RefreshEngine.tick`).  The fused epoch locates that exact
  step with ``np.searchsorted`` over the accumulated clock column, so
  the tick fires at the bit-identical simulated time.
* **TRH crossing** -- the first ACT where the aggressor counter
  satisfies ``count % trh == 0`` (or the Half-Double threshold):
  ``quiet_span(row) + 1`` steps away (:meth:`RowHammerModel.
  quiet_span`).  The crossing ACT always runs scalar so disturbance
  flips land on the same request index with the same timestamp.
* **locker deadline** -- the next pending restore / re-secure fires at
  a known R/W-instruction count: ``DRAMLocker.quiet_span()`` requests
  away (see also :meth:`DRAMLocker.next_deadline`).  Unlock-SWAP
  windows (privileged requests to locked rows) are strictly scalar.
* **defense event** -- each registered defense declares its next event
  via :meth:`Defense.next_act_event`; defenses that do not declare fall
  back to the chunked bulk discipline (scalar step at every refresh
  tick), which is bit-identical by the existing bulk contract.
* **run end** -- the stream itself runs out of identical ACTs.

The serving layer adds two more event types above the controller:
**tenant arrival burst edges** (slice boundaries, where the arrival
RNGs draw) and **SLA-histogram epochs** (the per-slice drain of the
shared :class:`SystemEventQueue`, after which tenant percentiles are
current).  Both are slice-aligned, so the queue drains once per slice.

Equivalence argument (the contract ``docs/ARCHITECTURE.md`` documents):
a scalar boundary ACT at a refresh tick advances exactly the same
per-step constants as a quiet bulk ACT on every accumulator -- locker
lookup charge, ``e_act``/``e_pre``/background energy, ``busy_ns``,
``defense_ns``, and the clock -- and ``np.add.accumulate`` is a strict
sequential scan, bitwise-equal to the scalar left-to-right IEEE-754
fold.  Fusing a tick into an epoch therefore changes no accumulator's
addition sequence; only the Python-level call pattern differs.
``tests/test_engine_equivalence.py`` pins payload equality across all
three engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from .. import obs
from ..locker.lock_table import LOCK_LOOKUP_NS
from .request import MemRequest, Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .controller import MemoryController

__all__ = [
    "EventKind",
    "RunEvent",
    "next_act_event",
    "fused_epoch",
    "execute_act_run",
    "SystemEventQueue",
]

#: Upper bound on one fused epoch's accumulate buffer (6 float64 rows of
#: ``cap + 1`` columns, ~3 MB): million-ACT runs split at cap
#: boundaries, which is fold-safe (the scalar addition order is a
#: concatenation of the per-epoch folds).
EPOCH_CAP = 1 << 16


class EventKind(Enum):
    """The state-changing event types the fast-forward core recognizes."""

    REFRESH_TICK = "refresh-tick"
    TRH_CROSSING = "trh-crossing"
    LOCKER_DEADLINE = "locker-deadline"
    DEFENSE_EVENT = "defense-event"
    RUN_END = "run-end"


@dataclass(frozen=True)
class RunEvent:
    """The next state-changing event bounding an ACT run.

    Attributes:
        kind: Which closed form produced the bound.
        steps: Quiet ACTs before the event's boundary step -- the
            number of activations that can be committed without any
            observable changing behaviour.
    """

    kind: EventKind
    steps: int


def next_act_event(
    controller: "MemoryController", row: int, limit: int
) -> RunEvent:
    """Compute the next state-changing event for an ACT run of ``row``.

    This is the typed, observable view of the bounds the events engine
    executes by: the minimum over every closed form, labelled with the
    event type that produced it.  ``limit`` caps the horizon (the
    ``RUN_END`` event).  Non-mutating.
    """
    device = controller.device
    physical = row
    step_ns = device.timing.trc
    candidates = [RunEvent(EventKind.RUN_END, limit)]
    locker = controller.locker
    if locker is not None:
        candidates.append(
            RunEvent(EventKind.LOCKER_DEADLINE, locker.quiet_span())
        )
        physical, _, _ = locker.classify(row)
        step_ns += LOCK_LOOKUP_NS
    defense = controller.defense
    if defense is not None:
        physical = defense.translate(physical)
        declared = defense.next_act_event(physical, limit)
        if declared is not None:
            candidates.append(
                RunEvent(EventKind.DEFENSE_EVENT, declared.count)
            )
            step_ns += declared.extra_ns
        else:
            plan = defense.plan_activate_run(physical, limit)
            candidates.append(
                RunEvent(
                    EventKind.DEFENSE_EVENT,
                    plan.count if plan is not None else 0,
                )
            )
            if plan is not None:
                step_ns += plan.extra_ns
    candidates.append(
        RunEvent(
            EventKind.REFRESH_TICK,
            device.refresh.quiet_steps(device.now_ns, step_ns),
        )
    )
    candidates.append(
        RunEvent(
            EventKind.TRH_CROSSING, device.rowhammer.quiet_span(physical)
        )
    )
    return min(candidates, key=lambda event: (event.steps,))


def fused_epoch(
    controller: "MemoryController",
    requests: Sequence[MemRequest],
    start: int,
    physical: int,
    lookup_hit: bool,
    extra_ns: float,
    step_ns: float,
    limit: int,
    sink,
) -> int:
    """Commit up to ``limit`` quiet ACTs of ``physical`` in one pass.

    Unlike :meth:`MemoryController._bulk_acts`, the epoch may span
    refresh ticks: the tick steps are located exactly (by searching the
    accumulated clock column for ``next_ref_ns``, the same comparison
    the scalar ``advance`` performs on the same folded values) and
    fired in place, so the REF walker, the hammer counters, and every
    energy accumulator evolve bit-identically to the scalar loop.  The
    epoch stops *before* a TRH crossing -- the crossing ACT itself runs
    scalar so flips land with the exact folded timestamp.

    Returns the number of ACTs committed (0 means the very next ACT is
    a boundary and must take the scalar path).  The caller guarantees
    no locker deadline and no declared defense event falls inside
    ``limit`` steps.
    """
    device = controller.device
    refresh = device.refresh
    rowhammer = device.rowhammer
    limit = min(limit, EPOCH_CAP)

    # Fast path: no event inside the whole epoch -- a plain bulk chunk,
    # no accumulate buffer needed.
    quiet = min(
        refresh.quiet_steps(device.now_ns, step_ns),
        rowhammer.quiet_span(physical),
    )
    if quiet >= limit:
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("controller.epoch_leaps", engine="events")
        controller._bulk_acts(
            requests, start, limit, physical, lookup_hit, extra_ns,
            step_ns, sink,
        )
        return limit

    stats = device.stats
    breakdown = stats.energy
    energy = device.energy
    trc = device.timing.trc
    now_start = device.now_ns

    # One strict sequential scan per accumulator: column k holds every
    # accumulator's exact value after k steps (the scalar fold).
    buffer = np.empty((6, limit + 1), dtype=np.float64)
    buffer[:, 0] = (
        breakdown.activate,
        breakdown.precharge,
        breakdown.background,
        stats.busy_ns,
        stats.defense_ns,
        now_start,
    )
    buffer[:, 1:] = np.array(
        [
            energy.e_act,
            energy.e_pre,
            energy.background_nj(step_ns),
            trc,
            extra_ns,
            step_ns,
        ],
        dtype=np.float64,
    )[:, None]
    np.add.accumulate(buffer, axis=1, out=buffer)
    now_column = buffer[5]

    committed = limit
    position = 0  # ACT steps already charged onto the hammer counter
    while True:
        # 1-based step index of the next TRH / Half-Double crossing,
        # from the *current* counter (ticks inside the epoch reset it).
        crossing = position + rowhammer.quiet_span(physical) + 1
        # 1-based step index whose advance first satisfies the scalar
        # tick condition ``now >= next_ref`` on the folded clock.
        tick = (
            int(
                np.searchsorted(
                    now_column[1:], refresh.next_ref_ns, side="left"
                )
            )
            + 1
        )
        if crossing <= limit and crossing <= tick:
            # The crossing ACT must run scalar (possible disturbance):
            # stop the epoch just before it.  If the crossing step is
            # also the tick step, the tick fires during that scalar
            # boundary ACT's own advance, not here.
            committed = crossing - 1
            break
        if tick > limit:
            break
        # Fuse across this REF: the boundary ACT's counter bump lands
        # first (scalar order: activate, then advance fires the tick),
        # then the due slices reset their rows.
        rowhammer.charge_activations(physical, tick - position)
        position = tick
        refresh.tick(float(now_column[tick]))

    if committed <= 0:
        return 0
    tel = obs.ACTIVE
    if tel is not None:
        tel.metrics.inc("controller.fused_epochs", engine="events")
        tel.metrics.inc("controller.acts", committed, engine="events")
    rowhammer.charge_activations(physical, committed - position)
    (
        breakdown.activate,
        breakdown.precharge,
        breakdown.background,
        stats.busy_ns,
        stats.defense_ns,
        device.now_ns,
    ) = (float(value) for value in buffer[:, committed])
    stats.activates += committed
    stats.precharges += committed
    # Every scalar ACT ends with a precharge of its own bank.
    device.banks[device.mapper.row_address(physical).bank].open_row = None
    if controller.locker is not None:
        controller.locker.charge_bulk(committed, lookup_hit)
    if controller.defense is not None:
        controller.defense.on_activate_run(
            physical, committed, now_start, step_ns
        )
    sink.add_run(
        requests,
        start,
        committed,
        Status.DONE,
        latency_ns=step_ns,
        defense_ns=extra_ns,
        physical=physical,
    )
    return committed


def execute_act_run(
    controller: "MemoryController",
    requests: Sequence[MemRequest],
    start: int,
    end: int,
    sink,
) -> None:
    """Drain ``requests[start:end]`` (identical ACTs of one row) on the
    events engine.

    Mirrors :meth:`MemoryController._execute_act_run` (same locker
    gates, same defense planning) but replaces the per-tick chunking
    with :func:`fused_epoch` wherever the defense layer declares the
    horizon event-free -- no defense, or a defense whose
    :meth:`~repro.defenses.base.Defense.next_act_event` opts in.
    Undeclared defenses keep the chunked bulk discipline step for step.
    """
    device = controller.device
    refresh = device.refresh
    rowhammer = device.rowhammer
    locker = controller.locker
    defense = controller.defense
    trc = device.timing.trc
    row = requests[start].row
    privileged = requests[start].privileged

    index = start
    while index < end:
        if locker is not None:
            pending_bound = locker.quiet_span()
            if pending_bound <= 0:
                sink.add(controller.execute(requests[index]))
                index += 1
                continue
            physical, locked, exposed = locker.classify(row)
            if locked and not exposed:
                if privileged:
                    # Unlock-SWAP path: strictly scalar, ordering is
                    # part of the defense semantics.
                    sink.add(controller.execute(requests[index]))
                    index += 1
                    continue
                count = min(end - index, pending_bound)
                controller._bulk_blocked(requests, index, count, sink)
                index += count
                continue
            lookup_hit = locked  # exposed rows still hit the table
            lock_ns = LOCK_LOOKUP_NS
        else:
            physical = row
            pending_bound = end - index
            lookup_hit = False
            lock_ns = 0.0

        defense_extra = 0.0
        limit = min(end - index, pending_bound)
        if defense is not None:
            physical = defense.translate(physical)
            declared = defense.next_act_event(physical, limit)
            if declared is None:
                # No closed-form event stream: keep the chunked bulk
                # discipline (scalar step at every boundary), which is
                # bit-identical by the existing bulk contract.
                plan = defense.plan_activate_run(physical, limit)
                if plan is None or plan.count <= 0:
                    sink.add(controller.execute(requests[index]))
                    index += 1
                    continue
                limit = min(limit, plan.count)
                extra_ns = lock_ns + plan.extra_ns
                step_ns = trc + extra_ns
                count = min(
                    limit,
                    refresh.quiet_steps(device.now_ns, step_ns),
                    rowhammer.quiet_span(physical),
                )
                if count <= 0:
                    sink.add(controller.execute(requests[index]))
                    index += 1
                    continue
                controller._bulk_acts(
                    requests, index, count, physical, lookup_hit,
                    extra_ns, step_ns, sink,
                )
                index += count
                continue
            if declared.count <= 0:
                # The very next ACT is the defense's event.
                sink.add(controller.execute(requests[index]))
                index += 1
                continue
            limit = min(limit, declared.count)
            defense_extra = declared.extra_ns

        extra_ns = lock_ns + defense_extra  # the scalar fold order
        step_ns = trc + extra_ns
        committed = fused_epoch(
            controller, requests, index, physical, lookup_hit, extra_ns,
            step_ns, limit, sink,
        )
        if committed <= 0:
            sink.add(controller.execute(requests[index]))
            index += 1
            continue
        index += committed


@dataclass
class _QueuedStream:
    """One submitted stream awaiting clock-ordered execution."""

    seq: int
    channels: tuple[int, ...]
    sink_id: int
    execute: Callable[[], None]


class SystemEventQueue:
    """Cross-channel scheduler: leap to the globally slowest channel.

    Channels are independent state machines (own clock, own RNG
    streams), so any cross-channel interleaving that preserves each
    channel's stream order yields identical per-channel end state.  The
    SLA percentile trackers additionally fold values in first-seen
    order, so each *sink's* observation order must also be preserved.
    The queue therefore enforces exactly two FIFO constraints -- per
    channel and per sink -- and among the eligible streams always runs
    the one whose channel clock is the global minimum (ties broken by
    submission order).  The globally oldest pending stream is always
    eligible, so the drain cannot deadlock.

    Payload bit-identity to immediate execution follows: per-channel
    request order is unchanged (device, locker, defense, and RNG state
    evolve identically) and per-sink observation order is unchanged
    (histograms and summaries fold identically).
    """

    def __init__(self, clock: Callable[[int], float]):
        """``clock(channel)`` returns that channel's current ``now_ns``."""
        self._clock = clock
        self._items: list[_QueuedStream] = []
        self._seq = 0

    def submit(
        self,
        channels: Sequence[int],
        sink,
        execute: Callable[[], None],
    ) -> None:
        """Enqueue one stream touching ``channels``, observed by ``sink``.

        Multi-channel streams (e.g. inference sweeps spanning channels
        under row interleaving) are atomic: they hold their place in
        every involved channel's FIFO and execute as one unit.
        """
        self._items.append(
            _QueuedStream(self._seq, tuple(channels), id(sink), execute)
        )
        self._seq += 1

    def __len__(self) -> int:
        """Streams currently pending."""
        return len(self._items)

    def drain(self) -> int:
        """Run every pending stream in slowest-channel-first order.

        Returns the number of streams executed.
        """
        items = self._items
        executed = 0
        while items:
            heads: dict[int, int] = {}
            sink_heads: dict[int, int] = {}
            for item in items:
                for channel in item.channels:
                    if item.seq < heads.get(channel, item.seq + 1):
                        heads[channel] = item.seq
                if item.seq < sink_heads.get(item.sink_id, item.seq + 1):
                    sink_heads[item.sink_id] = item.seq
            best = None
            best_key = None
            for item in items:
                if sink_heads[item.sink_id] != item.seq:
                    continue
                if any(
                    heads[channel] != item.seq for channel in item.channels
                ):
                    continue
                key = (
                    min(self._clock(channel) for channel in item.channels),
                    item.seq,
                )
                if best_key is None or key < best_key:
                    best, best_key = item, key
            assert best is not None, "event queue deadlocked"
            items.remove(best)
            best.execute()
            executed += 1
        return executed
