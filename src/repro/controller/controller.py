"""The memory controller.

Executes :class:`MemRequest` streams against a :class:`DRAMDevice` with
an open-page policy and DDR timing, routing every request through the
optional protection hooks:

1. **DRAM-Locker** (if installed) -- lock-table lookup, address
   remapping, unlock-SWAP for privileged requests, skip for blocked
   ones;
2. **baseline defense** (if installed) -- address translation plus a
   per-ACT mitigation hook.

The controller is where "skipped instructions cost nothing" becomes
measurable: a blocked request consumes only the lock-table lookup
latency and never reaches the DRAM array.

Two execution paths are offered:

* :meth:`MemoryController.execute` -- the scalar reference path, one
  request per call;
* :meth:`MemoryController.execute_batch` -- the batched engine.  Runs
  of identical attacker activations (the hammer hot loop) and the
  per-burst column walks of full-row reads are accounted in bulk, with
  chunk boundaries chosen so every observable outcome -- hammer
  counters, refresh interleaving, blocked-request skip cost,
  unlock-SWAP ordering, ``MemoryStats`` (including energy, accumulated
  in the scalar addition order) -- is bit-identical to calling
  ``execute`` in a loop.  ``tests/test_batch_execution.py`` holds the
  equivalence suite.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..defenses.base import Defense
from ..dram.device import DRAMDevice
from ..locker.lock_table import LOCK_LOOKUP_NS
from .request import Kind, MemRequest, RequestResult, Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..locker.locker import DRAMLocker

__all__ = ["MemoryController", "LOCK_LOOKUP_NS"]


class MemoryController:
    """Order-preserving request executor with defense hooks."""

    def __init__(
        self,
        device: DRAMDevice,
        defense: Defense | None = None,
        locker: "DRAMLocker | None" = None,
    ):
        self.device = device
        self.defense = defense
        self.locker = locker
        if defense is not None:
            defense.attach(device)
        self.results_log_enabled = False
        self.results: list[RequestResult] = []

    # ------------------------------------------------------------------
    # Convenience entry points
    # ------------------------------------------------------------------
    def read(
        self,
        row: int,
        column: int = 0,
        size: int = 64,
        privileged: bool = False,
    ) -> RequestResult:
        return self.execute(
            MemRequest(Kind.READ, row, column, size, privileged=privileged)
        )

    def write(
        self,
        row: int,
        column: int = 0,
        size: int = 64,
        privileged: bool = False,
    ) -> RequestResult:
        return self.execute(
            MemRequest(Kind.WRITE, row, column, size, privileged=privileged)
        )

    def hammer(self, row: int, count: int = 1) -> list[RequestResult]:
        """Issue ``count`` attacker activations (ACT+PRE) of one row.

        The activations are identical, so one request object is shared
        across the batch; results still arrive one per activation.
        """
        return self.execute_batch(
            [MemRequest(Kind.ACT, row, privileged=False)] * count
        )

    def run(self, requests: Iterable[MemRequest]) -> list[RequestResult]:
        """Execute a request stream in order."""
        return [self.execute(request) for request in requests]

    # ------------------------------------------------------------------
    # Core execution
    # ------------------------------------------------------------------
    def execute(self, request: MemRequest) -> RequestResult:
        device = self.device
        timing = device.timing
        physical = request.row
        defense_ns = 0.0
        swapped = False

        # --- DRAM-Locker request path -------------------------------
        if self.locker is not None:
            decision = self.locker.on_request(request)
            defense_ns += decision.extra_ns
            if not decision.allowed:
                device.advance(decision.extra_ns)
                device.stats.blocked_requests += 1
                device.stats.defense_ns += decision.extra_ns
                result = RequestResult(
                    request,
                    Status.BLOCKED,
                    latency_ns=decision.extra_ns,
                    defense_ns=decision.extra_ns,
                    physical_row=None,
                )
                self._log(result)
                return result
            physical = decision.physical_row
            swapped = decision.swapped

        # --- baseline defense translation ---------------------------
        if self.defense is not None:
            physical = self.defense.translate(physical)

        # --- DDR timing + device commands ---------------------------
        addr = device.mapper.row_address(physical)
        bank = device.banks[addr.bank]
        bursts = max(1, math.ceil(request.size / 64))
        flips = []
        row_hit = bank.open_row == physical and request.kind is not Kind.ACT

        if request.kind is Kind.ACT:
            # Closed-row hammering pattern: ACT then immediate PRE.
            service_ns = timing.trc
            flips += device.activate(physical)
            defense_ns += self._defense_hook(physical)
            device.precharge(addr.bank)
        elif row_hit:
            service_ns = timing.row_hit_ns + (bursts - 1) * timing.tccd
            device.stats.row_hits += 1
        else:
            service_ns = timing.trcd + timing.tcl + timing.tbl
            service_ns += (bursts - 1) * timing.tccd
            if bank.open_row is not None:
                service_ns += timing.trp
                device.precharge(addr.bank)
            device.stats.row_misses += 1
            flips += device.activate(physical)
            defense_ns += self._defense_hook(physical)

        if request.kind is Kind.READ:
            device.read_burst_run(physical, request.column, bursts)
        elif request.kind is Kind.WRITE:
            device.write_burst_run(
                physical, request.column, bursts, np.zeros(64, dtype=np.uint8)
            )

        device.advance(service_ns + defense_ns)
        device.stats.busy_ns += service_ns
        device.stats.defense_ns += defense_ns

        result = RequestResult(
            request,
            Status.DONE,
            latency_ns=service_ns + defense_ns,
            defense_ns=defense_ns,
            physical_row=physical,
            row_hit=row_hit,
            swapped=swapped,
            flips=flips,
        )
        self._log(result)
        return result

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def execute_batch(
        self, requests: Sequence[MemRequest]
    ) -> list[RequestResult]:
        """Execute a request stream in order through the batched engine.

        Returns exactly what ``[self.execute(r) for r in requests]``
        would: same results, same stats, same device and locker state.
        Runs of identical attacker activations are accounted in bulk
        between the chunk boundaries where state can change (a refresh
        tick, a RowHammer threshold crossing, a pending unlock-SWAP
        restore, a privileged access to a locked row); everything else
        takes the scalar path.
        """
        if not isinstance(requests, list):
            requests = list(requests)
        results: list[RequestResult] = []
        total = len(requests)
        index = 0
        while index < total:
            request = requests[index]
            if request.kind is Kind.ACT and self.defense is None:
                end = index + 1
                row, privileged = request.row, request.privileged
                while end < total:
                    peer = requests[end]
                    if (
                        peer.kind is not Kind.ACT
                        or peer.row != row
                        or peer.privileged != privileged
                    ):
                        break
                    end += 1
                if end - index > 1:
                    self._execute_act_run(requests, index, end, results)
                    index = end
                    continue
            results.append(self.execute(request))
            index += 1
        return results

    def _execute_act_run(
        self,
        requests: Sequence[MemRequest],
        start: int,
        end: int,
        results: list[RequestResult],
    ) -> None:
        """Drain ``requests[start:end]`` -- identical ACTs of one row --
        alternating exact bulk chunks with scalar steps at every point
        where a refresh tick, threshold crossing, or locker deadline
        could change the outcome."""
        device = self.device
        timing = device.timing
        refresh = device.refresh
        rowhammer = device.rowhammer
        locker = self.locker
        trc = timing.trc
        trh = rowhammer.trh
        hd_factor = rowhammer.half_double_factor
        row = requests[start].row
        privileged = requests[start].privileged

        index = start
        while index < end:
            if locker is not None:
                pending_bound = locker.quiet_span()
                if pending_bound <= 0:
                    results.append(self.execute(requests[index]))
                    index += 1
                    continue
                physical, locked, exposed = locker.classify(row)
                if locked and not exposed:
                    if privileged:
                        # Unlock-SWAP path: strictly scalar, ordering is
                        # part of the defense semantics.
                        results.append(self.execute(requests[index]))
                        index += 1
                        continue
                    count = min(end - index, pending_bound)
                    self._bulk_blocked(requests, index, count, results)
                    index += count
                    continue
                lookup_hit = locked  # exposed rows still hit the table
                extra_ns = LOCK_LOOKUP_NS
            else:
                physical = row
                pending_bound = end - index
                lookup_hit = False
                extra_ns = 0.0

            step_ns = trc + extra_ns
            # One-step safety margin keeps every refresh tick and every
            # threshold crossing on the scalar path.
            ticks_away = (
                int((refresh.next_ref_ns - device.now_ns) / step_ns) - 1
            )
            counter = rowhammer.counters.get(physical, 0)
            cross_away = trh - (counter % trh) - 1
            if hd_factor is not None:
                hd_threshold = int(trh * hd_factor)
                if hd_threshold > 0:
                    cross_away = min(
                        cross_away, hd_threshold - (counter % hd_threshold) - 1
                    )
            count = min(end - index, pending_bound, ticks_away, cross_away)
            if count <= 0:
                results.append(self.execute(requests[index]))
                index += 1
                continue
            self._bulk_acts(
                requests, index, count, physical, lookup_hit, extra_ns, results
            )
            index += count

    def _bulk_acts(
        self,
        requests: Sequence[MemRequest],
        start: int,
        count: int,
        physical: int,
        lookup_hit: bool,
        extra_ns: float,
        results: list[RequestResult],
    ) -> None:
        """Account ``count`` allowed ACT+PRE cycles of ``physical`` in
        bulk.  The caller guarantees no refresh tick, no threshold
        crossing, and no locker deadline falls inside the chunk, so the
        only per-step work is the (order-preserving) accumulator walk."""
        device = self.device
        stats = device.stats
        breakdown = stats.energy
        energy = device.energy
        locker = self.locker
        trc = device.timing.trc
        step_ns = trc + extra_ns
        background_step = energy.background_nj(step_ns)
        e_act = energy.e_act
        e_pre = energy.e_pre

        busy = stats.busy_ns
        defense = stats.defense_ns
        now = device.now_ns
        act_acc = breakdown.activate
        pre_acc = breakdown.precharge
        background_acc = breakdown.background
        for _ in range(count):
            act_acc += e_act
            pre_acc += e_pre
            busy += trc
            defense += extra_ns
            now += step_ns
            background_acc += background_step
        breakdown.activate = act_acc
        breakdown.precharge = pre_acc
        breakdown.background = background_acc
        stats.busy_ns = busy
        stats.defense_ns = defense
        device.now_ns = now
        stats.activates += count
        stats.precharges += count
        rowhammer = device.rowhammer
        rowhammer.counters[physical] = (
            rowhammer.counters.get(physical, 0) + count
        )
        # Every scalar ACT ends with a precharge of its own bank.
        device.banks[device.mapper.row_address(physical).bank].open_row = None
        if locker is not None:
            locker.charge_bulk(count, lookup_hit)

        latency = trc + extra_ns
        chunk = [
            RequestResult(
                requests[k],
                Status.DONE,
                latency_ns=latency,
                defense_ns=extra_ns,
                physical_row=physical,
            )
            for k in range(start, start + count)
        ]
        if self.results_log_enabled:
            self.results.extend(chunk)
        results.extend(chunk)

    def _bulk_blocked(
        self,
        requests: Sequence[MemRequest],
        start: int,
        count: int,
        results: list[RequestResult],
    ) -> None:
        """Account ``count`` blocked (locked-row, unprivileged) requests
        in bulk.  Blocked requests touch no counters and no banks, so
        deferring the refresh catch-up to the end of the chunk leaves
        every observable identical to the scalar loop."""
        device = self.device
        stats = device.stats
        background_step = device.energy.background_nj(LOCK_LOOKUP_NS)
        background_acc = stats.energy.background
        defense = stats.defense_ns
        now = device.now_ns
        for _ in range(count):
            background_acc += background_step
            defense += LOCK_LOOKUP_NS
            now += LOCK_LOOKUP_NS
        stats.energy.background = background_acc
        stats.defense_ns = defense
        device.now_ns = now
        stats.blocked_requests += count
        self.locker.charge_bulk_blocked(count)
        device.refresh.tick(now)

        chunk = [
            RequestResult(
                requests[k],
                Status.BLOCKED,
                latency_ns=LOCK_LOOKUP_NS,
                defense_ns=LOCK_LOOKUP_NS,
                physical_row=None,
            )
            for k in range(start, start + count)
        ]
        if self.results_log_enabled:
            self.results.extend(chunk)
        results.extend(chunk)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _defense_hook(self, physical: int) -> float:
        if self.defense is None:
            return 0.0
        action = self.defense.on_activate(physical, self.device.now_ns)
        return action.extra_ns

    def _log(self, result: RequestResult) -> None:
        if self.results_log_enabled:
            self.results.append(result)
