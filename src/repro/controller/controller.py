"""The memory controller.

Executes :class:`MemRequest` streams against a :class:`DRAMDevice` with
an open-page policy and DDR timing, routing every request through the
optional protection hooks:

1. **DRAM-Locker** (if installed) -- lock-table lookup, address
   remapping, unlock-SWAP for privileged requests, skip for blocked
   ones;
2. **baseline defense** (if installed) -- address translation plus a
   per-ACT mitigation hook.

The controller is where "skipped instructions cost nothing" becomes
measurable: a blocked request consumes only the lock-table lookup
latency and never reaches the DRAM array.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..defenses.base import Defense
from ..dram.device import DRAMDevice
from .request import Kind, MemRequest, RequestResult, Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..locker.locker import DRAMLocker

__all__ = ["MemoryController"]

#: Latency of one lock-table SRAM lookup (45 nm, ~56KB array).
LOCK_LOOKUP_NS = 1.2


class MemoryController:
    """Order-preserving request executor with defense hooks."""

    def __init__(
        self,
        device: DRAMDevice,
        defense: Defense | None = None,
        locker: "DRAMLocker | None" = None,
    ):
        self.device = device
        self.defense = defense
        self.locker = locker
        if defense is not None:
            defense.attach(device)
        self.results_log_enabled = False
        self.results: list[RequestResult] = []

    # ------------------------------------------------------------------
    # Convenience entry points
    # ------------------------------------------------------------------
    def read(
        self,
        row: int,
        column: int = 0,
        size: int = 64,
        privileged: bool = False,
    ) -> RequestResult:
        return self.execute(
            MemRequest(Kind.READ, row, column, size, privileged=privileged)
        )

    def write(
        self,
        row: int,
        column: int = 0,
        size: int = 64,
        privileged: bool = False,
    ) -> RequestResult:
        return self.execute(
            MemRequest(Kind.WRITE, row, column, size, privileged=privileged)
        )

    def hammer(self, row: int, count: int = 1) -> list[RequestResult]:
        """Issue ``count`` attacker activations (ACT+PRE) of one row."""
        return [
            self.execute(MemRequest(Kind.ACT, row, privileged=False))
            for _ in range(count)
        ]

    def run(self, requests: Iterable[MemRequest]) -> list[RequestResult]:
        """Execute a request stream in order."""
        return [self.execute(request) for request in requests]

    # ------------------------------------------------------------------
    # Core execution
    # ------------------------------------------------------------------
    def execute(self, request: MemRequest) -> RequestResult:
        device = self.device
        timing = device.timing
        physical = request.row
        defense_ns = 0.0
        swapped = False

        # --- DRAM-Locker request path -------------------------------
        if self.locker is not None:
            decision = self.locker.on_request(request)
            defense_ns += decision.extra_ns
            if not decision.allowed:
                device.advance(decision.extra_ns)
                device.stats.blocked_requests += 1
                device.stats.defense_ns += decision.extra_ns
                result = RequestResult(
                    request,
                    Status.BLOCKED,
                    latency_ns=decision.extra_ns,
                    defense_ns=decision.extra_ns,
                    physical_row=None,
                )
                self._log(result)
                return result
            physical = decision.physical_row
            swapped = decision.swapped

        # --- baseline defense translation ---------------------------
        if self.defense is not None:
            physical = self.defense.translate(physical)

        # --- DDR timing + device commands ---------------------------
        addr = device.mapper.row_address(physical)
        bank = device.banks[addr.bank]
        bursts = max(1, math.ceil(request.size / 64))
        flips = []
        row_hit = bank.open_row == physical and request.kind is not Kind.ACT

        if request.kind is Kind.ACT:
            # Closed-row hammering pattern: ACT then immediate PRE.
            service_ns = timing.trc
            flips += device.activate(physical)
            defense_ns += self._defense_hook(physical)
            device.precharge(addr.bank)
        elif row_hit:
            service_ns = timing.row_hit_ns + (bursts - 1) * timing.tccd
            device.stats.row_hits += 1
        else:
            service_ns = timing.trcd + timing.tcl + timing.tbl
            service_ns += (bursts - 1) * timing.tccd
            if bank.open_row is not None:
                service_ns += timing.trp
                device.precharge(addr.bank)
            device.stats.row_misses += 1
            flips += device.activate(physical)
            defense_ns += self._defense_hook(physical)

        if request.kind is Kind.READ:
            for burst in range(bursts):
                column = min(
                    request.column + burst * 64, device.config.row_bytes - 64
                )
                device.read_burst(physical, column)
        elif request.kind is Kind.WRITE:
            zeros = np.zeros(64, dtype=np.uint8)
            for burst in range(bursts):
                column = min(
                    request.column + burst * 64, device.config.row_bytes - 64
                )
                device.write_burst(physical, column, zeros)

        device.advance(service_ns + defense_ns)
        device.stats.busy_ns += service_ns
        device.stats.defense_ns += defense_ns

        result = RequestResult(
            request,
            Status.DONE,
            latency_ns=service_ns + defense_ns,
            defense_ns=defense_ns,
            physical_row=physical,
            row_hit=row_hit,
            swapped=swapped,
            flips=flips,
        )
        self._log(result)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _defense_hook(self, physical: int) -> float:
        if self.defense is None:
            return 0.0
        action = self.defense.on_activate(physical, self.device.now_ns)
        return action.extra_ns

    def _log(self, result: RequestResult) -> None:
        if self.results_log_enabled:
            self.results.append(result)
