"""The memory controller.

Executes :class:`MemRequest` streams against a :class:`DRAMDevice` with
an open-page policy and DDR timing, routing every request through the
optional protection hooks:

1. **DRAM-Locker** (if installed) -- lock-table lookup, address
   remapping, unlock-SWAP for privileged requests, skip for blocked
   ones;
2. **baseline defense** (if installed) -- address translation plus a
   per-ACT mitigation hook.

The controller is where "skipped instructions cost nothing" becomes
measurable: a blocked request consumes only the lock-table lookup
latency and never reaches the DRAM array.

Execution engines and APIs:

* :meth:`MemoryController.execute` -- the scalar reference path, one
  request per call;
* :meth:`MemoryController.execute_batch` -- the batched engine.  Runs
  of identical attacker activations (the hammer hot loop) are accounted
  in bulk -- **including under a baseline defense**, via the
  :class:`~repro.defenses.base.Defense` bulk hook pair -- with chunk
  boundaries at every point where any observable can change: refresh
  ticks, RowHammer threshold crossings, locker deadlines and
  unlock-SWAPs, and every defense event (counter thresholds, sampler
  insertions/evictions, Hydra escalations, TWiCE prunes, swap/shuffle
  moves, PARA's sub-``p`` draws).  Outcomes are bit-identical to
  calling ``execute`` in a loop -- hammer counters, ``MemoryStats``
  (floats accumulated in the scalar addition order via the
  sequential-accumulator helpers), defense state, RNG streams.
  ``tests/test_batch_execution.py`` holds the equivalence suite.
* :meth:`MemoryController.execute_run` /
  :meth:`MemoryController.execute_summary` -- **summary mode**: same
  engine, but the per-request :class:`RequestResult` materialization is
  replaced by one :class:`RunSummary` (issued/blocked/latency/flips),
  so a million-activation campaign performs O(chunks) allocation.
  ``HammerDriver`` and ``WeightStore.stream_inference`` consume this.

``engine="scalar"`` at construction keeps every path on the reference
loop (the discipline shared with ``repro.nn.functional.contract`` and
the suffix-forward search engine: the fast path is only used where
equivalence is pinned).  ``engine="events"`` goes one layer further:
ACT runs are executed by the event-driven fast-forward core
(:mod:`repro.controller.events`), which leaps refresh ticks inside one
fused ``np.add.accumulate`` epoch instead of dropping to a scalar step
at every tick -- still bit-identical to both reference engines (the
scalar ⊂ bulk ⊂ events contract ``docs/ARCHITECTURE.md`` documents).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from .. import obs
from ..defenses.base import Defense
from ..dram.device import DRAMDevice
from ..engines import EXECUTION_ENGINES, resolve_engine
from ..dram.stats import walk_add_many
from ..locker.lock_table import LOCK_LOOKUP_NS
from . import events as events_core
from .request import (
    Kind,
    MemRequest,
    RequestResult,
    RequestRun,
    RunSummary,
    Status,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..locker.locker import DRAMLocker

__all__ = [
    "ENGINES",
    "MemoryController",
    "SummarySink",
    "make_summary_sink",
    "LOCK_LOOKUP_NS",
]

#: The execution engines a controller can be built with, equivalence-
#: ordered: ``scalar`` is the reference loop, ``bulk`` chunks quiet ACT
#: runs between scalar boundaries, ``events`` fast-forwards whole
#: multi-tick epochs (see :mod:`repro.controller.events`).  All three
#: produce bit-identical payloads.  Canonically defined in
#: :mod:`repro.engines`; re-exported here under the controller's
#: historical name.
ENGINES = EXECUTION_ENGINES


class _ListSink:
    """Collects full per-request results (the ``execute_batch`` mode)."""

    __slots__ = ("controller", "results")

    def __init__(self, controller: "MemoryController"):
        self.controller = controller
        self.results: list[RequestResult] = []

    def add(self, result: RequestResult) -> None:
        """Collect one scalar-path result (already logged by ``execute``)."""
        self.results.append(result)

    def add_run(
        self,
        requests: Sequence[MemRequest],
        start: int,
        count: int,
        status: Status,
        latency_ns: float,
        defense_ns: float,
        physical: int | None,
    ) -> None:
        """Materialize one bulk run as ``count`` per-request results."""
        chunk = [
            RequestResult(
                requests[k],
                status,
                latency_ns=latency_ns,
                defense_ns=defense_ns,
                physical_row=physical,
            )
            for k in range(start, start + count)
        ]
        if self.controller.results_log_enabled:
            self.controller.results.extend(chunk)
        self.results.extend(chunk)


class SummarySink:
    """Reduces the stream to one :class:`RunSummary` -- no per-request
    allocation; float totals keep the scalar in-order fold."""

    __slots__ = ("summary",)

    def __init__(self) -> None:
        self.summary = RunSummary()

    def add(self, result: RequestResult) -> None:
        """Fold one result into the running :class:`RunSummary`."""
        summary = self.summary
        if result.status is Status.BLOCKED:
            summary.blocked += 1
        else:
            summary.issued += 1
        summary.latency_ns += result.latency_ns
        summary.defense_ns += result.defense_ns
        if result.flips:
            summary.flips.extend(result.flips)

    def add_run(
        self,
        requests: Sequence[MemRequest],
        start: int,
        count: int,
        status: Status,
        latency_ns: float,
        defense_ns: float,
        physical: int | None,
    ) -> None:
        """Fold one bulk run into the summary without materializing it.

        The float sums advance via :func:`walk_add_many`, replaying the
        scalar left-to-right addition order bit-for-bit.
        """
        summary = self.summary
        if status is Status.BLOCKED:
            summary.blocked += count
        else:
            summary.issued += count
        summary.latency_ns, summary.defense_ns = walk_add_many(
            (summary.latency_ns, summary.defense_ns),
            (latency_ns, defense_ns),
            count,
        )


def make_summary_sink() -> "SummarySink":
    """A fresh summary-mode result sink for :meth:`MemoryController.
    execute_stream` callers (the sharded serving system feeds several
    controllers into one); read the reduced outcome from ``.summary``."""
    return SummarySink()


class MemoryController:
    """Order-preserving request executor with defense hooks."""

    def __init__(
        self,
        device: DRAMDevice,
        defense: Defense | None = None,
        locker: "DRAMLocker | None" = None,
        engine: str = "bulk",
    ):
        resolve_engine(engine)
        self.device = device
        self.defense = defense
        self.locker = locker
        self.engine = engine
        if defense is not None:
            defense.attach(device)
        self.results_log_enabled = False
        self.results: list[RequestResult] = []

    # ------------------------------------------------------------------
    # Convenience entry points
    # ------------------------------------------------------------------
    def read(
        self,
        row: int,
        column: int = 0,
        size: int = 64,
        privileged: bool = False,
    ) -> RequestResult:
        """Execute one READ of ``row`` (convenience wrapper)."""
        return self.execute(
            MemRequest(Kind.READ, row, column, size, privileged=privileged)
        )

    def write(
        self,
        row: int,
        column: int = 0,
        size: int = 64,
        privileged: bool = False,
    ) -> RequestResult:
        """Execute one WRITE to ``row`` (convenience wrapper)."""
        return self.execute(
            MemRequest(Kind.WRITE, row, column, size, privileged=privileged)
        )

    def hammer(self, row: int, count: int = 1) -> list[RequestResult]:
        """Issue ``count`` attacker activations (ACT+PRE) of one row.

        The request stream is a :class:`RequestRun` -- one shared
        request object, O(1) memory before execution -- and results
        still arrive one per activation.  Prefer :meth:`hammer_run`
        when only the issued/blocked tallies matter.
        """
        return self.execute_batch(
            RequestRun(MemRequest(Kind.ACT, row, privileged=False), count)
        )

    def hammer_run(self, row: int, count: int = 1) -> RunSummary:
        """Summary-mode :meth:`hammer`: same execution, same device
        state, but no per-activation result objects."""
        return self.execute_run(
            MemRequest(Kind.ACT, row, privileged=False), count
        )

    def run(self, requests: Iterable[MemRequest]) -> list[RequestResult]:
        """Execute a request stream in order."""
        return [self.execute(request) for request in requests]

    # ------------------------------------------------------------------
    # Core execution
    # ------------------------------------------------------------------
    def execute(self, request: MemRequest) -> RequestResult:
        """Execute one request on the scalar reference path.

        This is the semantics every fast engine is held to: locker
        lookup/blocking, defense ``on_activate`` dispatch, timing and
        energy charges, RowHammer accounting, and one
        :class:`RequestResult` -- request at a time.
        """
        device = self.device
        timing = device.timing
        physical = request.row
        defense_ns = 0.0
        swapped = False

        # --- DRAM-Locker request path -------------------------------
        if self.locker is not None:
            decision = self.locker.on_request(request)
            defense_ns += decision.extra_ns
            if not decision.allowed:
                device.advance(decision.extra_ns)
                device.stats.blocked_requests += 1
                device.stats.defense_ns += decision.extra_ns
                tel = obs.ACTIVE
                if tel is not None:
                    tel.metrics.inc(
                        "controller.blocked_requests", engine=self.engine
                    )
                    tel.audit.emit(
                        "locker-block",
                        now_ns=device.now_ns,
                        row=request.row,
                        count=1,
                    )
                result = RequestResult(
                    request,
                    Status.BLOCKED,
                    latency_ns=decision.extra_ns,
                    defense_ns=decision.extra_ns,
                    physical_row=None,
                )
                self._log(result)
                return result
            physical = decision.physical_row
            swapped = decision.swapped

        # --- baseline defense translation ---------------------------
        if self.defense is not None:
            physical = self.defense.translate(physical)

        # --- DDR timing + device commands ---------------------------
        addr = device.mapper.row_address(physical)
        bank = device.banks[addr.bank]
        bursts = max(1, math.ceil(request.size / 64))
        flips = []
        row_hit = bank.open_row == physical and request.kind is not Kind.ACT

        if request.kind is Kind.ACT:
            # Closed-row hammering pattern: ACT then immediate PRE.
            service_ns = timing.trc
            flips += device.activate(physical)
            defense_ns += self._defense_hook(physical)
            device.precharge(addr.bank)
        elif row_hit:
            service_ns = timing.row_hit_ns + (bursts - 1) * timing.tccd
            device.stats.row_hits += 1
        else:
            service_ns = timing.trcd + timing.tcl + timing.tbl
            service_ns += (bursts - 1) * timing.tccd
            if bank.open_row is not None:
                service_ns += timing.trp
                device.precharge(addr.bank)
            device.stats.row_misses += 1
            flips += device.activate(physical)
            defense_ns += self._defense_hook(physical)

        if request.kind is Kind.READ:
            device.read_burst_run(physical, request.column, bursts)
        elif request.kind is Kind.WRITE:
            device.write_burst_run(
                physical, request.column, bursts, np.zeros(64, dtype=np.uint8)
            )

        device.advance(service_ns + defense_ns)
        device.stats.busy_ns += service_ns
        device.stats.defense_ns += defense_ns

        result = RequestResult(
            request,
            Status.DONE,
            latency_ns=service_ns + defense_ns,
            defense_ns=defense_ns,
            physical_row=physical,
            row_hit=row_hit,
            swapped=swapped,
            flips=flips,
        )
        self._log(result)
        return result

    # ------------------------------------------------------------------
    # Batched / summary execution
    # ------------------------------------------------------------------
    def execute_batch(
        self, requests: Sequence[MemRequest]
    ) -> list[RequestResult]:
        """Execute a request stream in order through the batched engine.

        Returns exactly what ``[self.execute(r) for r in requests]``
        would: same results, same stats, same device, defense, and
        locker state.  Runs of identical attacker activations are
        accounted in bulk between the chunk boundaries where state can
        change; everything else takes the scalar path.
        """
        sink = _ListSink(self)
        self._drain(requests, sink)
        return sink.results

    def execute_summary(self, requests: Sequence[MemRequest]) -> RunSummary:
        """Execute a request stream through the batched engine, reduced
        to one :class:`RunSummary` -- device/defense/locker state is
        identical to :meth:`execute_batch`, but no per-request results
        are materialized (bulk chunks allocate nothing per request).

        The results log, when enabled, only sees the scalar boundary
        steps in this mode; use :meth:`execute_batch` for full traces.
        """
        sink = SummarySink()
        self._drain(requests, sink)
        return sink.summary

    def execute_run(self, request: MemRequest, count: int) -> RunSummary:
        """Summary-mode execution of ``count`` repetitions of one
        request: the zero-allocation accounting path of the hammer hot
        loop (O(1) memory in, O(chunks) work out)."""
        return self.execute_summary(RequestRun(request, count))

    def execute_stream(self, requests: Sequence[MemRequest], sink) -> None:
        """Execute a request stream into a caller-supplied result sink.

        The sink protocol is the one the built-in list/summary sinks
        implement: ``add(result)`` for each scalar step and
        ``add_run(requests, start, count, status, latency_ns,
        defense_ns, physical)`` for each bulk chunk (``count`` requests
        sharing one per-step latency).  This is how the serving
        subsystem's SLA accountant observes per-request latencies --
        bulk chunks arrive as ``(latency, count)`` pairs -- without the
        engine ever materializing per-request results.
        """
        self._drain(requests, sink)

    def _drain(self, requests: Sequence[MemRequest], sink) -> None:
        """Feed a request stream through ``sink`` via the configured
        engine, finding bulkable ACT runs when ``engine`` is ``'bulk'``
        or ``'events'`` (the engines differ only in how those runs are
        committed; everything else shares the scalar path)."""
        if self.engine == "scalar":
            if isinstance(requests, RequestRun):
                request = requests.request
                for _ in range(len(requests)):
                    sink.add(self.execute(request))
            else:
                for request in requests:
                    sink.add(self.execute(request))
            return
        act_run = (
            self._execute_act_run_events
            if self.engine == "events"
            else self._execute_act_run
        )
        if isinstance(requests, RequestRun):
            # Run-length input: the whole stream is one known run, no
            # per-element scan needed.
            total = len(requests)
            if total > 1 and requests.request.kind is Kind.ACT:
                act_run(requests, 0, total, sink)
            else:
                for index in range(total):
                    sink.add(self.execute(requests.request))
            return
        if not isinstance(requests, (list, tuple)):
            requests = list(requests)
        total = len(requests)
        index = 0
        while index < total:
            request = requests[index]
            if request.kind is Kind.ACT:
                end = index + 1
                row, privileged = request.row, request.privileged
                while end < total:
                    peer = requests[end]
                    if (
                        peer.kind is not Kind.ACT
                        or peer.row != row
                        or peer.privileged != privileged
                    ):
                        break
                    end += 1
                if end - index > 1:
                    act_run(requests, index, end, sink)
                    index = end
                    continue
            sink.add(self.execute(request))
            index += 1

    def _execute_act_run_events(
        self,
        requests: Sequence[MemRequest],
        start: int,
        end: int,
        sink,
    ) -> None:
        """The ``engine="events"`` ACT-run executor: the fast-forward
        core of :mod:`repro.controller.events`, which fuses whole
        multi-tick epochs into one accumulate pass."""
        events_core.execute_act_run(self, requests, start, end, sink)

    def _execute_act_run(
        self,
        requests: Sequence[MemRequest],
        start: int,
        end: int,
        sink,
    ) -> None:
        """Drain ``requests[start:end]`` -- identical ACTs of one row --
        alternating exact bulk chunks with scalar steps at every point
        where a refresh tick, threshold crossing, locker deadline, or
        defense event could change the outcome."""
        device = self.device
        refresh = device.refresh
        rowhammer = device.rowhammer
        locker = self.locker
        defense = self.defense
        trc = device.timing.trc
        row = requests[start].row
        privileged = requests[start].privileged

        index = start
        while index < end:
            if locker is not None:
                pending_bound = locker.quiet_span()
                if pending_bound <= 0:
                    sink.add(self.execute(requests[index]))
                    index += 1
                    continue
                physical, locked, exposed = locker.classify(row)
                if locked and not exposed:
                    if privileged:
                        # Unlock-SWAP path: strictly scalar, ordering is
                        # part of the defense semantics.
                        sink.add(self.execute(requests[index]))
                        index += 1
                        continue
                    count = min(end - index, pending_bound)
                    self._bulk_blocked(requests, index, count, sink)
                    index += count
                    continue
                lookup_hit = locked  # exposed rows still hit the table
                lock_ns = LOCK_LOOKUP_NS
            else:
                physical = row
                pending_bound = end - index
                lookup_hit = False
                lock_ns = 0.0

            # Baseline defense: translate, then ask the defense how far
            # ahead it stays uniform.  Non-opted-in defenses (plan is
            # None) keep the request-at-a-time scalar path.
            defense_extra = 0.0
            limit = min(end - index, pending_bound)
            if defense is not None:
                physical = defense.translate(physical)
                plan = defense.plan_activate_run(physical, limit)
                if plan is None or plan.count <= 0:
                    sink.add(self.execute(requests[index]))
                    index += 1
                    continue
                limit = min(limit, plan.count)
                defense_extra = plan.extra_ns

            extra_ns = lock_ns + defense_extra  # the scalar fold order
            step_ns = trc + extra_ns
            # One-step safety margin keeps every refresh tick and every
            # threshold crossing on the scalar path.
            count = min(
                limit,
                refresh.quiet_steps(device.now_ns, step_ns),
                rowhammer.quiet_span(physical),
            )
            if count <= 0:
                sink.add(self.execute(requests[index]))
                index += 1
                continue
            self._bulk_acts(
                requests, index, count, physical, lookup_hit, extra_ns,
                step_ns, sink,
            )
            index += count

    def _bulk_acts(
        self,
        requests: Sequence[MemRequest],
        start: int,
        count: int,
        physical: int,
        lookup_hit: bool,
        extra_ns: float,
        step_ns: float,
        sink,
    ) -> None:
        """Account ``count`` allowed ACT+PRE cycles of ``physical`` in
        bulk.  The caller guarantees no refresh tick, no threshold
        crossing, no locker deadline, and no defense event falls inside
        the chunk, so every accumulator advances by a constant per-step
        value -- replayed in the scalar addition order by
        :func:`~repro.dram.stats.walk_add_many`."""
        device = self.device
        stats = device.stats
        breakdown = stats.energy
        energy = device.energy
        trc = device.timing.trc
        now_start = device.now_ns

        (
            breakdown.activate,
            breakdown.precharge,
            breakdown.background,
            stats.busy_ns,
            stats.defense_ns,
            device.now_ns,
        ) = walk_add_many(
            (
                breakdown.activate,
                breakdown.precharge,
                breakdown.background,
                stats.busy_ns,
                stats.defense_ns,
                device.now_ns,
            ),
            (
                energy.e_act,
                energy.e_pre,
                energy.background_nj(step_ns),
                trc,
                extra_ns,
                step_ns,
            ),
            count,
        )
        stats.activates += count
        stats.precharges += count
        device.rowhammer.charge_activations(physical, count)
        # Every scalar ACT ends with a precharge of its own bank.
        device.banks[device.mapper.row_address(physical).bank].open_row = None
        if self.locker is not None:
            self.locker.charge_bulk(count, lookup_hit)
        if self.defense is not None:
            self.defense.on_activate_run(physical, count, now_start, step_ns)

        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("controller.act_runs", engine=self.engine)
            tel.metrics.inc("controller.acts", count, engine=self.engine)
            tel.metrics.set(
                "controller.defense_ns", stats.defense_ns, engine=self.engine
            )

        sink.add_run(
            requests,
            start,
            count,
            Status.DONE,
            latency_ns=step_ns,
            defense_ns=extra_ns,
            physical=physical,
        )

    def _bulk_blocked(
        self,
        requests: Sequence[MemRequest],
        start: int,
        count: int,
        sink,
    ) -> None:
        """Account ``count`` blocked (locked-row, unprivileged) requests
        in bulk.  Blocked requests touch no counters and no banks, so
        deferring the refresh catch-up to the end of the chunk leaves
        every observable identical to the scalar loop."""
        device = self.device
        stats = device.stats
        (
            stats.energy.background,
            stats.defense_ns,
            device.now_ns,
        ) = walk_add_many(
            (stats.energy.background, stats.defense_ns, device.now_ns),
            (
                device.energy.background_nj(LOCK_LOOKUP_NS),
                LOCK_LOOKUP_NS,
                LOCK_LOOKUP_NS,
            ),
            count,
        )
        stats.blocked_requests += count
        self.locker.charge_bulk_blocked(count)
        device.refresh.tick(device.now_ns)

        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("controller.blocked_runs", engine=self.engine)
            tel.metrics.inc(
                "controller.blocked_requests", count, engine=self.engine
            )
            tel.audit.emit(
                "locker-block",
                now_ns=device.now_ns,
                row=requests[start].row,
                count=count,
            )

        sink.add_run(
            requests,
            start,
            count,
            Status.BLOCKED,
            latency_ns=LOCK_LOOKUP_NS,
            defense_ns=LOCK_LOOKUP_NS,
            physical=None,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _defense_hook(self, physical: int) -> float:
        if self.defense is None:
            return 0.0
        action = self.defense.on_activate(physical, self.device.now_ns)
        return action.extra_ns

    def _log(self, result: RequestResult) -> None:
        if self.results_log_enabled:
            self.results.append(result)
