"""Memory controller: requests, execution, sequence, scheduling."""

from .controller import LOCK_LOOKUP_NS, MemoryController
from .request import (
    Kind,
    MemRequest,
    RequestResult,
    RequestRun,
    RunSummary,
    Status,
)
from .scheduler import FRFCFSScheduler
from .sequence import Sequence, SequenceReport

__all__ = [
    "FRFCFSScheduler",
    "Kind",
    "LOCK_LOOKUP_NS",
    "MemRequest",
    "MemoryController",
    "RequestResult",
    "RequestRun",
    "RunSummary",
    "Sequence",
    "SequenceReport",
    "Status",
]
