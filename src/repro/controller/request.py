"""Memory requests and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from ..dram.rowhammer import BitFlip

__all__ = ["Kind", "Status", "MemRequest", "RequestResult"]


class Kind(Enum):
    """Request type.

    ``ACT`` is a bare activate + precharge pair -- the RowHammer attack
    primitive (a read whose data nobody consumes).
    """

    READ = auto()
    WRITE = auto()
    ACT = auto()


class Status(Enum):
    DONE = auto()
    BLOCKED = auto()


@dataclass
class MemRequest:
    """One entry of the controller's instruction Sequence.

    Attributes:
        kind: READ / WRITE / ACT.
        row: *Logical* global row index; defenses may remap it.
        column: Starting byte within the row.
        size: Bytes transferred (rounded up to 64-byte bursts).
        privileged: True for the victim program's own accesses, which
            are entitled to trigger a DRAM-Locker unlock-SWAP.  The
            attacker's user-level requests are unprivileged and are
            simply skipped when they hit a locked row.
        tag: Free-form label for traces.
    """

    kind: Kind
    row: int
    column: int = 0
    size: int = 64
    privileged: bool = False
    tag: str = ""


@dataclass
class RequestResult:
    """Outcome of executing one request."""

    request: MemRequest
    status: Status
    latency_ns: float = 0.0
    defense_ns: float = 0.0
    physical_row: int | None = None
    row_hit: bool = False
    swapped: bool = False
    flips: list[BitFlip] = field(default_factory=list)

    @property
    def blocked(self) -> bool:
        return self.status is Status.BLOCKED
