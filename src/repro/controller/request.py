"""Memory requests and results.

Besides the scalar :class:`MemRequest` / :class:`RequestResult` pair,
this module holds the two run-length types of the bulk engine:

* :class:`RequestRun` -- ``count`` repetitions of one request as an
  O(1)-memory sequence, so issuing a million activations allocates one
  object instead of a million-slot list;
* :class:`RunSummary` -- the reduced outcome of a summary-mode
  execution (``MemoryController.execute_run`` /
  ``execute_summary``): issued/blocked tallies, in-order latency and
  defense-time sums, and the observed bit-flips, with no per-request
  ``RequestResult`` ever materialized.
"""

from __future__ import annotations

from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass, field
from enum import Enum, auto

from ..dram.rowhammer import BitFlip

__all__ = [
    "Kind",
    "Status",
    "MemRequest",
    "RequestResult",
    "RequestRun",
    "RunSummary",
]


class Kind(Enum):
    """Request type.

    ``ACT`` is a bare activate + precharge pair -- the RowHammer attack
    primitive (a read whose data nobody consumes).
    """

    READ = auto()
    WRITE = auto()
    ACT = auto()


class Status(Enum):
    """Outcome of one request: served or locker-blocked."""

    DONE = auto()
    BLOCKED = auto()


@dataclass
class MemRequest:
    """One entry of the controller's instruction Sequence.

    Attributes:
        kind: READ / WRITE / ACT.
        row: *Logical* global row index; defenses may remap it.
        column: Starting byte within the row.
        size: Bytes transferred (rounded up to 64-byte bursts).
        privileged: True for the victim program's own accesses, which
            are entitled to trigger a DRAM-Locker unlock-SWAP.  The
            attacker's user-level requests are unprivileged and are
            simply skipped when they hit a locked row.
        tag: Free-form label for traces.
    """

    kind: Kind
    row: int
    column: int = 0
    size: int = 64
    privileged: bool = False
    tag: str = ""


@dataclass
class RequestResult:
    """Outcome of executing one request."""

    request: MemRequest
    status: Status
    latency_ns: float = 0.0
    defense_ns: float = 0.0
    physical_row: int | None = None
    row_hit: bool = False
    swapped: bool = False
    flips: list[BitFlip] = field(default_factory=list)

    @property
    def blocked(self) -> bool:
        """True when the locker refused the request."""
        return self.status is Status.BLOCKED


class RequestRun(_SequenceABC):
    """``count`` repetitions of one request, in O(1) memory.

    Behaves as a read-only sequence (so it drops into every
    ``execute_batch`` call site), but the controller recognizes it and
    skips the per-element run-detection scan.
    """

    __slots__ = ("request", "count")

    def __init__(self, request: MemRequest, count: int):
        if count < 0:
            raise ValueError("count must be >= 0")
        self.request = request
        self.count = count

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return RequestRun(self.request, len(range(*index.indices(self.count))))
        if index < 0:
            index += self.count
        if not 0 <= index < self.count:
            raise IndexError(index)
        return self.request

    def __repr__(self) -> str:
        return f"RequestRun({self.request!r} x {self.count})"


@dataclass
class RunSummary:
    """Reduced outcome of a summary-mode execution.

    Float totals are accumulated in request order (bulk chunks replay
    the same fold via the sequential-accumulator helpers), so they
    equal the in-order Python sum over the scalar path's per-request
    results bit-for-bit.
    """

    issued: int = 0
    blocked: int = 0
    latency_ns: float = 0.0
    defense_ns: float = 0.0
    flips: list[BitFlip] = field(default_factory=list)

    @property
    def requested(self) -> int:
        """Total requests the run covered (issued + blocked)."""
        return self.issued + self.blocked
