"""The instruction Sequence.

The paper stores both the program's R/W instructions and the attacker's
requests in a *Sequence*; DRAM-Locker consults the lock-table per entry
and skips locked ones.  This class keeps that bookkeeping explicit: it
records what was submitted, what executed, and what was skipped, and it
reports the latency the skipped instructions *would* have cost -- the
quantity behind the paper's "invalid instructions are eliminated" claim.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from .controller import MemoryController
from .request import Kind, MemRequest, RequestResult

__all__ = ["SequenceReport", "Sequence"]


@dataclass
class SequenceReport:
    """Aggregate outcome of draining one sequence."""

    executed: int = 0
    blocked: int = 0
    total_latency_ns: float = 0.0
    blocked_latency_saved_ns: float = 0.0
    results: list[RequestResult] = field(default_factory=list)

    @property
    def submitted(self) -> int:
        """Total requests drained (executed + blocked)."""
        return self.executed + self.blocked


class Sequence:
    """FIFO of memory requests bound to one controller."""

    def __init__(self, controller: MemoryController):
        self.controller = controller
        self._queue: deque[MemRequest] = deque()

    def push(self, request: MemRequest) -> None:
        """Queue one request."""
        self._queue.append(request)

    def extend(self, requests: Iterable[MemRequest]) -> None:
        """Queue a request stream in order."""
        self._queue.extend(requests)

    def __len__(self) -> int:
        return len(self._queue)

    def drain(self) -> SequenceReport:
        """Execute everything queued, in order."""
        report = SequenceReport()
        timing = self.controller.device.timing
        while self._queue:
            request = self._queue.popleft()
            result = self.controller.execute(request)
            report.results.append(result)
            report.total_latency_ns += result.latency_ns
            if result.blocked:
                report.blocked += 1
                # What the skipped instruction would have cost: at least
                # a full row cycle (the attacker pattern is closed-row).
                would_have = timing.trc if request.kind is Kind.ACT else timing.row_miss_ns
                report.blocked_latency_saved_ns += would_have - result.latency_ns
            else:
                report.executed += 1
        return report
