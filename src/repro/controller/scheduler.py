"""Request scheduling policies.

The controller executes in order (FCFS); :class:`FRFCFSScheduler`
implements the classic first-ready, first-come-first-served reorder
within a bounded window: requests that hit an open row are promoted
ahead of row misses, subject to a starvation cap.  The DNN inference
trace replayer uses it to squeeze row-buffer locality out of weight
streaming, like a real controller would.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from .controller import MemoryController
from .request import MemRequest, RequestResult

__all__ = ["FRFCFSScheduler"]


class FRFCFSScheduler:
    """First-ready FCFS reordering over a sliding window."""

    def __init__(
        self,
        controller: MemoryController,
        window: int = 16,
        starvation_cap: int = 8,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.controller = controller
        self.window = window
        self.starvation_cap = starvation_cap

    def run(self, requests: Iterable[MemRequest]) -> list[RequestResult]:
        """Execute ``requests`` with bounded row-hit-first reordering."""
        pending: deque[tuple[MemRequest, int]] = deque()  # (request, skips)
        results: list[RequestResult] = []
        stream = iter(requests)
        exhausted = False

        while True:
            while not exhausted and len(pending) < self.window:
                try:
                    pending.append((next(stream), 0))
                except StopIteration:
                    exhausted = True
            if not pending:
                break
            index = self._pick(pending)
            request, _ = pending[index]
            del pending[index]
            if index != 0:
                pending = deque(
                    (req, skips + 1 if position < index else skips)
                    for position, (req, skips) in enumerate(pending)
                )
            results.append(self.controller.execute(request))
        return results

    def _pick(self, pending: deque[tuple[MemRequest, int]]) -> int:
        """Oldest row-hit if nobody is starving, else the head."""
        head_request, head_skips = pending[0]
        if head_skips >= self.starvation_cap:
            return 0
        device = self.controller.device
        for index, (request, _) in enumerate(pending):
            physical = request.row
            if self.controller.locker is not None:
                physical = self.controller.locker.translate(physical)
            if self.controller.defense is not None:
                physical = self.controller.defense.translate(physical)
            addr = device.mapper.row_address(physical)
            if device.banks[addr.bank].open_row == physical:
                return index
        return 0
