"""CACTI-like analytical cost model for SRAM/CAM/DRAM structures.

The paper feeds Cadence/Design-Compiler results into a modified CACTI;
here an analytical model plays that role.  It is deliberately simple --
cell area in F^2 scaled by technology, log-depth access latency, and a
sqrt-capacity wordline/bitline energy term -- but it is sufficient to
*derive* the paper's headline cost claims rather than assert them:

* a 56 KB lock-table at 45 nm costs ~0.2 mm^2, which against a 16-chip
  32 GB DDR4 DIMM is ~0.02 % area overhead (Table I's DRAM-Locker row);
* its access latency lands near a nanosecond, which is the
  ``LOCK_LOOKUP_NS`` the controller charges per request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dram.config import DRAMConfig

__all__ = [
    "MemoryEstimate",
    "sram_estimate",
    "cam_estimate",
    "dram_die_area_mm2",
    "area_overhead_pct",
    "lock_table_estimate",
]

#: 6T SRAM cell size in F^2 (feature-size squared), typical foundry value.
SRAM_CELL_F2 = 146.0
#: CAM (search-capable) cells are roughly twice an SRAM cell.
CAM_CELL_F2 = 292.0
#: Array efficiency: fraction of macro area that is cells (vs periphery).
ARRAY_EFFICIENCY = 0.7
#: A commodity 16 Gb DDR4 die: capacity and die size.
DRAM_CHIP_CAPACITY_BYTES = 2 * 1024 ** 3
DRAM_CHIP_DIE_MM2 = 60.7


@dataclass(frozen=True)
class MemoryEstimate:
    """Analytical area/latency/energy estimate for one memory macro."""

    kind: str
    size_bytes: int
    tech_nm: float
    area_mm2: float
    access_ns: float
    access_energy_pj: float


def _cell_area_um2(cell_f2: float, tech_nm: float) -> float:
    feature_um = tech_nm * 1e-3
    return cell_f2 * feature_um * feature_um


def _estimate(kind: str, cell_f2: float, size_bytes: int, tech_nm: float) -> MemoryEstimate:
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    bits = size_bytes * 8
    area_um2 = bits * _cell_area_um2(cell_f2, tech_nm) / ARRAY_EFFICIENCY
    size_kib = max(size_bytes / 1024.0, 0.0625)
    # Latency: wire + decode, growing with log2 of capacity.
    access_ns = 0.25 + 0.11 * math.log2(size_kib * 16)
    # Energy: bitline term grows with sqrt(capacity); CAM searches all.
    if kind == "CAM":
        access_energy_pj = 0.8 * size_kib  # parallel search touches all rows
    else:
        access_energy_pj = 0.45 + 0.35 * math.sqrt(size_kib)
    return MemoryEstimate(
        kind=kind,
        size_bytes=size_bytes,
        tech_nm=tech_nm,
        area_mm2=area_um2 * 1e-6,
        access_ns=access_ns,
        access_energy_pj=access_energy_pj,
    )


def sram_estimate(size_bytes: int, tech_nm: float = 45.0) -> MemoryEstimate:
    """Area/latency/energy of an SRAM macro."""
    return _estimate("SRAM", SRAM_CELL_F2, size_bytes, tech_nm)


def cam_estimate(size_bytes: int, tech_nm: float = 45.0) -> MemoryEstimate:
    """Area/latency/energy of a content-addressable macro."""
    return _estimate("CAM", CAM_CELL_F2, size_bytes, tech_nm)


def dram_die_area_mm2(config: DRAMConfig, tech_nm: float = 45.0) -> float:
    """Total die silicon of the configured DRAM system.

    Modelled as the number of commodity 16 Gb dies needed for the
    capacity (at least one), times the die size -- which is the
    denominator the paper's area-overhead percentages are quoted
    against.  ``tech_nm`` is accepted for signature symmetry; commodity
    DRAM dies are taken as-is.
    """
    chips = max(1, math.ceil(config.capacity_bytes / DRAM_CHIP_CAPACITY_BYTES))
    return chips * DRAM_CHIP_DIE_MM2


def area_overhead_pct(
    structure: MemoryEstimate, config: DRAMConfig, tech_nm: float = 45.0
) -> float:
    """Structure area as a percentage of the DRAM system's die area."""
    return 100.0 * structure.area_mm2 / dram_die_area_mm2(config, tech_nm)


def lock_table_estimate(
    lock_table_bytes: int = 56 * 1024,
    config: DRAMConfig | None = None,
    tech_nm: float = 45.0,
) -> tuple[MemoryEstimate, float]:
    """The DRAM-Locker lock-table's cost against the Table I config.

    Returns the SRAM estimate and its area overhead percentage; the
    latter should land near the paper's 0.02 %.
    """
    config = config or DRAMConfig.ddr4_32gb()
    estimate = sram_estimate(lock_table_bytes, tech_nm)
    return estimate, area_overhead_pct(estimate, config, tech_nm)
