"""Analytical architecture-level cost model (the CACTI stand-in)."""

from .cacti import (
    MemoryEstimate,
    area_overhead_pct,
    cam_estimate,
    dram_die_area_mm2,
    lock_table_estimate,
    sram_estimate,
)

__all__ = [
    "MemoryEstimate",
    "area_overhead_pct",
    "cam_estimate",
    "dram_die_area_mm2",
    "lock_table_estimate",
    "sram_estimate",
]
