"""Structured stderr logging for the CLIs.

``--log-level`` on ``python -m repro.serve`` and ``python -m
repro.eval`` routes the ``repro`` logger hierarchy through a jsonl
formatter on stderr: one ``{"ts", "level", "logger", "msg"}`` object
per line, timestamped in UTC.  Without the flag nothing is configured
and the CLIs stay silent-until-exit, so exit codes and stdout output
are byte-identical either way (``tests/test_serving_live.py`` pins the
exit codes).
"""

from __future__ import annotations

import json
import logging
import sys
import time

__all__ = ["JsonlFormatter", "LOG_LEVELS", "configure_logging"]

LOG_LEVELS = ("debug", "info", "warning", "error")


class JsonlFormatter(logging.Formatter):
    """One JSON object per record: ``{"ts", "level", "logger", "msg"}``."""

    def format(self, record: logging.LogRecord) -> str:
        return json.dumps(
            {
                "ts": time.strftime(
                    "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
                )
                + f".{int(record.msecs):03d}Z",
                "level": record.levelname,
                "logger": record.name,
                "msg": record.getMessage(),
            },
            sort_keys=True,
        )


def configure_logging(level: str | None) -> None:
    """Install the jsonl stderr handler on the ``repro`` logger.

    ``level=None`` (the default: ``--log-level`` not given) is a no-op,
    preserving the CLIs' silent behaviour exactly.
    """
    if level is None:
        return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(JsonlFormatter())
    logger = logging.getLogger("repro")
    logger.handlers[:] = [handler]
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False
