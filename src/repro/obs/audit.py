"""The security audit stream: an ordered log of defense-relevant events.

Every event is one dict with a stable schema:

* ``kind`` -- the event family (``trh-crossing``, ``locker-block``,
  ``locker-exposure``, ``locker-swap-failed``, ``locker-restore-failed``,
  ``dnn-defender-swap``, ``radar-recovery``, ``quarantine``, ``shed``);
* ``seq`` -- position in the canonical order (assigned by
  :meth:`AuditStream.snapshot`);
* ``now_ns`` -- the *simulated* clock of the emitting device, when the
  event has one (never wall clock: the stream must be deterministic);
* context fields installed by the emitting layer: ``slice`` (serving
  slice index, via :meth:`set_field`) and ``channel`` (via
  :meth:`context` around channel batch execution);
* event-specific fields (``row``, ``count``, ``group``, ``mode``, ...).

**Engine invariance.**  The bulk and events engines interleave
*channels* differently (the events engine defers slice work into a
``SystemEventQueue`` drained slowest-channel-first), but per-channel
execution order -- and every per-channel device clock -- is pinned
identical by the engine-equivalence contract.  :meth:`snapshot`
therefore orders events canonically: a stable sort by
``(slice, channel)``, with channel-less events (health probes, sheds,
quarantines -- all emitted at deterministic points of the slice loop)
sorting after that slice's channel events.  Within one ``(slice,
channel)`` cell the arrival order is already identical across engines,
so the canonical snapshot is too -- which
``tests/test_telemetry_equivalence.py`` pins.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["AuditStream"]

#: Channel-less events sort after any real channel within their slice.
_NO_CHANNEL = 1 << 30


class AuditStream:
    """Ordered defense-event log with layered context fields."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._context: dict = {}

    def emit(self, kind: str, now_ns: float | None = None, **fields) -> None:
        """Append one event, merging the active context fields."""
        event = {"kind": kind}
        if now_ns is not None:
            event["now_ns"] = int(now_ns)
        event.update(self._context)
        event.update(fields)
        self.events.append(event)

    def set_field(self, key: str, value) -> None:
        """Install a persistent context field (e.g. the serving slice)."""
        self._context[key] = value

    @contextmanager
    def context(self, **fields):
        """Scoped context fields (e.g. ``channel=`` around a batch)."""
        saved = {key: self._context.get(key, _MISSING) for key in fields}
        self._context.update(fields)
        try:
            yield
        finally:
            for key, value in saved.items():
                if value is _MISSING:
                    self._context.pop(key, None)
                else:
                    self._context[key] = value

    def __len__(self) -> int:
        return len(self.events)

    def snapshot(self) -> list[dict]:
        """The canonical, engine-invariant event order (see module
        docstring), with ``seq`` assigned to the canonical position."""
        ordered = sorted(
            self.events,
            key=lambda event: (
                event.get("slice", -1),
                event.get("channel", _NO_CHANNEL),
            ),
        )
        return [
            {**event, "seq": seq} for seq, event in enumerate(ordered)
        ]

    def kind_counts(self) -> dict[str, int]:
        """Event tallies by ``kind`` (sorted; order-insensitive)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return dict(sorted(counts.items()))


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
