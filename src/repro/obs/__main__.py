"""``python -m repro.obs``: record, export, and inspect telemetry.

Subcommands:

* ``record`` -- run the demo serving cell (multi-tenant DRAM-Locker
  serving under a co-located attacker: training-free, seconds-scale,
  deterministic) with telemetry enabled and write all three streams to
  ``--out``: ``metrics.json``, ``audit.jsonl``, ``trace.jsonl``.
* ``export`` -- emit the trace in Chrome ``trace_event`` form (load the
  file in https://ui.perfetto.dev or ``chrome://tracing``) or as
  jsonl.  Reads a previously recorded ``trace.jsonl`` via ``--input``,
  or records the demo cell in-process when omitted.
* ``audit`` -- print the canonical audit stream as jsonl (optionally
  filtered by ``--kind``), or tally events per kind with ``--summary``.
  Reads ``--input audit.jsonl``, or records the demo cell.

Examples::

    python -m repro.obs record --out artifacts/obs
    python -m repro.obs export --format chrome --out trace.json
    python -m repro.obs audit --summary
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import Telemetry, enabled_scope
from .trace import chrome_trace, read_jsonl, write_jsonl

__all__ = ["main"]


def _add_demo_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--channels", type=int, default=2)
    parser.add_argument("--slices", type=int, default=8)
    parser.add_argument("--engine", default="bulk")
    parser.add_argument("--seed", type=int, default=0)


def _record_demo(args: argparse.Namespace) -> Telemetry:
    """One deterministic serving cell under telemetry."""
    from ..serving import ServingConfig, run_serving

    config = ServingConfig(
        tenants=3,
        channels=args.channels,
        slices=args.slices,
        ops_per_slice=4.0,
        colocated=True,
        engine=args.engine,
        seed=args.seed,
        defense="DRAM-Locker",
    )
    with enabled_scope() as telemetry:
        run_serving(config, protected=True)
    return telemetry


def _audit_events(args: argparse.Namespace) -> list[dict]:
    if getattr(args, "input", None):
        return read_jsonl(args.input)
    return _record_demo(args).audit.snapshot()


def _cmd_record(args: argparse.Namespace) -> int:
    telemetry = _record_demo(args)
    os.makedirs(args.out, exist_ok=True)
    metrics_path = os.path.join(args.out, "metrics.json")
    with open(metrics_path, "w", encoding="utf-8") as handle:
        json.dump(
            telemetry.metrics.snapshot(), handle, indent=2, sort_keys=True
        )
        handle.write("\n")
    audit_path = os.path.join(args.out, "audit.jsonl")
    write_jsonl(telemetry.audit.snapshot(), audit_path)
    trace_path = os.path.join(args.out, "trace.jsonl")
    write_jsonl(telemetry.trace.snapshot(), trace_path)
    print(
        f"recorded {telemetry.metrics.updates} metric update(s), "
        f"{len(telemetry.audit)} audit event(s), "
        f"{len(telemetry.trace.events)} trace event(s) -> {args.out}"
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    if args.input:
        events = read_jsonl(args.input)
    else:
        events = _record_demo(args).trace.snapshot()
    if args.format == "chrome":
        text = json.dumps(chrome_trace(events), sort_keys=True)
    else:
        text = "\n".join(
            json.dumps(event, sort_keys=True) for event in events
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
        print(f"{len(events)} trace event(s) -> {args.out}")
    else:
        print(text)
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    events = _audit_events(args)
    if args.kind:
        events = [event for event in events if event["kind"] == args.kind]
    if args.summary:
        counts: dict[str, int] = {}
        for event in events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        for kind, count in sorted(counts.items()):
            print(f"{kind:24s} {count}")
        print(f"{'total':24s} {len(events)}")
        return 0
    for event in events:
        print(json.dumps(event, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs")
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="record the demo cell's telemetry to --out"
    )
    _add_demo_args(record)
    record.add_argument("--out", required=True, help="output directory")
    record.set_defaults(func=_cmd_record)

    export = commands.add_parser(
        "export", help="export a trace (Chrome trace_event or jsonl)"
    )
    _add_demo_args(export)
    export.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome"
    )
    export.add_argument(
        "--input", default=None, help="trace.jsonl from a prior record"
    )
    export.add_argument("--out", default=None, help="file (default stdout)")
    export.set_defaults(func=_cmd_export)

    audit = commands.add_parser(
        "audit", help="print the canonical security audit stream"
    )
    _add_demo_args(audit)
    audit.add_argument(
        "--input", default=None, help="audit.jsonl from a prior record"
    )
    audit.add_argument("--kind", default=None, help="filter by event kind")
    audit.add_argument(
        "--summary", action="store_true", help="tally events per kind"
    )
    audit.set_defaults(func=_cmd_audit)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
