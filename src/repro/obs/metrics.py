"""Typed metrics registry: counters, gauges, histograms.

Instruments are registered by name plus sorted labels (channel, tenant,
defense, engine, ...) and snapshot to a deterministic dict, so two runs
of the same deterministic workload produce byte-identical snapshots
regardless of worker count or completion order.  Merge semantics make
per-cell snapshots recombinable in the parent:

* counters **sum** (event tallies),
* histogram bins **sum** (counting bins are mergeable by construction),
* gauges take the **max** (levels -- high-water marks survive merging).

Histograms reuse :class:`~repro.serving.sla.StreamingPercentiles` as
their counting-bin store, so a bulk chunk costs one ``observe`` and the
percentile arithmetic stays the one numpy-exact implementation the
serving layer already pins.

Nothing in this module touches simulation state: updating a metric
reads values the caller already computed.  The zero-overhead-when-
disabled contract lives one level up -- hot sites guard on
``repro.obs.ACTIVE`` and never reach this module when telemetry is off.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def instrument_key(name: str, labels: dict) -> str:
    """Canonical registry key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic event tally; merges across workers by summation."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written level; merges across workers by maximum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def high_water(self, value: float) -> None:
        """Keep the maximum of the written values."""
        if value > self.value:
            self.value = value


class Histogram:
    """Counting-bin distribution over a quantized value stream."""

    __slots__ = ("_percentiles",)

    def __init__(self) -> None:
        # Imported lazily: a module-level import would cycle
        # metrics -> serving.sla -> controller -> obs -> metrics.
        from ..serving.sla import StreamingPercentiles

        self._percentiles = StreamingPercentiles()

    def observe(self, value: float, count: int = 1) -> None:
        self._percentiles.add(value, count)

    @property
    def count(self) -> int:
        return self._percentiles.count

    def percentile(self, q: float) -> float:
        return self._percentiles.percentile(q)

    def bins(self) -> list[list]:
        """Sorted ``[value, count]`` pairs -- the mergeable snapshot."""
        return [
            [value, count]
            for value, count in sorted(self._percentiles._counts.items())
        ]


class MetricsRegistry:
    """Name- and label-addressed instruments with deterministic export.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by key and
    raise if the same key was registered as a different type.  The
    registry-level ``updates`` tally counts every instrument write --
    the hit count ``benchmarks/bench_obs.py`` uses to bound the
    disabled-path guard cost.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self.updates = 0

    def _get(self, kind: type, name: str, labels: dict):
        key = instrument_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = kind()
        elif type(instrument) is not kind:
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # Write-through helpers: one call per hot-site line, counted in
    # ``updates``.
    def inc(self, name: str, amount: int = 1, **labels) -> None:
        self._get(Counter, name, labels).inc(amount)
        self.updates += 1

    def set(self, name: str, value: float, **labels) -> None:
        self._get(Gauge, name, labels).set(value)
        self.updates += 1

    def high_water(self, name: str, value: float, **labels) -> None:
        self._get(Gauge, name, labels).high_water(value)
        self.updates += 1

    def observe(self, name: str, value: float, count: int = 1, **labels) -> None:
        self._get(Histogram, name, labels).observe(value, count)
        self.updates += 1

    def snapshot(self) -> dict:
        """Deterministic dict form: sorted keys, mergeable values."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for key in sorted(self._instruments):
            instrument = self._instruments[key]
            if isinstance(instrument, Counter):
                counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.value
            else:
                histograms[key] = {
                    "count": instrument.count,
                    "bins": instrument.bins(),
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "updates": self.updates,
        }

    @staticmethod
    def merge(snapshots: list[dict]) -> dict:
        """Fold per-cell/per-worker snapshots into one: counters and
        histogram bins sum, gauges take the max.  Deterministic for any
        input order (all folds are order-insensitive)."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        bins: dict[str, dict[float, int]] = {}
        updates = 0
        for snapshot in snapshots:
            for key, value in snapshot.get("counters", {}).items():
                counters[key] = counters.get(key, 0) + value
            for key, value in snapshot.get("gauges", {}).items():
                gauges[key] = max(gauges.get(key, value), value)
            for key, histogram in snapshot.get("histograms", {}).items():
                folded = bins.setdefault(key, {})
                for value, count in histogram.get("bins", []):
                    folded[value] = folded.get(value, 0) + count
            updates += snapshot.get("updates", 0)
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                key: {
                    "count": sum(folded.values()),
                    "bins": [
                        [value, count]
                        for value, count in sorted(folded.items())
                    ],
                }
                for key, folded in sorted(bins.items())
            },
            "updates": updates,
        }
