"""Structured trace spans: a ring-buffered recorder with Chrome export.

Spans carry wall-clock timestamps (``time.perf_counter_ns``), so traces
are *not* part of the deterministic on/off equivalence surface -- they
exist for humans reading a timeline, not for regression gates.  The
recorder is a bounded ``deque``: a long run keeps the most recent
``capacity`` events instead of growing without bound.

Two export shapes:

* **jsonl** -- one event per line, the archival form
  (:func:`write_jsonl` / :func:`read_jsonl`);
* **Chrome ``trace_event``** -- :func:`chrome_trace` emits the JSON
  object format (``{"traceEvents": [...]}``) that ``chrome://tracing``
  and Perfetto (https://ui.perfetto.dev) load directly;
  ``python -m repro.obs export --format chrome`` is the CLI wrapper.

The span *hierarchy* is carried two ways: nested ``span()`` calls
record ``parent`` ids (harness cell -> whatever runs inside it), and
layers that cannot nest lexically (serving slices close after their
channel batches ran) attach context as flat fields (``slice``,
``channel``), which Perfetto shows in the args pane.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from contextlib import contextmanager

__all__ = [
    "TraceRecorder",
    "chrome_trace",
    "read_jsonl",
    "write_jsonl",
]


class TraceRecorder:
    """Ring-buffered span/instant recorder."""

    def __init__(self, capacity: int = 65536) -> None:
        self.events: deque[dict] = deque(maxlen=capacity)
        self._stack: list[int] = []
        self._ids = itertools.count(1)

    def _event(self, name: str, ph: str, fields: dict) -> dict:
        event = {
            "name": name,
            "ph": ph,
            "id": next(self._ids),
            "parent": self._stack[-1] if self._stack else None,
        }
        if fields:
            event["fields"] = fields
        return event

    @contextmanager
    def span(self, name: str, **fields):
        """Record one complete span around the body."""
        event = self._event(name, "X", fields)
        self._stack.append(event["id"])
        start = time.perf_counter_ns()
        try:
            yield event
        finally:
            self._stack.pop()
            event["start_ns"] = start
            event["dur_ns"] = time.perf_counter_ns() - start
            self.events.append(event)

    def complete(
        self, name: str, start_ns: int, dur_ns: int, **fields
    ) -> None:
        """Record a span whose start/duration the caller measured --
        for phases that do not wrap a lexical block (serving slices)."""
        event = self._event(name, "X", fields)
        event["start_ns"] = start_ns
        event["dur_ns"] = dur_ns
        self.events.append(event)

    def instant(self, name: str, **fields) -> None:
        """Record a zero-duration marker (engine epoch leaps, faults)."""
        event = self._event(name, "i", fields)
        event["start_ns"] = time.perf_counter_ns()
        event["dur_ns"] = 0
        self.events.append(event)

    def snapshot(self) -> list[dict]:
        return list(self.events)


def chrome_trace(events: list[dict]) -> dict:
    """Chrome ``trace_event`` JSON-object form of recorded events.

    Timestamps are microseconds relative to the earliest event, so the
    Perfetto timeline starts at zero.
    """
    if events:
        origin_ns = min(event.get("start_ns", 0) for event in events)
    else:
        origin_ns = 0
    trace_events = []
    for event in events:
        args = dict(event.get("fields", {}))
        if event.get("parent"):
            args["parent"] = event["parent"]
        entry = {
            "name": event["name"],
            "ph": event.get("ph", "X"),
            "ts": (event.get("start_ns", 0) - origin_ns) / 1e3,
            "pid": 0,
            "tid": 0,
            "args": args,
        }
        if entry["ph"] == "X":
            entry["dur"] = event.get("dur_ns", 0) / 1e3
        else:
            entry["s"] = "t"  # instant scope: thread
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_jsonl(events: list[dict], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")


def read_jsonl(path: str) -> list[dict]:
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
