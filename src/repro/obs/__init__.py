"""``repro.obs``: the unified telemetry core.

One :class:`Telemetry` object bundles the three streams --

* :attr:`Telemetry.metrics` -- the typed counter/gauge/histogram
  registry (:mod:`repro.obs.metrics`),
* :attr:`Telemetry.trace` -- the ring-buffered span recorder with
  Chrome ``trace_event`` export (:mod:`repro.obs.trace`),
* :attr:`Telemetry.audit` -- the ordered security-event log
  (:mod:`repro.obs.audit`)

-- and the module-level :data:`ACTIVE` slot is the **only** thing hot
paths touch.  The zero-overhead-when-disabled contract:

    tel = obs.ACTIVE
    if tel is not None:
        tel.metrics.inc("controller.act_runs", engine=self.engine)

One module-attribute load and a ``None`` test on the disabled path,
nothing else -- no function call, no dict lookup, no import.
``benchmarks/bench_obs.py`` measures exactly this guard and bounds its
share of the defended-hammer runtime under 1%.

Telemetry is **observationally inert**: instruments only read values
the simulation already computed; they never advance clocks, draw RNG,
or touch float accumulators.  ``tests/test_telemetry_equivalence.py``
pins payloads, RNG states, and SLA fingerprints bit-identical with
telemetry on vs off across all three engines.

``python -m repro.obs`` (see :mod:`repro.obs.__main__`) records a demo
serving cell and exports/prints any of the three streams.
"""

from __future__ import annotations

from contextlib import contextmanager

from .audit import AuditStream
from .metrics import MetricsRegistry
from .trace import TraceRecorder

__all__ = [
    "ACTIVE",
    "AuditStream",
    "MetricsRegistry",
    "Telemetry",
    "TraceRecorder",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "get",
]


class Telemetry:
    """One run's telemetry: metrics + trace + audit."""

    def __init__(self, trace_capacity: int = 65536) -> None:
        self.metrics = MetricsRegistry()
        self.trace = TraceRecorder(capacity=trace_capacity)
        self.audit = AuditStream()

    def snapshot(self) -> dict:
        """The deterministic view: metrics plus audit tallies.  Trace
        spans carry wall-clock timestamps and are excluded -- export
        them via :mod:`repro.obs.trace` instead."""
        return {
            "metrics": self.metrics.snapshot(),
            "audit": {
                "events": len(self.audit),
                "kinds": self.audit.kind_counts(),
            },
        }


#: The active telemetry instance, or ``None`` when disabled.  Hot paths
#: read this attribute directly; everything else goes through the
#: helpers below.
ACTIVE: Telemetry | None = None


def get() -> Telemetry | None:
    """The active telemetry instance, or ``None``."""
    return ACTIVE


def enabled() -> bool:
    return ACTIVE is not None


def enable(telemetry: Telemetry | None = None) -> Telemetry:
    """Install (and return) the active telemetry instance."""
    global ACTIVE
    ACTIVE = telemetry if telemetry is not None else Telemetry()
    return ACTIVE


def disable() -> Telemetry | None:
    """Clear the active instance; returns what was installed."""
    global ACTIVE
    telemetry, ACTIVE = ACTIVE, None
    return telemetry


@contextmanager
def enabled_scope(telemetry: Telemetry | None = None):
    """Scoped enable/restore -- the per-cell harness discipline."""
    global ACTIVE
    saved = ACTIVE
    ACTIVE = telemetry if telemetry is not None else Telemetry()
    try:
        yield ACTIVE
    finally:
        ACTIVE = saved
