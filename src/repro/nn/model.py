"""Model wrapper: traversal, loss/grad plumbing, evaluation."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .functional import cross_entropy, cross_entropy_grad, softmax
from .layers import Conv2d, Layer, Linear, Parameter, Sequential

__all__ = [
    "Model",
    "PrefixActivationCache",
    "iter_layers",
    "named_parameters",
    "weight_layers",
]


def iter_layers(layer: Layer, prefix: str = "") -> Iterator[tuple[str, Layer]]:
    """Depth-first traversal yielding ``(path, layer)`` for every layer."""
    yield prefix or "net", layer
    for name, child in layer.children():
        child_prefix = f"{prefix}.{name}" if prefix else name
        yield from iter_layers(child, child_prefix)


def named_parameters(layer: Layer) -> dict[str, Parameter]:
    """Hierarchically-named parameters of a layer tree."""
    named: dict[str, Parameter] = {}
    for path, node in iter_layers(layer):
        for local, param in node.params().items():
            if node.children():
                continue  # composite layers re-expose their children's params
            named[f"{path}.{local}"] = param
    return named


def weight_layers(layer: Layer) -> dict[str, Layer]:
    """Paths of the Conv2d/Linear layers -- the quantization targets."""
    return {
        path: node
        for path, node in iter_layers(layer)
        if isinstance(node, (Conv2d, Linear))
    }


class PrefixActivationCache:
    """Per-layer input activations of one input batch through a
    :class:`Sequential` net, in eval mode.

    Entry ``i`` is the *input* of top-level layer ``i`` (entry ``0`` is
    the input batch itself); entry ``len(layers)`` is the network
    output (the logits).  Entries are filled lazily: :meth:`input_of`
    runs the shortest missing prefix from the deepest cached entry, so
    repeated suffix evaluations share one prefix computation.

    The invalidation contract (pinned by ``tests/test_search_session``):
    a weight mutation inside top-level layer ``k`` leaves the *inputs*
    of layers ``0..k`` valid -- they are produced by layers ``< k`` --
    and must drop every entry ``> k``.  :meth:`invalidate_from` does
    exactly that.

    Because eval-mode forwards are deterministic, every cached entry is
    bitwise what a fresh full forward would produce, so losses computed
    from :meth:`logits` are bit-identical to ``model.loss``.
    """

    def __init__(self, net: Sequential, x: np.ndarray):
        if not isinstance(net, Sequential):
            raise TypeError("activation caching requires a Sequential net")
        self.net = net
        self.x = x
        self.depth = len(net.layers)
        self._acts: dict[int, np.ndarray] = {0: x}

    def cached_indices(self) -> list[int]:
        """Currently valid entry indices (0 = the input batch)."""
        return sorted(self._acts)

    def input_of(self, k: int) -> np.ndarray:
        """Input activation of top-level layer ``k`` (``k == depth``
        yields the logits), computing and caching any missing prefix."""
        if not 0 <= k <= self.depth:
            raise IndexError(f"layer index {k} out of range 0..{self.depth}")
        j = max(i for i in self._acts if i <= k)
        a = self._acts[j]
        while j < k:
            a = self.net.layers[j].forward(a)
            j += 1
            self._acts[j] = a
        return a

    def logits(self) -> np.ndarray:
        return self.input_of(self.depth)

    def store(self, i: int, a: np.ndarray) -> None:
        """Record the input of layer ``i`` observed during an external
        full forward (the gradient pass doubles as a cache refill)."""
        if not 0 <= i <= self.depth:
            raise IndexError(f"layer index {i} out of range 0..{self.depth}")
        self._acts[i] = a

    def invalidate_from(self, k: int) -> None:
        """A weight inside top-level layer ``k`` changed: drop every
        activation downstream of it (entries ``> k``), keep the rest."""
        self._acts = {i: a for i, a in self._acts.items() if i <= k}

    def invalidate_all(self) -> None:
        self._acts = {0: self.x}


class Model:
    """A network plus the training/attack plumbing around it."""

    def __init__(self, net: Layer, name: str = "model"):
        self.net = net
        self.name = name

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, Parameter]:
        return named_parameters(self.net)

    def weight_layers(self) -> dict[str, Layer]:
        return weight_layers(self.net)

    def zero_grad(self) -> None:
        for param in self.parameters().values():
            param.zero_grad()

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters().values())

    # ------------------------------------------------------------------
    # Forward / loss
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.net.forward(x, training=training)

    def loss(self, x: np.ndarray, labels: np.ndarray) -> float:
        return cross_entropy(self.forward(x), labels)

    def loss_and_grad(
        self, x: np.ndarray, labels: np.ndarray, training: bool = False
    ) -> float:
        """Forward + backward; gradients accumulate into parameters."""
        logits = self.forward(x, training=training)
        loss = cross_entropy(logits, labels)
        self.net.backward(cross_entropy_grad(logits, labels))
        return loss

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray, batch: int = 256) -> np.ndarray:
        outputs = []
        for start in range(0, x.shape[0], batch):
            logits = self.forward(x[start : start + batch])
            outputs.append(np.argmax(logits, axis=1))
        return np.concatenate(outputs)

    def accuracy(self, x: np.ndarray, labels: np.ndarray, batch: int = 256) -> float:
        """Top-1 accuracy in percent."""
        return float(100.0 * (self.predict(x, batch) == labels).mean())

    def probabilities(self, x: np.ndarray) -> np.ndarray:
        return softmax(self.forward(x))

    # ------------------------------------------------------------------
    # Activation caching (the attack-search fast path)
    # ------------------------------------------------------------------
    def activation_cache(self, x: np.ndarray) -> PrefixActivationCache:
        """A :class:`PrefixActivationCache` for one input batch; raises
        ``TypeError`` for non-Sequential nets."""
        return PrefixActivationCache(self.net, x)
