"""Model wrapper: traversal, loss/grad plumbing, evaluation."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .functional import cross_entropy, cross_entropy_grad, softmax
from .layers import Conv2d, Layer, Linear, Parameter

__all__ = ["Model", "iter_layers", "named_parameters", "weight_layers"]


def iter_layers(layer: Layer, prefix: str = "") -> Iterator[tuple[str, Layer]]:
    """Depth-first traversal yielding ``(path, layer)`` for every layer."""
    yield prefix or "net", layer
    for name, child in layer.children():
        child_prefix = f"{prefix}.{name}" if prefix else name
        yield from iter_layers(child, child_prefix)


def named_parameters(layer: Layer) -> dict[str, Parameter]:
    """Hierarchically-named parameters of a layer tree."""
    named: dict[str, Parameter] = {}
    for path, node in iter_layers(layer):
        for local, param in node.params().items():
            if node.children():
                continue  # composite layers re-expose their children's params
            named[f"{path}.{local}"] = param
    return named


def weight_layers(layer: Layer) -> dict[str, Layer]:
    """Paths of the Conv2d/Linear layers -- the quantization targets."""
    return {
        path: node
        for path, node in iter_layers(layer)
        if isinstance(node, (Conv2d, Linear))
    }


class Model:
    """A network plus the training/attack plumbing around it."""

    def __init__(self, net: Layer, name: str = "model"):
        self.net = net
        self.name = name

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, Parameter]:
        return named_parameters(self.net)

    def weight_layers(self) -> dict[str, Layer]:
        return weight_layers(self.net)

    def zero_grad(self) -> None:
        for param in self.parameters().values():
            param.zero_grad()

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters().values())

    # ------------------------------------------------------------------
    # Forward / loss
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.net.forward(x, training=training)

    def loss(self, x: np.ndarray, labels: np.ndarray) -> float:
        return cross_entropy(self.forward(x), labels)

    def loss_and_grad(
        self, x: np.ndarray, labels: np.ndarray, training: bool = False
    ) -> float:
        """Forward + backward; gradients accumulate into parameters."""
        logits = self.forward(x, training=training)
        loss = cross_entropy(logits, labels)
        self.net.backward(cross_entropy_grad(logits, labels))
        return loss

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray, batch: int = 256) -> np.ndarray:
        outputs = []
        for start in range(0, x.shape[0], batch):
            logits = self.forward(x[start : start + batch])
            outputs.append(np.argmax(logits, axis=1))
        return np.concatenate(outputs)

    def accuracy(self, x: np.ndarray, labels: np.ndarray, batch: int = 256) -> float:
        """Top-1 accuracy in percent."""
        return float(100.0 * (self.predict(x, batch) == labels).mean())

    def probabilities(self, x: np.ndarray) -> np.ndarray:
        return softmax(self.forward(x))
