"""Training-based BFA defenses -- the Table II comparison set.

Each builder trains one hardened variant of the evaluation model on the
given dataset and returns it with its label.  They mirror the cited
defenses at the mechanism level:

* **Piece-wise clustering** (He et al., CVPR 2020): a regularizer pulls
  each layer's weights toward two clusters at +/-mean|W|, shrinking the
  outlier weights BFA exploits.
* **Binary weight** (same paper): weights are binarized in the forward
  pass (sign(W) * mean|W|) and trained straight-through; a single bit
  then only carries a sign, so each flip moves the loss far less.
* **Model capacity x16**: 4x width = 16x parameters; weight noise is
  amortized over redundancy.
* **Weight reconstruction** (Li et al., DAC 2020): an inference-time
  repair that clamps weights back inside the layer's trained
  [-k*sigma, +k*sigma] envelope, undoing the large excursions bit
  flips cause.
* **RA-BNN** (Rakin et al. 2021): robustness-aware binary network --
  binarization plus grown capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .data import Dataset
from .layers import Conv2d, Linear
from .model import Model
from .models import resnet20
from .train import TrainConfig, TrainResult, train

__all__ = [
    "HardenedModel",
    "train_baseline",
    "train_piecewise_clustering",
    "train_binary_weight",
    "train_capacity_x16",
    "train_weight_reconstruction",
    "train_ra_bnn",
    "TABLE2_BUILDERS",
]


@dataclass
class HardenedModel:
    """A trained Table II contender."""

    label: str
    model: Model
    clean_accuracy: float
    history: TrainResult
    #: Inference-time repair applied after each attack iteration
    #: (weight-reconstruction style defenses); None for the others.
    repair: Callable[[Model], None] | None = None
    #: True when weights are binarized (affects how flips are counted).
    binary: bool = False


def _finish(
    label: str,
    model: Model,
    dataset: Dataset,
    history: TrainResult,
    repair: Callable[[Model], None] | None = None,
    binary: bool = False,
) -> HardenedModel:
    return HardenedModel(
        label=label,
        model=model,
        clean_accuracy=model.accuracy(dataset.test_x, dataset.test_y),
        history=history,
        repair=repair,
        binary=binary,
    )


def _default_model(dataset: Dataset, width: int = 8, seed: int = 0) -> Model:
    hw = dataset.train_x.shape[-1]
    return resnet20(num_classes=dataset.num_classes, width=width, input_hw=hw, seed=seed)


def train_baseline(
    dataset: Dataset, config: TrainConfig | None = None, width: int = 8
) -> HardenedModel:
    """The undefended 8-bit baseline (Table II row 1)."""
    model = _default_model(dataset, width=width)
    history = train(model, dataset, config)
    return _finish("Baseline ResNet-20", model, dataset, history)


def train_piecewise_clustering(
    dataset: Dataset,
    config: TrainConfig | None = None,
    clustering_lambda: float = 2e-3,
    width: int = 8,
) -> HardenedModel:
    """Two-cluster (+/-mean) weight regularization."""
    model = _default_model(dataset, width=width, seed=1)

    def hook(m: Model) -> None:
        for layer in m.weight_layers().values():
            weight = layer.weight.value
            center = np.mean(np.abs(weight))
            target = np.where(weight >= 0, center, -center)
            layer.weight.grad += clustering_lambda * (weight - target)

    history = train(model, dataset, config, grad_hook=hook)
    return _finish("Piece-wise Clustering", model, dataset, history)


def _binarize_layers(model: Model) -> None:
    for layer in model.weight_layers().values():
        if isinstance(layer, (Conv2d, Linear)):

            def transform(w: np.ndarray) -> np.ndarray:
                alpha = np.mean(np.abs(w))
                return np.where(w >= 0, alpha, -alpha).astype(np.float32)

            layer.weight_transform = transform


def train_binary_weight(
    dataset: Dataset, config: TrainConfig | None = None, width: int = 8
) -> HardenedModel:
    """Binary weights trained with the straight-through estimator.

    Binarized training converges slower than full-precision; it gets a
    doubled epoch budget at a gentler learning rate (the usual BNN
    recipe), mirroring the paper's note that training-based defenses
    "take a lot of time to train".
    """
    from dataclasses import replace

    model = _default_model(dataset, width=width, seed=2)
    _binarize_layers(model)
    config = config or TrainConfig()
    binary_config = replace(
        config,
        epochs=config.epochs * 2,
        lr=config.lr * 0.5,
        lr_decay_epochs=tuple(2 * e for e in config.lr_decay_epochs),
    )
    history = train(model, dataset, binary_config)
    return _finish("Binary weight", model, dataset, history, binary=True)


def train_capacity_x16(
    dataset: Dataset, config: TrainConfig | None = None, width: int = 8
) -> HardenedModel:
    """4x width -> 16x parameters."""
    model = _default_model(dataset, width=width * 4, seed=3)
    history = train(model, dataset, config)
    return _finish("Model Capacity x16", model, dataset, history)


def train_weight_reconstruction(
    dataset: Dataset,
    config: TrainConfig | None = None,
    clamp_sigmas: float = 3.0,
    width: int = 8,
) -> HardenedModel:
    """Baseline training + inference-time weight envelope repair."""
    model = _default_model(dataset, width=width, seed=4)
    history = train(model, dataset, config)
    envelopes = {
        path: clamp_sigmas * float(np.std(layer.weight.value))
        for path, layer in model.weight_layers().items()
    }

    def repair(m: Model) -> None:
        for path, layer in m.weight_layers().items():
            bound = envelopes[path]
            np.clip(layer.weight.value, -bound, bound, out=layer.weight.value)

    return _finish(
        "Weight Reconstruction", model, dataset, history, repair=repair
    )


def train_ra_bnn(
    dataset: Dataset, config: TrainConfig | None = None, width: int = 8
) -> HardenedModel:
    """RA-BNN: binarization + grown (2x) capacity."""
    model = _default_model(dataset, width=width * 2, seed=5)
    _binarize_layers(model)
    history = train(model, dataset, config)
    return _finish("RA-BNN", model, dataset, history, binary=True)


#: Table II builder registry, in the paper's row order.
TABLE2_BUILDERS: dict[str, Callable[..., HardenedModel]] = {
    "Baseline ResNet-20": train_baseline,
    "Piece-wise Clustering": train_piecewise_clustering,
    "Binary weight": train_binary_weight,
    "Model Capacity x16": train_capacity_x16,
    "Weight Reconstruction": train_weight_reconstruction,
    "RA-BNN": train_ra_bnn,
}
