"""Synthetic CIFAR-like datasets.

The offline environment has no CIFAR-10/100, so the experiments run on
deterministic synthetic stand-ins: each class gets a smooth random
prototype image; samples are the prototype plus structured noise and a
small random translation.  The datasets are hard enough that an
untrained network scores chance, and easy enough that the scaled
ResNet-20/VGG-11 reach high accuracy in a few NumPy epochs -- which is
all the bit-flip experiments require (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Dataset", "synthetic_cifar10", "synthetic_cifar100", "make_dataset"]


@dataclass
class Dataset:
    """Train/test split of one synthetic classification task."""

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    def batches(
        self, batch_size: int, rng: np.random.Generator
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """One shuffled epoch of training batches."""
        order = rng.permutation(self.train_x.shape[0])
        for start in range(0, len(order), batch_size):
            index = order[start : start + batch_size]
            yield self.train_x[index], self.train_y[index]

    def sample_attack_batch(
        self, size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Random test images, as the paper's attack inputs (default 128)."""
        index = rng.choice(self.test_x.shape[0], size=size, replace=False)
        return self.test_x[index], self.test_y[index]


def _smooth_field(
    rng: np.random.Generator, channels: int, hw: int, coarse: int
) -> np.ndarray:
    """A low-frequency random image: coarse noise, bilinearly upsampled."""
    grid = rng.normal(0.0, 1.0, size=(channels, coarse, coarse))
    zoom = hw / coarse
    coords = (np.arange(hw) + 0.5) / zoom - 0.5
    low = np.clip(np.floor(coords).astype(int), 0, coarse - 1)
    high = np.clip(low + 1, 0, coarse - 1)
    frac = np.clip(coords - low, 0.0, 1.0)
    rows = grid[:, low, :] * (1 - frac)[None, :, None] + grid[:, high, :] * frac[None, :, None]
    out = (
        rows[:, :, low] * (1 - frac)[None, None, :]
        + rows[:, :, high] * frac[None, None, :]
    )
    return out.astype(np.float32)


def make_dataset(
    name: str,
    num_classes: int,
    hw: int = 32,
    train_per_class: int = 64,
    test_per_class: int = 32,
    noise: float = 0.55,
    max_shift: int = 2,
    seed: int = 0,
) -> Dataset:
    """Build one synthetic dataset (deterministic in ``seed``)."""
    rng = np.random.default_rng(seed)
    prototypes = np.stack(
        [_smooth_field(rng, 3, hw, coarse=max(2, hw // 4)) for _ in range(num_classes)]
    )

    def sample_split(per_class: int) -> tuple[np.ndarray, np.ndarray]:
        images = np.empty((num_classes * per_class, 3, hw, hw), dtype=np.float32)
        labels = np.empty(num_classes * per_class, dtype=np.int64)
        cursor = 0
        for cls in range(num_classes):
            for _ in range(per_class):
                image = prototypes[cls].copy()
                if max_shift:
                    dx, dy = rng.integers(-max_shift, max_shift + 1, size=2)
                    image = np.roll(image, (int(dx), int(dy)), axis=(1, 2))
                image += rng.normal(0.0, noise, size=image.shape).astype(np.float32)
                images[cursor] = image
                labels[cursor] = cls
                cursor += 1
        return images, labels

    train_x, train_y = sample_split(train_per_class)
    test_x, test_y = sample_split(test_per_class)
    return Dataset(
        name=name,
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        num_classes=num_classes,
    )


def synthetic_cifar10(hw: int = 32, seed: int = 0, **kwargs) -> Dataset:
    """The CIFAR-10 stand-in (10 classes)."""
    return make_dataset("synthetic-cifar10", 10, hw=hw, seed=seed, **kwargs)


def synthetic_cifar100(hw: int = 32, seed: int = 1, **kwargs) -> Dataset:
    """The CIFAR-100 stand-in (100 classes, fewer samples per class).

    The default noise is higher than the 10-class task's so trained
    accuracy lands in the paper's VGG-11/CIFAR-100 range (~65-90%
    rather than saturated) -- BFA's damage profile depends on the
    classification margins being realistic.
    """
    kwargs.setdefault("train_per_class", 24)
    kwargs.setdefault("test_per_class", 8)
    kwargs.setdefault("noise", 1.1)
    return make_dataset("synthetic-cifar100", 100, hw=hw, seed=seed, **kwargs)
