"""Low-level NumPy ops: im2col convolution plumbing and losses."""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_hw",
    "im2col",
    "col2im",
    "softmax",
    "cross_entropy",
    "cross_entropy_grad",
]


def conv_output_hw(h: int, w: int, k: int, stride: int, pad: int) -> tuple[int, int]:
    """Spatial output size of a convolution."""
    oh = (h + 2 * pad - k) // stride + 1
    ow = (w + 2 * pad - k) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError("convolution output would be empty")
    return oh, ow


def _col_indices(c: int, h: int, w: int, k: int, stride: int, pad: int):
    oh, ow = conv_output_hw(h, w, k, stride, pad)
    i0 = np.repeat(np.arange(k), k)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(oh), ow)
    j0 = np.tile(np.arange(k), k * c)
    j1 = stride * np.tile(np.arange(ow), oh)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    ch = np.repeat(np.arange(c), k * k).reshape(-1, 1)
    return ch, i, j, oh, ow


def im2col(x: np.ndarray, k: int, stride: int, pad: int) -> np.ndarray:
    """(N, C, H, W) -> (N, C*k*k, OH*OW) patch matrix."""
    n, c, h, w = x.shape
    ch, i, j, _, _ = _col_indices(c, h, w, k, stride, pad)
    padded = np.pad(
        x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
    )
    return padded[:, ch, i, j]


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    k: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col` (scatter-add back to image space)."""
    n, c, h, w = x_shape
    ch, i, j, _, _ = _col_indices(c, h, w, k, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    np.add.at(padded, (slice(None), ch, i, j), cols)
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilised."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer ``labels`` under ``logits``."""
    probs = softmax(logits)
    n = logits.shape[0]
    eps = 1e-12
    return float(-np.log(probs[np.arange(n), labels] + eps).mean())


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """d(mean CE)/d logits."""
    probs = softmax(logits)
    n = logits.shape[0]
    probs[np.arange(n), labels] -= 1.0
    return probs / n
