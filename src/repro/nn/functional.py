"""Low-level NumPy ops: im2col convolution plumbing and losses."""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_hw",
    "im2col",
    "col2im",
    "contract",
    "softmax",
    "cross_entropy",
    "cross_entropy_grad",
]


# ----------------------------------------------------------------------
# Verified fast contractions
# ----------------------------------------------------------------------
# einsum(optimize=True) picks shape-dependent contraction paths; for most
# conv shapes a single broadcast matmul / tensordot computes the exact
# same BLAS reduction order several times faster, but for some (small
# feature-map) shapes einsum dispatches differently and the results
# drift by ulps -- enough to perturb a training trajectory.  `contract`
# therefore verifies the fast path ONCE per (spec, shapes, dtypes): the
# first call computes both and compares bitwise; only shapes where the
# fast path is bit-identical ever use it again.  einsum's dispatch is a
# pure function of shapes/dtypes, so one agreeing sample certifies the
# shape class.

_CONTRACT_FAST = {
    # conv forward: (O, F) x (N, F, P) -> (N, O, P)
    "of,nfp->nop": lambda w, cols: np.matmul(w, cols),
    # conv dX: (O, F) x (N, O, P) -> (N, F, P)
    "of,nop->nfp": lambda w, dy: np.matmul(w.swapaxes(0, 1), dy),
    # conv dW: (N, O, P) x (N, F, P) -> (O, F)
    "nop,nfp->of": lambda dy, cols: np.tensordot(
        dy, cols, axes=((0, 2), (0, 2))
    ),
}
_CONTRACT_OK: dict[tuple, bool] = {}


def contract(spec: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``np.einsum(spec, a, b, optimize=True)``, bit-for-bit, through the
    fast single-GEMM path whenever that path has been verified identical
    for this shape class."""
    key = (spec, a.shape, b.shape, a.dtype.char, b.dtype.char)
    ok = _CONTRACT_OK.get(key)
    if ok:
        return _CONTRACT_FAST[spec](a, b)
    ein = np.einsum(spec, a, b, optimize=True)
    if ok is None:
        _CONTRACT_OK[key] = bool(
            np.array_equal(ein, _CONTRACT_FAST[spec](a, b))
        )
    return ein


def conv_output_hw(h: int, w: int, k: int, stride: int, pad: int) -> tuple[int, int]:
    """Spatial output size of a convolution."""
    oh = (h + 2 * pad - k) // stride + 1
    ow = (w + 2 * pad - k) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError("convolution output would be empty")
    return oh, ow


def _col_indices(c: int, h: int, w: int, k: int, stride: int, pad: int):
    oh, ow = conv_output_hw(h, w, k, stride, pad)
    i0 = np.repeat(np.arange(k), k)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(oh), ow)
    j0 = np.tile(np.arange(k), k * c)
    j1 = stride * np.tile(np.arange(ow), oh)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    ch = np.repeat(np.arange(c), k * k).reshape(-1, 1)
    return ch, i, j, oh, ow


def im2col(x: np.ndarray, k: int, stride: int, pad: int) -> np.ndarray:
    """(N, C, H, W) -> (N, C*k*k, OH*OW) patch matrix."""
    n, c, h, w = x.shape
    oh, ow = conv_output_hw(h, w, k, stride, pad)
    padded = np.pad(
        x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
    )
    # One strided view + one copy beats fancy indexing by a wide margin
    # on the conv-heavy forward pass; the (C, k, k) leading order matches
    # the _col_indices layout exactly.
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (k, k), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    cols = windows.transpose(0, 1, 4, 5, 2, 3)
    return cols.reshape(n, c * k * k, oh * ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    k: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col` (scatter-add back to image space)."""
    n, c, h, w = x_shape
    oh, ow = conv_output_hw(h, w, k, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    # k*k strided slice-adds instead of one giant np.add.at scatter:
    # each kernel tap touches disjoint addresses, so the adds vectorize.
    taps = cols.reshape(n, c, k, k, oh, ow)
    for ki in range(k):
        for kj in range(k):
            padded[
                :, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride
            ] += taps[:, :, ki, kj]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilised."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer ``labels`` under ``logits``."""
    probs = softmax(logits)
    n = logits.shape[0]
    eps = 1e-12
    return float(-np.log(probs[np.arange(n), labels] + eps).mean())


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """d(mean CE)/d logits."""
    probs = softmax(logits)
    n = logits.shape[0]
    probs[np.arange(n), labels] -= 1.0
    return probs / n
