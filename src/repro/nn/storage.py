"""WeightStore: quantized DNN weights living in simulated DRAM.

The store owns the layout decision the paper's protection policy needs:
with ``guard_rows=True`` (default) weight data occupies every *other*
row, leaving interleaved guard rows whose only purpose is to be the
potential aggressors -- so DRAM-Locker can lock them without ever
blocking the inference path (Section IV-A: lock the *adjacent* rows,
not the hot data).  ``guard_rows=False`` packs weights contiguously,
which is the layout whose protection holes the planner reports.

The DRAM is the single source of truth: RowHammer flips land in row
bytes, a flip listener marks the store dirty, and ``sync_model()``
pulls the bytes back through the quantized tensors into the float
model.  Attacks never touch the model directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..controller.request import Kind, MemRequest
from ..dram.device import DRAMDevice
from ..dram.rowhammer import BitFlip
from .quant import QuantizedModel

__all__ = ["Segment", "WeightStore"]


@dataclass(frozen=True)
class Segment:
    """A contiguous run of one tensor's bytes inside one DRAM row."""

    tensor: str
    tensor_offset: int
    row: int
    row_offset: int
    length: int


class WeightStore:
    """Maps a :class:`QuantizedModel`'s payload onto DRAM rows."""

    def __init__(
        self,
        device: DRAMDevice,
        qmodel: QuantizedModel,
        guard_rows: bool = True,
        start_bank: int = 0,
    ):
        self.device = device
        self.qmodel = qmodel
        self.guard_rows = guard_rows
        self.segments: list[Segment] = []
        self._by_tensor: dict[str, list[Segment]] = {}
        self._by_row: dict[int, list[Segment]] = {}
        self._guard_rows: list[int] = []
        self._dirty = True  # first sync loads DRAM contents
        #: Optional default row translation (a permuting defense's
        #: ``translate``): when set, every sync/write-back follows it,
        #: so the store tracks where the defense keeps the data
        #: resident.  Set by the victim-load binding, not here.
        self.row_source: Callable[[int], int] | None = None
        self.flips_observed: list[BitFlip] = []
        self._layout(start_bank)
        self._write_initial()
        device.add_flip_listener(self._on_flip)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _candidate_rows(self, start_bank: int):
        cfg = self.device.config
        mapper = self.device.mapper
        step = 2 if self.guard_rows else 1
        for bank in range(start_bank, cfg.banks):
            for subarray in range(cfg.subarrays_per_bank):
                for local in range(0, cfg.usable_rows_per_subarray, step):
                    yield mapper.row_index((bank, subarray, local))

    def _layout(self, start_bank: int) -> None:
        cfg = self.device.config
        mapper = self.device.mapper
        rows = self._candidate_rows(start_bank)
        row = next(rows, None)
        row_used = 0
        for name, tensor in self.qmodel.tensors.items():
            remaining = tensor.q.size
            tensor_offset = 0
            while remaining > 0:
                if row is None:
                    raise RuntimeError(
                        "DRAM too small for the model; use a larger DRAMConfig"
                    )
                space = cfg.row_bytes - row_used
                if space == 0:
                    row = next(rows, None)
                    row_used = 0
                    continue
                take = min(space, remaining)
                segment = Segment(
                    tensor=name,
                    tensor_offset=tensor_offset,
                    row=row,
                    row_offset=row_used,
                    length=take,
                )
                self.segments.append(segment)
                self._by_tensor.setdefault(name, []).append(segment)
                self._by_row.setdefault(row, []).append(segment)
                tensor_offset += take
                remaining -= take
                row_used += take
        if self.guard_rows:
            data_rows = set(self._by_row)
            guards = set()
            for data_row in data_rows:
                guards.update(mapper.neighbors(data_row, radius=1))
            self._guard_rows = sorted(guards - data_rows)

    def _write_initial(
        self, row_source: "Callable[[int], int] | None" = None
    ) -> None:
        for name, tensor in self.qmodel.tensors.items():
            payload = tensor.to_bytes()
            for segment in self._by_tensor[name]:
                target_row = (
                    segment.row if row_source is None else row_source(segment.row)
                )
                self.device.poke_bytes(
                    target_row,
                    segment.row_offset,
                    payload[
                        segment.tensor_offset : segment.tensor_offset + segment.length
                    ],
                )
        self._dirty = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def data_rows(self) -> list[int]:
        """Rows holding weight bytes (the protection targets)."""
        return sorted(self._by_row)

    @property
    def guard_row_indices(self) -> list[int]:
        """The interleaved guard rows (empty when ``guard_rows=False``)."""
        return list(self._guard_rows)

    def bit_location(self, tensor: str, flat_index: int, bit: int) -> tuple[int, int]:
        """Where one weight bit lives: ``(global row, bit-in-row)``."""
        for segment in self._by_tensor[tensor]:
            if segment.tensor_offset <= flat_index < segment.tensor_offset + segment.length:
                row_byte = segment.row_offset + (flat_index - segment.tensor_offset)
                return segment.row, row_byte * 8 + bit
        raise KeyError(f"weight {tensor}[{flat_index}] not in the store")

    def locate_bit(self, row: int, row_bit: int) -> tuple[str, int, int] | None:
        """Inverse of :meth:`bit_location`; ``None`` for non-weight bits."""
        segments = self._by_row.get(row)
        if not segments:
            return None
        row_byte, bit = divmod(row_bit, 8)
        for segment in segments:
            if segment.row_offset <= row_byte < segment.row_offset + segment.length:
                flat_index = segment.tensor_offset + (row_byte - segment.row_offset)
                return segment.tensor, flat_index, bit
        return None

    # ------------------------------------------------------------------
    # DRAM <-> model synchronisation
    # ------------------------------------------------------------------
    def _on_flip(self, flip: BitFlip) -> None:
        if flip.row in self._by_row:
            self._dirty = True
            self.flips_observed.append(flip)

    def sync_model(
        self,
        force: bool = False,
        row_source: "Callable[[int], int] | None" = None,
    ) -> bool:
        """Pull DRAM bytes back into the model; True if anything changed.

        ``row_source`` maps a stored row to the row actually read --
        the hook the page-table attack experiments use to read weights
        *through* the (possibly corrupted) MMU translation.  When left
        ``None`` it falls back to the store's persistent
        :attr:`row_source` (a permuting defense's translation), which
        always forces a full read: flips landing in relocated rows
        never mark the store dirty.
        """
        if row_source is None:
            row_source = self.row_source
        if not (self._dirty or force or row_source is not None):
            return False
        for name, tensor in self.qmodel.tensors.items():
            payload = tensor.to_bytes()
            for segment in self._by_tensor[name]:
                source_row = segment.row if row_source is None else row_source(segment.row)
                payload[
                    segment.tensor_offset : segment.tensor_offset + segment.length
                ] = self.device.peek_bytes(
                    source_row, segment.row_offset, segment.length
                )
            tensor.from_bytes(payload)
        self.qmodel.load_into_model()
        self._dirty = False
        return True

    def write_back(
        self, row_source: "Callable[[int], int] | None" = None
    ) -> None:
        """Push the current quantized payloads into DRAM (model -> DRAM).

        ``row_source`` maps a stored row to the row actually written --
        the mirror of :meth:`sync_model`'s hook, so restores land where
        a permuting defense currently keeps the data resident (falls
        back to the persistent :attr:`row_source`).
        """
        self._write_initial(
            self.row_source if row_source is None else row_source
        )

    # ------------------------------------------------------------------
    # Traffic generation (for the performance experiments)
    # ------------------------------------------------------------------
    def inference_requests(self, privileged: bool = True) -> list[MemRequest]:
        """The weight-streaming reads of one forward pass."""
        cfg = self.device.config
        return [
            MemRequest(
                Kind.READ,
                row,
                size=cfg.row_bytes,
                privileged=privileged,
                tag="weights",
            )
            for row in self.data_rows
        ]

    def stream_inference(
        self, controller, privileged: bool = True, summary: bool = False
    ):
        """Execute one forward pass worth of weight streaming through the
        controller's batched engine; returns the per-request results, or
        -- with ``summary=True`` -- one allocation-free
        :class:`~repro.controller.request.RunSummary` (same device
        state, no per-request result objects)."""
        requests = self.inference_requests(privileged)
        if summary:
            return controller.execute_summary(requests)
        return controller.execute_batch(requests)
