"""NumPy DNN stack: layers, models, quantization, data, hardening."""

from .cache import (
    VictimCache,
    cached_train,
    dataset_fingerprint,
    hash_arrays,
    load_model_state,
    model_state,
    victim_spec,
)
from .data import Dataset, make_dataset, synthetic_cifar10, synthetic_cifar100
from .functional import cross_entropy, cross_entropy_grad, softmax
from .hardening import (
    TABLE2_BUILDERS,
    HardenedModel,
    train_baseline,
    train_binary_weight,
    train_capacity_x16,
    train_piecewise_clustering,
    train_ra_bnn,
    train_weight_reconstruction,
)
from .layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
    Sequential,
)
from .model import (
    Model,
    PrefixActivationCache,
    iter_layers,
    named_parameters,
    weight_layers,
)
from .models import BasicBlock, resnet20, vgg11
from .quant import QuantizedModel, QuantizedTensor
from .storage import Segment, WeightStore
from .train import TrainConfig, TrainResult, train

__all__ = [
    "BasicBlock",
    "BatchNorm2d",
    "Conv2d",
    "Dataset",
    "Flatten",
    "GlobalAvgPool",
    "HardenedModel",
    "Layer",
    "Linear",
    "MaxPool2d",
    "Model",
    "Parameter",
    "PrefixActivationCache",
    "QuantizedModel",
    "QuantizedTensor",
    "ReLU",
    "Segment",
    "Sequential",
    "TABLE2_BUILDERS",
    "TrainConfig",
    "TrainResult",
    "VictimCache",
    "WeightStore",
    "cached_train",
    "cross_entropy",
    "cross_entropy_grad",
    "dataset_fingerprint",
    "hash_arrays",
    "iter_layers",
    "load_model_state",
    "make_dataset",
    "model_state",
    "named_parameters",
    "resnet20",
    "victim_spec",
    "softmax",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "train",
    "train_baseline",
    "train_binary_weight",
    "train_capacity_x16",
    "train_piecewise_clustering",
    "train_ra_bnn",
    "train_weight_reconstruction",
    "vgg11",
    "weight_layers",
]
