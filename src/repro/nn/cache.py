"""Content-addressed cache of trained victim models.

Training the victim dominates the wall-clock of every trained-victim
scenario, and the defense x attack matrix re-trains the *same* victim
once per cell.  This cache trains each victim exactly once: the key is
a SHA-256 over everything that determines the trained weights --

* the **initial model state** (all parameters + BatchNorm buffers, so
  architecture, width, and init seed are captured by content, not by
  name),
* the **dataset content** (the actual train/test arrays),
* the **training configuration** (every :class:`TrainConfig` field),
* an optional **hardening** descriptor (regularizer label + knobs for
  the Table II builders), and
* a schema version, bumped whenever the training code changes
  semantics.

Training is deterministic, so a cache hit is *bit-identical* to a
fresh train (``tests/test_victim_cache.py`` pins this).  Entries are
``.npz`` files written atomically (tmp file + ``os.replace``), so
parallel harness workers can share one cache directory without
torn reads.

The cache location comes from ``REPRO_VICTIM_CACHE``:

* unset  -> ``~/.cache/dram-locker/victims``
* a path -> that directory
* ``0`` / ``off`` / ``disabled`` -> caching disabled (every call trains)
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import asdict, dataclass, field
from typing import Any, Callable

import numpy as np

from .data import Dataset
from .model import Model, iter_layers
from .train import TrainConfig, TrainResult, train

__all__ = [
    "CACHE_SCHEMA",
    "CACHE_ENV_VAR",
    "MEMORY_ENV_VAR",
    "VictimCache",
    "model_state",
    "load_model_state",
    "hash_arrays",
    "dataset_fingerprint",
    "victim_spec",
    "cached_train",
    "memory_cache_entries",
    "memory_cache_put",
    "memory_cache_clear",
]

#: Bump when the trainer/layers change in a result-affecting way.
CACHE_SCHEMA = 1

CACHE_ENV_VAR = "REPRO_VICTIM_CACHE"

#: Set to ``off`` to bypass the in-process memory layer (the
#: victim-cache benchmark does, so it keeps timing the disk path).
MEMORY_ENV_VAR = "REPRO_VICTIM_CACHE_MEMORY"

_DISABLED_VALUES = {"0", "off", "disabled", "no", "false"}


# ----------------------------------------------------------------------
# Model state capture (parameters + non-parameter buffers)
# ----------------------------------------------------------------------
def model_state(model: Model) -> dict[str, np.ndarray]:
    """Every array that defines the model's inference behaviour.

    ``parameters()`` misses the BatchNorm running statistics (they are
    buffers, not trainable), so they are captured per-layer here --
    without them a restored victim would not be bit-identical.
    """
    state: dict[str, np.ndarray] = {
        f"param:{name}": param.value
        for name, param in model.parameters().items()
    }
    for path, layer in iter_layers(model.net):
        for buffer in ("running_mean", "running_var"):
            value = getattr(layer, buffer, None)
            if isinstance(value, np.ndarray):
                state[f"buffer:{path}.{buffer}"] = value
    return state


def load_model_state(model: Model, state: dict[str, np.ndarray]) -> None:
    """Inverse of :func:`model_state`; strict about coverage."""
    params = model.parameters()
    buffers: dict[str, tuple[Any, str]] = {}
    for path, layer in iter_layers(model.net):
        for buffer in ("running_mean", "running_var"):
            if isinstance(getattr(layer, buffer, None), np.ndarray):
                buffers[f"{path}.{buffer}"] = (layer, buffer)
    expected = {f"param:{name}" for name in params} | {
        f"buffer:{name}" for name in buffers
    }
    if expected != set(state):
        missing = sorted(expected - set(state))[:3]
        extra = sorted(set(state) - expected)[:3]
        raise ValueError(
            f"cached state does not match the model "
            f"(missing {missing}, unexpected {extra})"
        )
    for key, value in state.items():
        kind, name = key.split(":", 1)
        if kind == "param":
            params[name].value[...] = value
        else:
            layer, buffer = buffers[name]
            setattr(layer, buffer, value.copy())


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def hash_arrays(arrays: dict[str, np.ndarray]) -> str:
    """Order-independent content hash of named arrays."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(str(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def dataset_fingerprint(dataset: Dataset) -> str:
    """Content hash of the full train/test split."""
    return hash_arrays(
        {
            "name": np.frombuffer(dataset.name.encode("utf-8"), dtype=np.uint8),
            "train_x": dataset.train_x,
            "train_y": dataset.train_y,
            "test_x": dataset.test_x,
            "test_y": dataset.test_y,
        }
    )


def victim_spec(
    model: Model,
    dataset: Dataset,
    config: TrainConfig,
    arch: str = "",
    hardening: dict | None = None,
) -> dict:
    """The cache-key document for one (model, dataset, train) triple."""
    return {
        "schema": CACHE_SCHEMA,
        "arch": arch,
        "init_state": hash_arrays(model_state(model)),
        "dataset": dataset_fingerprint(dataset),
        "train": asdict(config),
        "hardening": hardening,
    }


# ----------------------------------------------------------------------
# The in-process memory layer
# ----------------------------------------------------------------------
# Module-level so that fork-started harness workers inherit every entry
# the parent loaded or trained before the pool was created: the victim
# arrays ship to workers through the fork copy-on-write page table
# instead of being re-read (or re-trained) per worker.  Keyed by
# ``(directory, content key)`` so the off/cold/warm semantics of a
# cache *directory* (which the victim-cache benchmark measures) are
# preserved exactly.
_MEMORY: dict[tuple[str, str], dict[str, np.ndarray]] = {}


def memory_cache_entries() -> dict[tuple[str, str], dict[str, np.ndarray]]:
    """A snapshot of the in-process layer (for shipping to workers)."""
    return dict(_MEMORY)


def memory_cache_put(
    directory: str, key: str, state: dict[str, np.ndarray]
) -> None:
    """Register one entry (workers attaching shared memory use this)."""
    _MEMORY[(directory, key)] = state


def memory_cache_clear() -> None:
    _MEMORY.clear()


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    memory_hits: int = 0


@dataclass
class VictimCache:
    """A directory of content-addressed ``.npz`` model states.

    With ``memory=True`` every load/store also populates the
    process-wide memory layer, so repeat lookups (and fork-inherited
    harness workers) skip the ``.npz`` round-trip entirely.  Default
    off so directory-level tests observe pure disk behaviour.
    """

    directory: str | None = None
    enabled: bool = True
    memory: bool = False
    stats: CacheStats = field(default_factory=CacheStats)

    @classmethod
    def from_env(cls) -> "VictimCache":
        value = os.environ.get(CACHE_ENV_VAR, "").strip()
        memory = (
            os.environ.get(MEMORY_ENV_VAR, "").strip().lower()
            not in _DISABLED_VALUES
        )
        if value.lower() in _DISABLED_VALUES and value != "":
            return cls(directory=None, enabled=False)
        if value:
            return cls(directory=value, memory=memory)
        return cls(
            directory=os.path.join(
                os.path.expanduser("~"), ".cache", "dram-locker", "victims"
            ),
            memory=memory,
        )

    @classmethod
    def disabled(cls) -> "VictimCache":
        return cls(directory=None, enabled=False)

    # ------------------------------------------------------------------
    def key_for(self, spec: dict) -> str:
        canonical = json.dumps(spec, sort_keys=True, default=list)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"victim-{key}.npz")

    def load(self, key: str) -> dict[str, np.ndarray] | None:
        if not self.enabled or self.directory is None:
            return None
        if self.memory:
            state = _MEMORY.get((self.directory, key))
            if state is not None:
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return state
        path = self.path_for(key)
        try:
            with np.load(path) as archive:
                state = {name: archive[name] for name in archive.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Missing, torn, or corrupted entry: treat as a miss; a
            # fresh train will overwrite it atomically.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if self.memory:
            _MEMORY[(self.directory, key)] = state
        return state

    def store(self, key: str, state: dict[str, np.ndarray]) -> str | None:
        if not self.enabled or self.directory is None:
            return None
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=f"victim-{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **state)
            os.replace(tmp_path, path)  # atomic on POSIX
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        if self.memory:
            _MEMORY[(self.directory, key)] = {
                name: np.array(value, copy=True) for name, value in state.items()
            }
        return path


# ----------------------------------------------------------------------
# Train-through-the-cache
# ----------------------------------------------------------------------
def cached_train(
    model: Model,
    dataset: Dataset,
    config: TrainConfig,
    cache: VictimCache | None = None,
    arch: str = "",
    hardening: dict | None = None,
    grad_hook: Callable[[Model], None] | None = None,
) -> tuple[bool, TrainResult | None]:
    """:func:`repro.nn.train.train`, memoised by content.

    Returns ``(hit, history)``; ``history`` is ``None`` on a hit (the
    cache stores the trained state, not the per-epoch curves).  The
    ``hardening`` descriptor must name any ``grad_hook`` behaviour --
    the hook itself cannot be hashed.
    """
    if cache is None:
        cache = VictimCache.from_env()
    if grad_hook is not None and hardening is None:
        raise ValueError(
            "a grad_hook changes the trained weights; describe it via "
            "`hardening=` so it participates in the cache key"
        )
    spec = victim_spec(
        model, dataset, config, arch=arch, hardening=hardening
    )
    key = cache.key_for(spec)
    state = cache.load(key)
    if state is not None:
        load_model_state(model, state)
        return True, None
    history = train(model, dataset, config, grad_hook=grad_hook)
    cache.store(key, model_state(model))
    return False, history
