"""8-bit post-training quantization -- the attack surface of BFA.

Weights of every Conv2d/Linear layer are quantized to two's-complement
int8 with a per-layer symmetric scale (``max|W| / 127``), exactly the
representation the paper attacks: flipping stored bit ``b`` of a weight
XORs its int8 image with ``1 << b``, so an MSB (sign) flip moves the
weight by the full dynamic range.

:class:`QuantizedModel` owns the int8 arrays, keeps the float model's
weights equal to their dequantized values, and exposes the bit-level
mutation API that the DRAM weight store drives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import Model

__all__ = ["QuantizedTensor", "QuantizedModel"]

QUANT_BITS = 8


@dataclass
class QuantizedTensor:
    """One layer's quantized weight: int8 payload + scale."""

    name: str
    q: np.ndarray  # int8, same shape as the float weight
    scale: float

    @property
    def bits(self) -> int:
        return self.q.size * QUANT_BITS

    def dequantize(self) -> np.ndarray:
        return (self.q.astype(np.float32)) * self.scale

    def flip_bit(self, flat_index: int, bit: int) -> None:
        """XOR one stored bit (two's-complement int8 semantics)."""
        if not 0 <= bit < QUANT_BITS:
            raise ValueError(f"bit {bit} out of range")
        flat = self.q.reshape(-1).view(np.uint8)  # shares memory with q
        flat[flat_index] ^= np.uint8(1 << bit)

    def to_bytes(self) -> np.ndarray:
        """Byte image as stored in DRAM (uint8 view of the int8 array)."""
        return self.q.reshape(-1).view(np.uint8).copy()

    def from_bytes(self, data: np.ndarray) -> None:
        """Overwrite the payload from a DRAM byte image."""
        data = np.asarray(data, dtype=np.uint8)
        if data.size != self.q.size:
            raise ValueError("byte image size mismatch")
        self.q.reshape(-1)[:] = data.view(np.int8)


class QuantizedModel:
    """A float model driven by int8 weight storage."""

    def __init__(self, model: Model, bits: int = QUANT_BITS):
        if bits != QUANT_BITS:
            raise ValueError("only 8-bit quantization is implemented")
        self.model = model
        self.tensors: dict[str, QuantizedTensor] = {}
        self._layer_cache: dict = {}
        self._quantize()
        self.load_into_model()

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------
    def _quantize(self) -> None:
        for path, layer in self.model.weight_layers().items():
            weight = layer.weight.value
            max_abs = float(np.max(np.abs(weight)))
            scale = max_abs / 127.0 if max_abs > 0 else 1.0
            q = np.clip(np.round(weight / scale), -128, 127).astype(np.int8)
            self.tensors[path] = QuantizedTensor(name=path, q=q, scale=scale)

    def load_into_model(self) -> None:
        """Sync the float model's weights to the dequantized payloads."""
        layers = self.model.weight_layers()
        for path, tensor in self.tensors.items():
            layers[path].weight.value[...] = tensor.dequantize()

    def sync_layer(self, name: str) -> None:
        """Sync one layer's float weight to its dequantized payload.

        When only ``name``'s payload changed, this is value-identical
        to :meth:`load_into_model` (dequantization is deterministic, so
        rewriting an unchanged tensor writes the same bytes) at a
        fraction of the cost -- the candidate-evaluation hot path of
        the attack-search engine flips one bit thousands of times."""
        layer = self._layer_cache.get(name)
        if layer is None:
            self._layer_cache = self.model.weight_layers()
            layer = self._layer_cache[name]
        layer.weight.value[...] = self.tensors[name].dequantize()

    # ------------------------------------------------------------------
    # Bit-level access
    # ------------------------------------------------------------------
    def flip_bit(self, name: str, flat_index: int, bit: int) -> None:
        """Flip one weight bit and propagate into the float model."""
        self.tensors[name].flip_bit(flat_index, bit)
        self.load_into_model()

    def total_weight_bits(self) -> int:
        return sum(tensor.bits for tensor in self.tensors.values())

    def total_weights(self) -> int:
        return sum(tensor.q.size for tensor in self.tensors.values())

    # ------------------------------------------------------------------
    # Snapshots (for repeated attacks from a clean model)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        return {name: tensor.q.copy() for name, tensor in self.tensors.items()}

    def restore(self, snapshot: dict[str, np.ndarray]) -> None:
        for name, payload in snapshot.items():
            self.tensors[name].q[...] = payload
        self.load_into_model()
