"""Neural-network layers with explicit manual backprop.

Small by design: exactly the layer set ResNet-20 and VGG-11 need, in
NumPy, with the forward pass caching what the backward pass consumes.
Conv2d and Linear support an optional ``weight_transform`` -- a
quantizer applied to the weight in the forward pass whose gradient is
passed straight through (STE), which is how the binary-weight hardening
baselines of Table II train.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .functional import col2im, contract, conv_output_hw, im2col

__all__ = [
    "Parameter",
    "Layer",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "GlobalAvgPool",
    "Flatten",
    "Sequential",
]

WeightTransform = Callable[[np.ndarray], np.ndarray]


class Parameter:
    """A trainable array with its gradient accumulator."""

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class Layer:
    """Base layer: ``forward`` caches, ``backward`` returns dX."""

    def params(self) -> dict[str, Parameter]:
        """Trainable parameters, keyed by local name."""
        return {}

    def children(self) -> list[tuple[str, "Layer"]]:
        """Named sub-layers, for hierarchical traversal."""
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


def _kaiming(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(np.float32)


class Conv2d(Layer):
    """3x3/1x1-style convolution via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int | None = None,
        bias: bool = False,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = kernel // 2 if pad is None else pad
        fan_in = in_channels * kernel * kernel
        self.weight = Parameter(_kaiming((out_channels, fan_in), fan_in, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self.weight_transform: WeightTransform | None = None
        self._cache: tuple | None = None

    def params(self) -> dict[str, Parameter]:
        named = {"weight": self.weight}
        if self.bias is not None:
            named["bias"] = self.bias
        return named

    def effective_weight(self) -> np.ndarray:
        if self.weight_transform is not None:
            return self.weight_transform(self.weight.value)
        return self.weight.value

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        oh, ow = conv_output_hw(h, w, self.kernel, self.stride, self.pad)
        cols = im2col(x, self.kernel, self.stride, self.pad)
        weight = self.effective_weight()
        out = contract("of,nfp->nop", weight, cols)
        if self.bias is not None:
            out += self.bias.value[None, :, None]
        self._cache = (x.shape, cols)
        return np.ascontiguousarray(
            out.reshape(n, self.out_channels, oh, ow)
        )

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "forward before backward"
        x_shape, cols = self._cache
        n = dy.shape[0]
        dy_flat = np.ascontiguousarray(dy.reshape(n, self.out_channels, -1))
        # STE: the gradient w.r.t. the raw weight equals the gradient
        # w.r.t. the transformed weight.
        self.weight.grad += contract("nop,nfp->of", dy_flat, cols)
        if self.bias is not None:
            self.bias.grad += dy_flat.sum(axis=(0, 2))
        weight = self.effective_weight()
        dcols = contract("of,nop->nfp", weight, dy_flat)
        return col2im(dcols, x_shape, self.kernel, self.stride, self.pad)


class Linear(Layer):
    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _kaiming((out_features, in_features), in_features, rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.weight_transform: WeightTransform | None = None
        self._x: np.ndarray | None = None

    def params(self) -> dict[str, Parameter]:
        named = {"weight": self.weight}
        if self.bias is not None:
            named["bias"] = self.bias
        return named

    def effective_weight(self) -> np.ndarray:
        if self.weight_transform is not None:
            return self.weight_transform(self.weight.value)
        return self.weight.value

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        out = x @ self.effective_weight().T
        if self.bias is not None:
            out += self.bias.value
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._x is not None
        self.weight.grad += dy.T @ self._x
        if self.bias is not None:
            self.bias.grad += dy.sum(axis=0)
        return dy @ self.effective_weight()


class BatchNorm2d(Layer):
    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: tuple | None = None

    def params(self) -> dict[str, Parameter]:
        return {"gamma": self.gamma, "beta": self.beta}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(np.float32)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(np.float32)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, x.shape, training)
        return self.gamma.value[None, :, None, None] * x_hat + self.beta.value[
            None, :, None, None
        ]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x_hat, inv_std, shape, was_training = self._cache
        n, _, h, w = shape
        m = n * h * w
        self.gamma.grad += (dy * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += dy.sum(axis=(0, 2, 3))
        gamma = self.gamma.value[None, :, None, None]
        dxhat = dy * gamma
        if not was_training:
            # Eval mode: running stats don't depend on x.
            return (dxhat * inv_std[None, :, None, None]).astype(np.float32)
        sum_dxhat = dxhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_dxhat_xhat = (dxhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (
            dxhat - sum_dxhat / m - x_hat * sum_dxhat_xhat / m
        ) * inv_std[None, :, None, None]
        return dx.astype(np.float32)


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return dy * self._mask


class MaxPool2d(Layer):
    """Non-overlapping k x k max pooling."""

    def __init__(self, k: int = 2):
        self.k = k
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError(f"spatial size {h}x{w} not divisible by {k}")
        blocks = x.reshape(n, c, h // k, k, w // k, k)
        out = blocks.max(axis=(3, 5))
        mask = blocks == out[:, :, :, None, :, None]
        self._cache = (mask, x.shape)
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        mask, shape = self._cache
        n, c, h, w = shape
        k = self.k
        spread = mask * dy[:, :, :, None, :, None]
        return spread.reshape(n, c, h, w).astype(np.float32)


class GlobalAvgPool(Layer):
    """Mean over the spatial dimensions -> (N, C)."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        n, c, h, w = self._shape
        return np.broadcast_to(
            dy[:, :, None, None] / (h * w), self._shape
        ).astype(np.float32)


class Flatten(Layer):
    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return dy.reshape(self._shape)


class Sequential(Layer):
    def __init__(self, *layers: Layer):
        self.layers = list(layers)

    def children(self) -> list[tuple[str, Layer]]:
        return [(str(index), layer) for index, layer in enumerate(self.layers)]

    def params(self) -> dict[str, Parameter]:
        named = {}
        for index, layer in enumerate(self.layers):
            for name, param in layer.params().items():
                named[f"{index}.{name}"] = param
        return named

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def forward_from(
        self, x: np.ndarray, start: int, training: bool = False
    ) -> np.ndarray:
        """Suffix forward: run ``layers[start:]`` on ``x``, the input
        activation of layer ``start``.  With ``x`` taken from a cached
        full forward, the result is bit-identical to running the whole
        network -- the prefix would recompute exactly those values.
        ``start >= len(self.layers)`` returns ``x`` unchanged (the
        "suffix" past the last layer is the identity on the logits)."""
        if not 0 <= start <= len(self.layers):
            raise IndexError(
                f"suffix start {start} out of range 0..{len(self.layers)}"
            )
        for layer in self.layers[start:]:
            x = layer.forward(x, training=training)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy
