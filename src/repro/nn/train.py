"""SGD training loop with optional regularization hooks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .data import Dataset
from .model import Model

__all__ = ["TrainConfig", "TrainResult", "train"]

RegularizerHook = Callable[[Model], None]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 6
    batch_size: int = 64
    lr: float = 0.08
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_decay_epochs: tuple[int, ...] = (4,)
    lr_decay_factor: float = 0.1
    seed: int = 0


@dataclass
class TrainResult:
    """Per-epoch history of one run."""

    train_loss: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else 0.0


def train(
    model: Model,
    dataset: Dataset,
    config: TrainConfig | None = None,
    grad_hook: RegularizerHook | None = None,
    verbose: bool = False,
) -> TrainResult:
    """SGD with momentum; ``grad_hook`` runs after each backward pass.

    The hook is how the Table II hardening baselines inject their
    regularizers (e.g. piece-wise clustering's +/-mean pull) without a
    separate trainer.
    """
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed)
    params = model.parameters()
    velocity = {name: np.zeros_like(p.value) for name, p in params.items()}
    result = TrainResult()
    lr = config.lr

    for epoch in range(config.epochs):
        if epoch in config.lr_decay_epochs:
            lr *= config.lr_decay_factor
        losses = []
        for x, y in dataset.batches(config.batch_size, rng):
            model.zero_grad()
            losses.append(model.loss_and_grad(x, y, training=True))
            if grad_hook is not None:
                grad_hook(model)
            for name, param in params.items():
                grad = param.grad + config.weight_decay * param.value
                velocity[name] = config.momentum * velocity[name] - lr * grad
                param.value += velocity[name]
        accuracy = model.accuracy(dataset.test_x, dataset.test_y)
        result.train_loss.append(float(np.mean(losses)))
        result.test_accuracy.append(accuracy)
        if verbose:
            print(
                f"  epoch {epoch + 1}/{config.epochs}: "
                f"loss {result.train_loss[-1]:.3f}, test acc {accuracy:.1f}%"
            )
    return result
