"""The paper's evaluation architectures: ResNet-20 and VGG-11.

Both keep their published block structure; ``width`` and ``input_hw``
scale them down so NumPy training finishes in seconds (the full-size
shapes are one argument away).  Defaults follow the paper's pairing:
ResNet-20 for CIFAR-10-like data, VGG-11 for CIFAR-100-like data, both
on 3x32x32 inputs.
"""

from __future__ import annotations

import numpy as np

from .layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
    Sequential,
)
from .model import Model

__all__ = ["BasicBlock", "resnet20", "vgg11"]


class BasicBlock(Layer):
    """ResNet v1 basic block: two 3x3 convs + identity/projection skip."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        rng: np.random.Generator,
    ):
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu_out = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Sequential | None = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, pad=0, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = None

    def children(self) -> list[tuple[str, Layer]]:
        named = [
            ("conv1", self.conv1),
            ("bn1", self.bn1),
            ("conv2", self.conv2),
            ("bn2", self.bn2),
        ]
        if self.shortcut is not None:
            named.append(("shortcut", self.shortcut))
        return named

    def params(self) -> dict[str, Parameter]:
        named = {}
        for name, child in self.children():
            for local, param in child.params().items():
                named[f"{name}.{local}"] = param
        return named

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        main = self.conv1.forward(x, training)
        main = self.bn1.forward(main, training)
        main = self.relu1.forward(main, training)
        main = self.conv2.forward(main, training)
        main = self.bn2.forward(main, training)
        skip = x if self.shortcut is None else self.shortcut.forward(x, training)
        return self.relu_out.forward(main + skip, training)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dsum = self.relu_out.backward(dy)
        dmain = self.bn2.backward(dsum)
        dmain = self.conv2.backward(dmain)
        dmain = self.relu1.backward(dmain)
        dmain = self.bn1.backward(dmain)
        dmain = self.conv1.backward(dmain)
        dskip = dsum if self.shortcut is None else self.shortcut.backward(dsum)
        return dmain + dskip


def resnet20(
    num_classes: int = 10,
    width: int = 16,
    input_hw: int = 32,
    seed: int = 0,
) -> Model:
    """ResNet-20: 3 stages x 3 basic blocks (He et al. CIFAR variant)."""
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [
        Conv2d(3, width, 3, rng=rng),
        BatchNorm2d(width),
        ReLU(),
    ]
    channels = width
    for stage, stage_channels in enumerate((width, 2 * width, 4 * width)):
        for block in range(3):
            stride = 2 if (stage > 0 and block == 0) else 1
            layers.append(BasicBlock(channels, stage_channels, stride, rng))
            channels = stage_channels
    layers += [GlobalAvgPool(), Linear(channels, num_classes, rng=rng)]
    net = Sequential(*layers)
    return Model(net, name=f"resnet20(w{width},{input_hw}x{input_hw})")


_VGG11_PLAN: tuple[int | str, ...] = (
    64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M",
)


def vgg11(
    num_classes: int = 100,
    width: int = 64,
    input_hw: int = 32,
    seed: int = 0,
) -> Model:
    """VGG-11 with batch norm (configuration A), width-scalable.

    ``width`` rescales the canonical 64/128/256/512 channel plan; the
    classifier is the single linear layer used for CIFAR-scale inputs.
    """
    rng = np.random.default_rng(seed)
    scale = width / 64.0
    layers: list[Layer] = []
    channels = 3
    hw = input_hw
    for item in _VGG11_PLAN:
        if item == "M":
            if hw < 2:
                continue  # scaled-down inputs skip the deepest pools
            layers.append(MaxPool2d(2))
            hw //= 2
        else:
            out_channels = max(4, int(item * scale))
            layers += [
                Conv2d(channels, out_channels, 3, rng=rng),
                BatchNorm2d(out_channels),
                ReLU(),
            ]
            channels = out_channels
    layers += [Flatten(), Linear(channels * hw * hw, num_classes, rng=rng)]
    net = Sequential(*layers)
    return Model(net, name=f"vgg11(w{width},{input_hw}x{input_hw})")
