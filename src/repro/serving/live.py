"""The live serving frontend: admission control, bounded queues,
dynamic channel scaling, and the threaded open-loop ingestion server.

This module holds everything the trace-replay and wall-clock-paced
paths add *around* :class:`~repro.serving.engine.ServingSimulation`
(which stays the single owner of the simulated devices):

* :class:`AdmissionConfig` / :class:`AdmissionController` -- per-tenant
  token-bucket throttling in trace time plus SLA-pressure shedding off
  the sojourn-p99 signal; every drop is booked per tenant, per reason,
  in the :class:`~repro.serving.sla.SLAAccountant`.
* :class:`ChannelBacklog` -- the bounded outstanding-op accounting per
  channel; when an op's channels are full at arrival it is shed with
  reason ``"queue-full"``.
* :class:`ScalingConfig` / :class:`ChannelScaler` -- spill a hot
  tenant's traffic onto a pre-built spare channel when its sojourn p99
  breaches the target (block interleaving only: adding a channel under
  row interleaving would re-shard every tenant's address space).
* :class:`LiveServer` -- the two-thread open-loop server: an ingestion
  thread paces arrivals off the trace clock (``speedup`` x recorded
  rate), screens them through admission control and the backlog bound,
  and pre-translates admitted streams via the sharded system's
  non-blocking ``handoff_stream``; the executor (the caller's thread)
  owns the simulation and is the only thread that touches device
  state.

Determinism: the synchronous replay path (``speedup=0``) never
constructs these thread objects at all -- admission decisions there
are pure functions of the trace and seed, which is what the
replay-equivalence and shedding-determinism tests pin.  Wall-clock
pacing makes *which* ops overflow the backlog timing-dependent by
design; the conservation identity (offered == served + shed) is the
invariant tests hold onto.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from .. import obs
from ..controller.request import MemRequest, RequestRun
from .sla import SLAAccountant
from .workload import derive_seed

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ChannelBacklog",
    "ScalingConfig",
    "ChannelScaler",
    "LiveServer",
    "LiveServingError",
]


class LiveServingError(RuntimeError):
    """A live serving run failed with structured context.

    Wraps the underlying exception (``__cause__``) from either thread
    instead of letting it hang the process: ``context`` carries the
    failing phase (``"ingestion"`` or ``"executor"``) and the
    conservation counters at the moment of failure, so partial runs
    remain diagnosable.
    """

    def __init__(self, message: str, context: dict):
        super().__init__(f"{message} [context: {context}]")
        self.context = context


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control knobs for trace replay and live serving.

    Attributes:
        rate: Token-bucket refill rate, ops per trace-second per
            tenant (``None`` disables throttling).
        burst: Bucket capacity in ops (also the initial fill).
        p99_target_ns: Sojourn-p99 target; tenants above it are
            pressure-shed (``None`` disables pressure shedding).
        min_samples: Sojourn observations a tenant needs before the
            pressure signal is trusted.
        shed_fraction: Probability an over-target op is shed (draws
            come from the dedicated ``derive_seed("admission", seed)``
            stream, so replay shedding is deterministic).
        queue_depth: Bounded outstanding-op limit per channel for the
            wall-clock-paced live server (ignored by synchronous
            replay, whose backlog is always zero).
        exempt: Tenant names never shed (e.g. a victim owner whose
            guard traffic must keep flowing).
    """

    rate: float | None = None
    burst: float = 8.0
    p99_target_ns: float | None = None
    min_samples: int = 32
    shed_fraction: float = 0.5
    queue_depth: int = 64
    exempt: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or None)")
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        if not 0.0 <= self.shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be within [0, 1]")
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")


class AdmissionController:
    """Per-tenant admission decisions over one serving run.

    Two mechanisms compose (throttle first, then pressure):

    * **token bucket** -- refilled in *trace time* (arrival
      timestamps), so a decision depends only on the trace and the
      config, never on the wall clock;
    * **SLA-pressure shedding** -- when a tenant's sojourn p99 (read
      from the accountant's books) breaches the target, each arriving
      op is shed with probability ``shed_fraction``.

    The controller only *decides*; the caller books the drop via
    :meth:`~repro.serving.sla.SLAAccountant.observe_shed` so shed
    accounting lives with the rest of the SLA books.
    """

    def __init__(
        self, config: AdmissionConfig, sla: SLAAccountant, seed: int = 0
    ):
        """Bind the controller to a run's accountant and seed."""
        self.config = config
        self._sla = sla
        self._rng = np.random.default_rng(derive_seed("admission", seed))
        self._tokens: dict[str, float] = {}
        self._refilled_at: dict[str, float] = {}

    def screen(self, tenant: str, arrival_s: float) -> str | None:
        """Decide one arrival: ``None`` admits, otherwise the shed
        reason (``"throttled"`` or ``"pressure"``)."""
        config = self.config
        if tenant in config.exempt:
            return None
        if config.rate is not None:
            tokens = self._tokens.get(tenant, config.burst)
            last = self._refilled_at.get(tenant, 0.0)
            tokens = min(
                config.burst, tokens + (arrival_s - last) * config.rate
            )
            self._refilled_at[tenant] = arrival_s
            if tokens < 1.0:
                self._tokens[tenant] = tokens
                return "throttled"
            self._tokens[tenant] = tokens  # consumed below on admit
        if config.p99_target_ns is not None:
            p99 = self._sla.sojourn_p99_ns(tenant, config.min_samples)
            if (
                p99 is not None
                and p99 > config.p99_target_ns
                and self._rng.random() < config.shed_fraction
            ):
                return "pressure"
        if config.rate is not None:
            self._tokens[tenant] -= 1.0
        return None


class ChannelBacklog:
    """Bounded outstanding-op accounting, one counter per channel.

    The live server's ingestion thread acquires an op's channels
    all-or-nothing at arrival; the executor releases them after the op
    completes.  When any involved channel is at ``depth`` the op is
    shed with reason ``"queue-full"`` -- the bounded
    outstanding-request queue of the serving frontend.
    """

    def __init__(self, channels: int, depth: int):
        """``channels`` counters, each bounded at ``depth``."""
        if channels <= 0 or depth <= 0:
            raise ValueError("channels and depth must be positive")
        self.depth = depth
        self._outstanding = [0] * channels
        self._lock = threading.Lock()

    def try_acquire(self, indices) -> bool:
        """Atomically admit one op onto ``indices``; False when any
        involved channel is full (nothing is acquired then)."""
        with self._lock:
            if any(
                self._outstanding[index] >= self.depth for index in indices
            ):
                return False
            for index in indices:
                self._outstanding[index] += 1
            tel = obs.ACTIVE
            if tel is not None:
                for index in indices:
                    tel.metrics.high_water(
                        "serving.backlog_depth",
                        self._outstanding[index],
                        channel=index,
                    )
            return True

    def release(self, indices) -> None:
        """Return one completed op's slots."""
        with self._lock:
            for index in indices:
                if self._outstanding[index] <= 0:
                    raise RuntimeError(
                        f"release without acquire on channel {index}"
                    )
                self._outstanding[index] -= 1

    def outstanding(self, index: int) -> int:
        """Current outstanding ops on one channel."""
        with self._lock:
            return self._outstanding[index]


@dataclass(frozen=True)
class ScalingConfig:
    """Dynamic channel-scaling knobs.

    Attributes:
        max_channels: Total channel budget; the simulation pre-builds
            ``max_channels - channels`` spare channels that receive no
            tenant partition until a spill assigns them one.
        p99_target_ns: Sojourn-p99 threshold that marks a tenant hot.
        min_samples: Sojourn observations required before the signal
            is trusted (mirrors the admission controller).
    """

    max_channels: int
    p99_target_ns: float
    min_samples: int = 32

    def __post_init__(self) -> None:
        if self.max_channels <= 0:
            raise ValueError("max_channels must be positive")
        if self.p99_target_ns <= 0:
            raise ValueError("p99_target_ns must be positive")


class ChannelScaler:
    """Spill hot tenants onto spare channels when p99 breaches target.

    At each slice boundary (:meth:`on_epoch`) every un-spilled tenant's
    sojourn p99 is checked; the first breacher claims the next spare
    channel and gets a **replica partition** at the same offset
    discipline as the home one (starting at the channel's tenant-zone
    base).  From then on :meth:`route` alternates the tenant's ops
    between home and replica rows, halving its per-channel load.  The
    replica carries load, not data consistency -- tenant rows hold
    synthetic fill, and nothing in the serving payload reads them back.

    Deterministic: decisions depend only on the (deterministic) sojourn
    books and tenant order; no RNG is involved.
    """

    def __init__(
        self,
        system,
        partitions: dict[str, tuple[int, int]],
        *,
        base_channels: int,
        scaling: ScalingConfig,
        tenant_first_local: int,
    ):
        """``partitions`` maps tenant name -> home ``(first, count)``
        system-row range; spare channels are ``base_channels ..
        scaling.max_channels - 1`` of ``system``."""
        self._system = system
        self._partitions = dict(partitions)
        self._scaling = scaling
        self._tenant_first_local = tenant_first_local
        self._spare = list(range(base_channels, scaling.max_channels))
        self._spill: dict[str, tuple[int, int, int]] = {}
        self._toggle: dict[str, bool] = {}
        # Tenants whose home channel failed: route() moves *every* op
        # to the replica instead of alternating.
        self._forced: set[str] = set()

    def on_epoch(self, sla: SLAAccountant) -> None:
        """The slice-boundary check: spill newly hot tenants while
        spare channels remain (tenant-name order breaks ties)."""
        if not self._spare:
            return
        for tenant in sorted(self._partitions):
            if not self._spare:
                return
            if tenant in self._spill:
                continue
            p99 = sla.sojourn_p99_ns(tenant, self._scaling.min_samples)
            if p99 is not None and p99 > self._scaling.p99_target_ns:
                self._spill_tenant(tenant)

    def _spill_tenant(self, tenant: str) -> None:
        first, count = self._partitions[tenant]
        channel = self._spare[0]
        zone = (
            self._system.interleaver.rows_per_channel
            - self._tenant_first_local
        )
        if count > zone:
            return  # partition larger than a spare channel's zone
        self._spare.pop(0)
        spill_first = self._system.system_row(
            channel, self._tenant_first_local
        )
        self._spill[tenant] = (first, count, spill_first)
        self._toggle[tenant] = False
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("serving.scaler_spills", tenant=tenant)

    def on_channel_failed(self, failed_channel: int) -> None:
        """Fail-over: force-spill every tenant homed on a failed
        channel onto a spare, and stop load-balancing back onto it.

        Tenants already spilled (load-balancing) switch to full
        replica routing; un-spilled tenants claim the next healthy
        spare.  Tenants left without a spare keep their home rows and
        are shed upstream (``"channel_fault"``) -- degradation stays
        graceful, conservation stays exact.
        """
        self._spare = [
            channel for channel in self._spare if channel != failed_channel
        ]
        for tenant in sorted(self._partitions):
            first, _count = self._partitions[tenant]
            home_channel, _ = self._system.interleaver.locate(first)
            if home_channel != failed_channel:
                continue
            if tenant not in self._spill:
                if not self._spare:
                    continue
                self._spill_tenant(tenant)
            if tenant in self._spill:
                self._forced.add(tenant)

    def route(self, tenant: str, requests):
        """Translate every other op of a spilled tenant to its replica
        partition -- every op, for tenants force-spilled off a failed
        channel; everyone else's streams pass through untouched."""
        info = self._spill.get(tenant)
        if info is None:
            return requests
        if tenant not in self._forced:
            flip = not self._toggle[tenant]
            self._toggle[tenant] = flip
            if not flip:
                return requests
        first, _count, spill_first = info

        def move(request: MemRequest) -> MemRequest:
            return replace(request, row=spill_first + (request.row - first))

        if isinstance(requests, RequestRun):
            return RequestRun(move(requests.request), requests.count)
        return [move(request) for request in requests]

    def report(self) -> dict:
        """The payload's ``"scaling"`` section: who spilled where."""
        spilled = {}
        for tenant in sorted(self._spill):
            first, count, spill_first = self._spill[tenant]
            channel, _ = self._system.interleaver.locate(spill_first)
            spilled[tenant] = {
                "channel": channel,
                "home_first": first,
                "rows": count,
                "spill_first": spill_first,
            }
        return {
            "spilled": spilled,
            "spare_remaining": len(self._spare),
            # Present only on injected-fault runs, so fault-free
            # payloads keep their exact historical shape.
            **(
                {"forced": sorted(self._forced)} if self._forced else {}
            ),
        }


class LiveServer:
    """Wall-clock-paced open-loop serving over a recorded trace.

    Two threads:

    * the **ingestion thread** walks the trace, sleeping until each
      op's scaled arrival time (``arrival_s / speedup`` on the wall
      clock), screens it through admission control and the per-channel
      :class:`ChannelBacklog`, pre-translates admitted streams via the
      sharded system's non-blocking
      :meth:`~repro.serving.sharded.ShardedMemorySystem.handoff_stream`
      (pure address arithmetic -- no device state), and enqueues the
      result;
    * the **executor** (the thread that calls :meth:`run`) owns the
      simulation: it drains the transport queue in order, executing
      ops, booking sheds, and closing slices -- the same
      ``serve_op`` / ``end_slice`` code path as synchronous replay.

    Pressure-shedding reads of the sojourn books from the ingestion
    thread are racy by design (a stale p99 sheds one op early or
    late); all *mutation* of device and SLA state stays on the
    executor.
    """

    def __init__(
        self,
        sim,
        trace,
        *,
        speedup: float,
        admission: AdmissionController | None = None,
    ):
        """Serve ``trace`` over ``sim`` at ``speedup`` x recorded pace.

        ``sim`` is an unconsumed
        :class:`~repro.serving.engine.ServingSimulation`; ``admission``
        is optional (everything is admitted without it, modulo the
        backlog bound, whose depth comes from the admission config or
        defaults to 64).
        """
        if speedup <= 0:
            raise ValueError("speedup must be positive for live pacing")
        self.sim = sim
        self.trace = trace
        self.speedup = speedup
        self.admission = admission
        depth = (
            admission.config.queue_depth if admission is not None else 64
        )
        self.backlog = ChannelBacklog(len(sim.system.channels), depth)
        self.offered = 0
        self.served = 0
        self.shed = 0
        #: Bounded wait for the ingestion thread at shutdown; past it
        #: the (daemon) thread is abandoned rather than deadlocking.
        self.join_timeout_s = 10.0
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def _ingest(self, transport: "queue.Queue") -> None:
        sim = self.sim
        try:
            start = time.monotonic()
            for slice_index in range(self.trace.slices):
                for top in self.trace.slice_ops(slice_index):
                    if self._stop.is_set():
                        return
                    target = start + top.arrival_s / self.speedup
                    delay = target - time.monotonic()
                    # Stop-aware pacing: a failed executor releases the
                    # ingestion thread mid-sleep instead of letting it
                    # pace out the rest of the trace.
                    if delay > 0 and self._stop.wait(delay):
                        return
                    reason = (
                        self.admission.screen(top.tenant, top.arrival_s)
                        if self.admission is not None
                        else None
                    )
                    involved = sim._involved_channels(top.requests)
                    if reason is None and not self.backlog.try_acquire(
                        involved
                    ):
                        reason = "queue-full"
                    if reason is not None:
                        transport.put(("shed", top, reason))
                        continue
                    prepared = None
                    if (
                        sim._queue is None
                        and sim._scaler is None
                        and sim.fault is None
                    ):
                        # Address translation + batching off the
                        # executor; execution stays deferred.  Disabled
                        # under fault injection: serve_op must see raw
                        # requests to route them around a dead channel.
                        prepared = sim.system.handoff_stream(
                            top.requests, sim.sla.sink(top.tenant)
                        )
                    transport.put(("op", top, involved, prepared))
                transport.put(("slice", slice_index))
            transport.put(("eof",))
        except BaseException as error:  # surfaced by the executor
            transport.put(("error", error))

    def run(self) -> dict:
        """Serve the whole trace; returns the scenario payload with the
        ``"live"`` section attached."""
        sim = self.sim
        transport: "queue.Queue" = queue.Queue()
        # Daemon: a thread the bounded join below abandons must never
        # keep the interpreter alive at process exit.
        ingest = threading.Thread(
            target=self._ingest,
            args=(transport,),
            name="serving-ingest",
            daemon=True,
        )
        wall_start = time.monotonic()
        ingest.start()
        phase = "executor"
        try:
            while True:
                item = transport.get()
                kind = item[0]
                if kind == "op":
                    _, top, involved, prepared = item
                    self.offered += 1
                    if sim.serve_op(
                        top.tenant,
                        top.kind,
                        top.requests,
                        arrival_s=top.arrival_s,
                        prepared=prepared,
                    ):
                        self.served += 1
                    else:
                        # Shed onto a failed channel inside serve_op
                        # (reason "channel_fault", already booked).
                        self.shed += 1
                    self.backlog.release(involved)
                elif kind == "shed":
                    _, top, reason = item
                    self.offered += 1
                    self.shed += 1
                    sim.sla.observe_shed(top.tenant, reason)
                elif kind == "slice":
                    sim.end_slice()
                elif kind == "error":
                    phase = "ingestion"
                    raise item[1]
                else:  # eof
                    break
        except BaseException as error:
            # Bounded teardown: signal the ingestion thread, give it a
            # bounded join, and surface the failure with context -- a
            # wedged executor must not deadlock the process on join().
            self._stop.set()
            ingest.join(timeout=self.join_timeout_s)
            raise LiveServingError(
                "live serving run failed",
                {
                    "phase": phase,
                    "error": f"{type(error).__name__}: {error}",
                    "offered": self.offered,
                    "served": self.served,
                    "shed": self.shed,
                    "ingest_alive": ingest.is_alive(),
                },
            ) from error
        ingest.join(timeout=self.join_timeout_s)
        if ingest.is_alive():
            self._stop.set()
            raise LiveServingError(
                "ingestion thread still running after eof",
                {
                    "phase": "ingestion",
                    "offered": self.offered,
                    "served": self.served,
                    "shed": self.shed,
                    "ingest_alive": True,
                },
            )
        wall_s = time.monotonic() - wall_start
        live = dict(
            sim.sla.live_report(),
            pacing={
                "speedup": self.speedup,
                "wall_s": wall_s,
                "trace_duration_s": self.trace.duration_s,
                "offered": self.offered,
                "served": self.served,
                "shed": self.shed,
            },
        )
        return sim.payload(live=live)
