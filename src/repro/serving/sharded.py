"""The sharded multi-channel memory system.

``ShardedMemorySystem`` composes ``config.channels`` independent
channels -- each its own :class:`~repro.dram.device.DRAMDevice`,
:class:`~repro.controller.MemoryController`, optional per-channel
baseline defense instance, and optional per-channel
:class:`~repro.locker.DRAMLocker` lock table -- behind one flat
*system row* address space, placed by the
:class:`~repro.dram.address.ChannelInterleaver` policy layer.

Requests address system rows; the system translates them to per-channel
rows and routes them through that channel's controller, so every
protection effect (lock-table skips, unlock-SWAPs, defense
mitigations, RowHammer disturbance) stays the emergent per-channel
behaviour the single-channel experiments pinned down.  Channels are
truly independent memory systems: each has its own clock, and the
system's *makespan* (the simulated time a serving run took) is the
maximum channel clock -- which is what makes aggregate requests/sec
scale with the channel count.

With ``channels == 1`` the translation is the identity and every
observable -- stats, flips, stored bytes, locker state, RNG streams --
is identical to driving a bare ``MemoryController``
(``tests/test_serving.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

from .. import obs
from ..controller.controller import MemoryController, make_summary_sink
from ..controller.events import SystemEventQueue
from ..controller.request import (
    Kind,
    MemRequest,
    RequestResult,
    RequestRun,
    RunSummary,
)
from ..defenses.base import Defense
from ..dram.address import ChannelInterleaver
from ..dram.config import DRAMConfig
from ..dram.device import DRAMDevice
from ..dram.vulnerability import VulnerabilityMap
from ..locker.locker import DRAMLocker, LockerConfig
from ..locker.planner import LockMode, ProtectionPlan
from .workload import derive_seed

__all__ = ["ChannelState", "ShardedMemorySystem"]


def _run_batch(state: "ChannelState", batch, sink) -> None:
    """Execute one per-channel sub-batch, stamping audit events with
    the channel index.  Applies at execution/drain time, so the stamp
    is identical whether the stream ran immediately (bulk) or deferred
    through the event queue (events)."""
    tel = obs.ACTIVE
    if tel is None:
        state.controller.execute_stream(batch, sink)
        return
    with tel.audit.context(channel=state.index):
        state.controller.execute_stream(batch, sink)


@dataclass
class ChannelState:
    """One channel's stack."""

    index: int
    device: DRAMDevice
    controller: MemoryController
    locker: DRAMLocker | None
    defense: Defense | None


class ShardedMemorySystem:
    """N channels x MemoryController behind one system address space."""

    def __init__(
        self,
        config: DRAMConfig,
        *,
        policy: str = "row",
        trh: int | None = None,
        protected: bool = False,
        locker_config: LockerConfig | None = None,
        defense_builder: Callable[[], Defense] | None = None,
        weak_cell_fraction: float = 0.0,
        seed: int = 0,
        engine: str = "bulk",
    ):
        """Build the per-channel stacks.

        ``protected`` installs one DRAM-Locker per channel (its own
        lock table, swap engine, and free-row pools); ``locker_config``
        is the channel-0 template -- other channels get a re-seeded
        copy so their swap-failure draws are independent.
        ``defense_builder`` is a factory called once per channel, the
        same way the harness's ``DEFENSE_BUILDERS`` entries are.
        Channel 0 uses ``seed`` itself (the single-channel equivalence
        anchor); channel ``c > 0`` derives ``derive_seed(f"channel-{c}",
        seed)``.
        """
        self.config = config
        self.interleaver = ChannelInterleaver(config, policy=policy)
        self.engine = engine
        channel_config = config.channel_config()
        self.channels: list[ChannelState] = []
        for index in range(config.channels):
            channel_seed = self.channel_seed(index, seed)
            device = DRAMDevice(
                channel_config,
                vulnerability=VulnerabilityMap(
                    channel_config,
                    seed=channel_seed,
                    weak_cell_fraction=weak_cell_fraction,
                ),
                trh=trh,
            )
            locker = None
            if protected:
                template = locker_config or LockerConfig()
                locker = DRAMLocker(
                    device,
                    template
                    if index == 0
                    else replace(template, seed=channel_seed),
                )
            defense = defense_builder() if defense_builder is not None else None
            controller = MemoryController(
                device, defense=defense, locker=locker, engine=engine
            )
            self.channels.append(
                ChannelState(index, device, controller, locker, defense)
            )
        # Channels marked failed by fault injection; callers (the
        # serving engine) must route or shed around them -- the stacks
        # themselves stay intact so post-mortem reads still work.
        self._failed: set[int] = set()

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail_channel(self, index: int) -> None:
        """Mark one channel failed: it stops serving.  The serving
        engine consults :meth:`channel_failed` and sheds (or spills via
        the channel scaler) every op that would land on it."""
        if not 0 <= index < len(self.channels):
            raise ValueError(f"no channel {index} to fail")
        self._failed.add(index)

    def stall_channel(self, index: int, stall_ns: float) -> None:
        """A one-shot brownout: jump the channel's clock ``stall_ns``
        forward (ticking its refresh machinery), so every later op on
        it completes late -- the sojourn books absorb the hit."""
        if not 0 <= index < len(self.channels):
            raise ValueError(f"no channel {index} to stall")
        self.channels[index].device.advance(stall_ns)

    def channel_failed(self, index: int) -> bool:
        """Whether fault injection has failed this channel."""
        return index in self._failed

    @property
    def failed_channels(self) -> tuple[int, ...]:
        """Failed channel indices, sorted."""
        return tuple(sorted(self._failed))

    @staticmethod
    def channel_seed(index: int, seed: int) -> int:
        """Channel 0 keeps the base seed (so a single-channel system is
        seed-identical to a bare controller); later channels derive."""
        if index == 0:
            return seed
        return derive_seed(f"channel-{index}", seed)

    # ------------------------------------------------------------------
    # Address plumbing
    # ------------------------------------------------------------------
    @property
    def system_rows(self) -> int:
        """Total rows in the flat system address space."""
        return self.interleaver.system_rows

    def locate(self, system_row: int) -> tuple[ChannelState, int]:
        """Resolve a system row to its channel stack and local row."""
        channel, local = self.interleaver.locate(system_row)
        return self.channels[channel], local

    def system_row(self, channel: int, local_row: int) -> int:
        """Lift a channel-local row back to its system address."""
        return self.interleaver.system_row(channel, local_row)

    def neighbors(self, system_row: int, radius: int = 1) -> list[int]:
        """System rows physically adjacent to ``system_row`` -- i.e.
        its channel-local neighbors lifted back to system space
        (adjacency never crosses a channel)."""
        state, local = self.locate(system_row)
        return [
            self.system_row(state.index, neighbor)
            for neighbor in state.device.mapper.neighbors(local, radius=radius)
        ]

    def _translate(self, request: MemRequest) -> tuple[ChannelState, MemRequest]:
        state, local = self.locate(request.row)
        if local == request.row:
            return state, request
        return state, replace_row(request, local)

    # ------------------------------------------------------------------
    # Protection setup
    # ------------------------------------------------------------------
    def protect(
        self,
        system_rows: Iterable[int],
        mode: LockMode = LockMode.ADJACENT,
        radius: int = 1,
    ) -> dict[int, ProtectionPlan]:
        """Protect system rows via each channel's own locker."""
        per_channel: dict[int, list[int]] = {}
        for row in system_rows:
            state, local = self.locate(row)
            per_channel.setdefault(state.index, []).append(local)
        plans: dict[int, ProtectionPlan] = {}
        for index, rows in sorted(per_channel.items()):
            locker = self.channels[index].locker
            if locker is None:
                raise RuntimeError("system built without lockers (protected=False)")
            plans[index] = locker.protect(rows, mode=mode, radius=radius)
        return plans

    # ------------------------------------------------------------------
    # Execution (system-row in, channel-routed out)
    # ------------------------------------------------------------------
    def execute(self, request: MemRequest) -> RequestResult:
        """Route one system-row request to its owning channel."""
        state, translated = self._translate(request)
        return state.controller.execute(translated)

    def read(
        self, system_row: int, column: int = 0, size: int = 64,
        privileged: bool = False,
    ) -> RequestResult:
        """Convenience READ of one system row."""
        return self.execute(
            MemRequest(Kind.READ, system_row, column, size, privileged=privileged)
        )

    def write(
        self, system_row: int, column: int = 0, size: int = 64,
        privileged: bool = False,
    ) -> RequestResult:
        """Convenience WRITE to one system row."""
        return self.execute(
            MemRequest(Kind.WRITE, system_row, column, size, privileged=privileged)
        )

    def execute_run(self, request: MemRequest, count: int) -> RunSummary:
        """Summary-mode run of one repeated request (a hammer burst):
        the whole run lands on one channel, so it rides that channel's
        bulk engine untouched."""
        state, translated = self._translate(request)
        return state.controller.execute_run(translated, count)

    def hammer_run(self, system_row: int, count: int = 1) -> RunSummary:
        """``count`` attacker activations of one system row, O(1) memory."""
        return self.execute_run(
            MemRequest(Kind.ACT, system_row, privileged=False), count
        )

    def _batches(
        self, requests: Sequence[MemRequest]
    ) -> list[tuple[ChannelState, Sequence[MemRequest]]]:
        """Translate a system-row stream into per-channel sub-batches.

        Consecutive requests for one channel become one sub-stream (so
        same-row ACT runs keep their run-length detection); a
        :class:`RequestRun` is routed whole.  Pure address arithmetic:
        no device state is touched, which is what lets
        :meth:`handoff_stream` run it on the ingestion thread.
        """
        if isinstance(requests, RequestRun):
            state, translated = self._translate(requests.request)
            return [(state, RequestRun(translated, len(requests)))]
        batches: list[tuple[ChannelState, list[MemRequest]]] = []
        for request in requests:
            state, translated = self._translate(request)
            if not batches or batches[-1][0] is not state:
                batches.append((state, []))
            batches[-1][1].append(translated)
        return batches

    def execute_stream(self, requests: Sequence[MemRequest], sink) -> None:
        """Drain a mixed stream through the per-channel bulk engines.

        Routing and sub-batching per :meth:`_batches`; results flow
        into ``sink`` via the controller sink protocol.
        """
        for state, batch in self._batches(requests):
            _run_batch(state, batch, sink)

    def handoff_stream(self, requests: Sequence[MemRequest], sink):
        """Non-blocking hand-off: translate and batch *now*, execute
        *later* -- returns a zero-argument thunk that performs the
        deferred :meth:`execute_stream`.

        The live frontend's ingestion thread calls this so address
        translation and run-length batching happen off the executor;
        only the returned thunk (run by whichever thread owns the
        devices) touches device or sink state.
        """
        batches = self._batches(requests)

        def execute() -> None:
            """Run the prepared per-channel batches, in order."""
            for state, batch in batches:
                _run_batch(state, batch, sink)

        return execute

    def execute_summary(self, requests: Sequence[MemRequest]) -> RunSummary:
        """Summary-mode stream execution (one RunSummary, no
        per-request results), routed across channels."""
        sink = make_summary_sink()
        self.execute_stream(requests, sink)
        return sink.summary

    # ------------------------------------------------------------------
    # Event-driven execution (the serving engine's "events" drive)
    # ------------------------------------------------------------------
    def event_queue(self) -> SystemEventQueue:
        """One shared cross-channel event queue over this system.

        The queue schedules submitted streams in slowest-channel-first
        order while preserving per-channel and per-sink FIFO order --
        the two constraints that make its payloads bit-identical to
        immediate :meth:`execute_stream` calls (channels are
        independent state machines; sinks fold observations in
        first-seen order).  The serving engine drains it once per time
        slice (the SLA-histogram epoch).
        """
        return SystemEventQueue(
            lambda channel: self.channels[channel].device.now_ns
        )

    def submit_stream(
        self, queue: SystemEventQueue, requests: Sequence[MemRequest], sink
    ) -> None:
        """Enqueue a stream on ``queue`` for clock-ordered execution.

        Routing and per-channel sub-batching are identical to
        :meth:`execute_stream` -- translation happens now, execution at
        drain time.  A stream spanning several channels is submitted as
        one atomic item on every involved channel, so its sub-batches
        run back to back in original order.
        """
        batches = self._batches(requests)
        if not batches:
            return
        channels = tuple(dict.fromkeys(state.index for state, _ in batches))

        def run_batches() -> None:
            """Drain this submission's per-channel batches, in order."""
            for state, batch in batches:
                _run_batch(state, batch, sink)

        queue.submit(channels, sink, run_batches)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def peek_bytes(self, system_row: int, column: int, length: int):
        """Raw bytes of one system row, without touching timing state."""
        state, local = self.locate(system_row)
        return state.device.peek_bytes(local, column, length)

    def register_template(self, system_row: int, bits: list[int]) -> None:
        """Register an attacker data-pattern template on one system row."""
        state, local = self.locate(system_row)
        state.device.vulnerability.register_template(local, bits)

    @property
    def makespan_ns(self) -> float:
        """Simulated completion time: the slowest channel's clock.
        Channels are independent memory systems serving in parallel."""
        return max(state.device.now_ns for state in self.channels)

    def aggregate_stats(self) -> dict[str, float]:
        """Sum of every channel's ``MemoryStats.as_dict()``."""
        totals: dict[str, float] = {}
        for state in self.channels:
            for key, value in state.device.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def channel_report(self) -> list[dict]:
        """Per-channel load/clock summary for the serving payload."""
        report = []
        for state in self.channels:
            stats = state.device.stats
            report.append(
                {
                    "channel": state.index,
                    "now_ns": state.device.now_ns,
                    "activates": stats.activates,
                    "reads": stats.reads,
                    "writes": stats.writes,
                    "blocked_requests": stats.blocked_requests,
                    "bit_flips": stats.bit_flips,
                    "busy_ns": stats.busy_ns,
                    # Only present on injected-fault runs, so fault-free
                    # payloads keep their exact historical shape.
                    **(
                        {"failed": True}
                        if state.index in self._failed
                        else {}
                    ),
                }
            )
        return report

    def locker_summaries(self) -> dict[str, dict]:
        """Per-channel exposure-window stats (empty when unprotected)."""
        return {
            f"channel-{state.index}": state.locker.exposure_summary()
            for state in self.channels
            if state.locker is not None
        }


def replace_row(request: MemRequest, row: int) -> MemRequest:
    """A copy of ``request`` addressing a different (channel-local) row."""
    return replace(request, row=row)
