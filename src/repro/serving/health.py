"""Streaming victim-health monitoring for the serving engine.

A :class:`VictimHealthMonitor` rides a :class:`~repro.serving.engine.
ServingSimulation` that carries a model victim: at slice boundaries it
runs periodic **accuracy probes** on the resident model (pulling the
weight bytes out of DRAM through any permuting defense's translation),
and on detected corruption it

* **quarantines** the victim's channel for ``quarantine_slices`` full
  slices -- tenant ops, owner guard reads, and attacker bursts bound
  for the channel are shed with per-tenant reason ``"integrity_fault"``
  through the same books as the PR-8 ``ChannelFault`` sheds, so the
  ``offered == served + shed`` conservation identity keeps holding;
* **recovers** the model: a bound RADAR instance handles in-DRAM
  repair itself (:meth:`~repro.defenses.radar.Radar.scrub_now`), and
  whatever accuracy loss survives -- zero-out fallback, an undefended
  cell -- is rolled back from the monitor's golden tensor snapshot and
  written back to DRAM.

Deterministic **chaos injection** (``inject_at``) flips bits in weight
rows at slice boundaries -- the bake-off's chaos cell uses it to
measure detection latency and post-recovery accuracy.  Every decision
keys off slice indices and device clocks, never wall time, so the
health section of the payload is bit-identical across the bulk and
events engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs

__all__ = ["HealthConfig", "VictimHealthMonitor"]


@dataclass(frozen=True)
class HealthConfig:
    """Victim-health monitoring knobs for one serving cell."""

    #: Accuracy probes run at the boundary closing every
    #: ``probe_interval``-th slice (and whenever an injected corruption
    #: is still undetected).
    probe_interval: int = 4
    #: Accuracy drop (percentage points vs the clean baseline) treated
    #: as corruption.  ``0.0`` flags any measurable degradation.
    accuracy_tolerance: float = 0.0
    #: Full slices the victim's channel stays quarantined after a
    #: detection (``0`` recovers without quarantine).
    quarantine_slices: int = 1
    #: Chaos injection: slice boundaries at which weight rows are
    #: corrupted (empty: no injection).
    inject_at: tuple[int, ...] = ()
    #: Weight rows flipped per injection, spread across the victim's
    #: row range so distinct checksum groups are hit.
    inject_rows: int = 2
    #: The bit toggled in each corrupted row.
    inject_bit: int = 5

    def __post_init__(self) -> None:
        if self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        if self.quarantine_slices < 0:
            raise ValueError("quarantine_slices must be >= 0")
        if self.inject_rows < 1:
            raise ValueError("inject_rows must be >= 1")


class VictimHealthMonitor:
    """Probe / quarantine / recover loop over one simulation's victim."""

    def __init__(self, sim, config: HealthConfig):
        if sim.store is None:
            raise ValueError(
                "the health monitor needs a model victim "
                "(ServingSimulation(model_victim=...))"
            )
        self.sim = sim
        self.config = config
        self.channel = sim.system.locate(sim.victim_rows[0])[0].index
        # The golden snapshot: quantized payload bytes per tensor,
        # taken at victim-load time (before any traffic runs).
        self._golden = {
            name: bytes(tensor.to_bytes())
            for name, tensor in sim.qmodel.tensors.items()
        }
        self.quarantined_channels: set[int] = set()
        self._quarantine_remaining = 0
        self._seen_radar_detections = 0
        self.probes = 0
        self.detections = 0
        self.recoveries = 0
        self.golden_restores = 0
        self.quarantines = 0
        self.injections: list[dict] = []
        self.last_probe_accuracy: float | None = None
        self.post_recovery_accuracy: float | None = None

    # ------------------------------------------------------------------
    # Wiring the sheds
    # ------------------------------------------------------------------
    def blocks(self, channel_indices) -> bool:
        """Whether any of the given channels is under quarantine."""
        if not self.quarantined_channels:
            return False
        return any(
            index in self.quarantined_channels for index in channel_indices
        )

    def _defense(self):
        return self.sim.system.channels[self.channel].defense

    def _radar(self):
        defense = self._defense()
        return defense if hasattr(defense, "scrub_now") else None

    # ------------------------------------------------------------------
    # The slice-boundary hook
    # ------------------------------------------------------------------
    def on_slice_end(self, slice_index: int) -> None:
        """Run after the slice's traffic has fully drained."""
        if self._quarantine_remaining > 0:
            self._quarantine_remaining -= 1
            if self._quarantine_remaining == 0:
                self.quarantined_channels.clear()
        if slice_index in self.config.inject_at:
            self._inject(slice_index)
        due = (slice_index + 1) % self.config.probe_interval == 0
        pending = any(
            entry["detected_slice"] is None for entry in self.injections
        )
        if due or pending:
            self._probe(slice_index)

    def _inject(self, slice_index: int) -> None:
        """Chaos: flip one bit in ``inject_rows`` weight rows, spread
        across the row range so distinct checksum groups are hit."""
        device = self.sim.system.channels[self.channel].device
        data_rows = self.sim.store.data_rows
        count = min(self.config.inject_rows, len(data_rows))
        stride = max(1, len(data_rows) // count)
        rows = [int(data_rows[i * stride]) for i in range(count)]
        for row in rows:
            device.flip_bit(row, self.config.inject_bit)
        radar = self._radar()
        self.injections.append(
            {
                "slice": slice_index,
                "rows": rows,
                "now_ns": device.now_ns,
                "detected_slice": None,
                "detection_latency_ns": None,
                "via": None,
                "_log_mark": 0
                if radar is None
                else len(radar.detection_log),
            }
        )

    def _probe(self, slice_index: int) -> None:
        sim = self.sim
        radar = self._radar()
        # RADAR detections that happened in-stream since the last probe
        # (read-path checks and scheduled scrubs), before this probe's
        # own out-of-band scrub runs.
        in_stream = (
            0
            if radar is None
            else radar.corruptions_detected - self._seen_radar_detections
        )
        scrub_found = 0 if radar is None else radar.scrub_now()
        # The store's persistent row_source (set at victim load) routes
        # this read through any permuting defense's translation.
        sim.store.sync_model(force=True)
        accuracy = sim.qmodel.model.accuracy(
            sim.dataset.test_x, sim.dataset.test_y
        )
        self.probes += 1
        degraded = (
            accuracy
            < sim.clean_accuracy - self.config.accuracy_tolerance
        )
        event = degraded or in_stream > 0 or scrub_found > 0
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc(
                "serving.health.probes",
                outcome="detection" if event else "clean",
            )
        if event:
            self.detections += 1
            if tel is not None:
                tel.metrics.inc("serving.health.detections")
            if degraded:
                # Whatever RADAR could not restore exactly (zero-out
                # fallback, or no RADAR at all) rolls back from the
                # golden tensor snapshot.
                self._restore_golden()
                accuracy = sim.qmodel.model.accuracy(
                    sim.dataset.test_x, sim.dataset.test_y
                )
            self.recoveries += 1
            if tel is not None:
                tel.metrics.inc("serving.health.recoveries")
            self.post_recovery_accuracy = accuracy
            self._begin_quarantine()
            self._resolve_injections(slice_index, radar)
        self.last_probe_accuracy = accuracy
        if radar is not None:
            self._seen_radar_detections = radar.corruptions_detected

    def _restore_golden(self) -> None:
        sim = self.sim
        for name, tensor in sim.qmodel.tensors.items():
            tensor.from_bytes(
                np.frombuffer(self._golden[name], dtype=np.uint8)
            )
        sim.qmodel.load_into_model()
        sim.store.write_back()
        radar = self._radar()
        if radar is not None:
            # The rewrite happened behind RADAR's back: re-snapshot the
            # digests so the restored bytes are the new ground truth.
            radar.refresh_checksums()
        self.golden_restores += 1

    def _begin_quarantine(self) -> None:
        if self.config.quarantine_slices == 0:
            return
        if not self.quarantined_channels:
            self.quarantines += 1
            tel = obs.ACTIVE
            if tel is not None:
                tel.metrics.inc("serving.health.quarantines")
                tel.audit.emit(
                    "quarantine",
                    channel=self.channel,
                    slices=self.config.quarantine_slices,
                )
        self.quarantined_channels.add(self.channel)
        self._quarantine_remaining = self.config.quarantine_slices

    def _resolve_injections(self, slice_index: int, radar) -> None:
        for entry in self.injections:
            if entry["detected_slice"] is not None:
                continue
            entry["detected_slice"] = slice_index
            if radar is not None:
                fresh = radar.detection_log[entry["_log_mark"] :]
                if fresh:
                    entry["detection_latency_ns"] = (
                        fresh[0]["now_ns"] - entry["now_ns"]
                    )
                    entry["via"] = fresh[0]["via"]
            if entry["via"] is None:
                entry["via"] = "accuracy-probe"

    # ------------------------------------------------------------------
    # Payload
    # ------------------------------------------------------------------
    def report(self) -> dict:
        detected = sum(
            1
            for entry in self.injections
            if entry["detected_slice"] is not None
        )
        result = {
            "channel": self.channel,
            "probe_interval": self.config.probe_interval,
            "quarantine_slices": self.config.quarantine_slices,
            "probes": self.probes,
            "detections": self.detections,
            "recoveries": self.recoveries,
            "golden_restores": self.golden_restores,
            "quarantines": self.quarantines,
            "injected_corruptions": len(self.injections),
            "injections_detected": detected,
            "all_injections_detected": detected == len(self.injections),
            "injections": [
                {
                    key: value
                    for key, value in entry.items()
                    if not key.startswith("_")
                }
                for entry in self.injections
            ],
            "clean_accuracy": self.sim.clean_accuracy,
            "last_probe_accuracy": self.last_probe_accuracy,
            "post_recovery_accuracy": self.post_recovery_accuracy,
        }
        radar = self._radar()
        if radar is not None:
            result["radar"] = {
                "corruptions_detected": radar.corruptions_detected,
                "rows_restored": radar.rows_restored,
                "rows_zeroed": radar.rows_zeroed,
                "scrubs": radar.scrubs,
                "read_checks": radar.read_checks,
            }
        return result
