"""Recorded serving traces: capture a workload stream, replay it later.

A :class:`Trace` is the serialized form of one
:class:`~repro.serving.workload.WorkloadGenerator` run: every generated
op (tenant, op kind, and its full request stream) plus an **arrival
timestamp** assigned at record time.  Arrivals give the stream a wall
clock the closed-loop simulation never had, which is what makes
open-loop replay -- and therefore overload, admission control, and
live pacing -- meaningful.

Two interchangeable encodings, selected by file suffix:

* ``.npz`` -- compact columnar arrays (one row per op, one row per
  request record, string tables in a JSON header); the format the
  benches and CI use.
* ``.jsonl`` -- one JSON object per op after a header line;
  greppable, diffable, and convenient for hand-built traces.

Determinism contract: arrival offsets are drawn from the dedicated
``derive_seed("trace-arrivals", seed)`` stream (never the workload
RNGs) and are *sorted within each slice*, so arrival order equals
generation order and replaying a trace at infinite speedup visits ops
in exactly the closed-loop order -- the precondition for the
replay-equivalence contract pinned in ``tests/test_serving_live.py``.
Both encodings round-trip every field exactly (float64 timestamps
included), so ``Trace.load(path) == trace`` holds bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..controller.request import Kind, MemRequest, RequestRun
from .workload import WorkloadGenerator, derive_seed

__all__ = [
    "TRACE_SCHEMA",
    "DEFAULT_SLICE_DURATION_S",
    "TraceOp",
    "Trace",
    "record_workload",
    "requests_equal",
]

#: Format tag stored in every trace file; bumped on layout changes.
TRACE_SCHEMA = "dram-locker-serving-trace/1"

#: Fallback slice duration when the recorder is given no calibration:
#: 1 ms of trace time per slice.
DEFAULT_SLICE_DURATION_S = 1e-3


@dataclass(frozen=True, eq=False)
class TraceOp:
    """One recorded operation: what arrived, when, and its requests.

    Attributes:
        slice_index: The generator time slice the op belongs to.
        arrival_s: Absolute arrival time on the trace clock (seconds).
        tenant: Tenant name the op is booked against.
        kind: Workload op kind (``"read"`` / ``"write"`` /
            ``"inference"`` / free-form).
        requests: The op's request stream -- a list of
            :class:`~repro.controller.request.MemRequest` or an O(1)
            :class:`~repro.controller.request.RequestRun`.
    """

    slice_index: int
    arrival_s: float
    tenant: str
    kind: str
    requests: list[MemRequest] | RequestRun

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceOp):
            return NotImplemented
        return (
            self.slice_index == other.slice_index
            and self.arrival_s == other.arrival_s
            and self.tenant == other.tenant
            and self.kind == other.kind
            and requests_equal(self.requests, other.requests)
        )


def requests_equal(
    a: list[MemRequest] | RequestRun, b: list[MemRequest] | RequestRun
) -> bool:
    """Structural equality over request streams.

    ``RequestRun`` deliberately has no ``__eq__`` (it is an O(1)
    sequence), so trace round-trip comparisons go through here: runs
    compare by (request, count), lists element-wise.
    """
    if isinstance(a, RequestRun) or isinstance(b, RequestRun):
        return (
            isinstance(a, RequestRun)
            and isinstance(b, RequestRun)
            and a.count == b.count
            and a.request == b.request
        )
    return list(a) == list(b)


class Trace:
    """One recorded serving workload: ops with arrival timestamps.

    The trace clock runs ``slices * slice_duration_s`` seconds; ops of
    slice ``i`` arrive inside ``[i * slice_duration_s, (i + 1) *
    slice_duration_s)``, in nondecreasing order.  ``meta`` carries
    whatever the recorder wants replay to know -- the serving facade
    stores the full ``ServingConfig`` dict there, making a trace file
    self-contained.
    """

    def __init__(
        self,
        ops: Iterable[TraceOp],
        *,
        slices: int,
        slice_duration_s: float,
        seed: int = 0,
        meta: dict | None = None,
    ):
        """Bind recorded ``ops`` to their clock geometry.

        Args:
            ops: The recorded operations, in arrival order.
            slices: Generator time slices the trace spans.
            slice_duration_s: Trace-clock seconds per slice.
            seed: The seed the workload (and arrival stream) derived
                from; replay re-derives every simulation RNG from it.
            meta: Free-form JSON-serializable recorder context.
        """
        if slices <= 0 or slice_duration_s <= 0:
            raise ValueError("slices and slice_duration_s must be positive")
        self.ops = list(ops)
        self.slices = int(slices)
        self.slice_duration_s = float(slice_duration_s)
        self.seed = int(seed)
        self.meta = meta or {}
        self._by_slice: list[list[TraceOp]] | None = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.slices == other.slices
            and self.slice_duration_s == other.slice_duration_s
            and self.seed == other.seed
            and self.meta == other.meta
            and self.ops == other.ops
        )

    @property
    def duration_s(self) -> float:
        """Total trace-clock span: ``slices * slice_duration_s``."""
        return self.slices * self.slice_duration_s

    def slice_ops(self, index: int) -> list[TraceOp]:
        """The ops of slice ``index``, in arrival (= generation) order."""
        if self._by_slice is None:
            by_slice: list[list[TraceOp]] = [[] for _ in range(self.slices)]
            for op in self.ops:
                by_slice[op.slice_index].append(op)
            self._by_slice = by_slice
        return self._by_slice[index]

    def request_count(self) -> int:
        """Total requests across all ops (runs count their length)."""
        return sum(len(op.requests) for op in self.ops)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> str:
        """Write the trace; the suffix picks the encoding
        (``.npz`` columnar or ``.jsonl`` line-oriented)."""
        path = Path(path)
        if path.suffix == ".npz":
            self._save_npz(path)
        elif path.suffix == ".jsonl":
            self._save_jsonl(path)
        else:
            raise ValueError(
                f"unknown trace suffix {path.suffix!r}; use .npz or .jsonl"
            )
        return str(path)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save` (suffix-dispatched)."""
        path = Path(path)
        if path.suffix == ".npz":
            return cls._load_npz(path)
        if path.suffix == ".jsonl":
            return cls._load_jsonl(path)
        raise ValueError(
            f"unknown trace suffix {path.suffix!r}; use .npz or .jsonl"
        )

    def _header(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "slices": self.slices,
            "slice_duration_s": self.slice_duration_s,
            "seed": self.seed,
            "meta": self.meta,
        }

    @staticmethod
    def _check_header(header: dict, path: Path) -> dict:
        schema = header.get("schema")
        if schema != TRACE_SCHEMA:
            raise ValueError(
                f"{path}: unknown trace schema {schema!r} "
                f"(expected {TRACE_SCHEMA!r})"
            )
        return header

    # -- npz ------------------------------------------------------------
    def _save_npz(self, path: Path) -> None:
        tenants: dict[str, int] = {}
        kinds: dict[str, int] = {}
        tags: dict[str, int] = {}

        def intern(table: dict[str, int], value: str) -> int:
            index = table.get(value)
            if index is None:
                index = table[value] = len(table)
            return index

        n = len(self.ops)
        op_slice = np.zeros(n, dtype=np.int64)
        op_arrival = np.zeros(n, dtype=np.float64)
        op_tenant = np.zeros(n, dtype=np.int64)
        op_kind = np.zeros(n, dtype=np.int64)
        op_first = np.zeros(n, dtype=np.int64)
        op_records = np.zeros(n, dtype=np.int64)
        op_run = np.zeros(n, dtype=np.int64)

        records: list[MemRequest] = []
        for i, op in enumerate(self.ops):
            op_slice[i] = op.slice_index
            op_arrival[i] = op.arrival_s
            op_tenant[i] = intern(tenants, op.tenant)
            op_kind[i] = intern(kinds, op.kind)
            op_first[i] = len(records)
            if isinstance(op.requests, RequestRun):
                op_run[i] = op.requests.count
                op_records[i] = 1
                records.append(op.requests.request)
            else:
                op_records[i] = len(op.requests)
                records.extend(op.requests)

        m = len(records)
        req_kind = np.zeros(m, dtype=np.int64)
        req_row = np.zeros(m, dtype=np.int64)
        req_column = np.zeros(m, dtype=np.int64)
        req_size = np.zeros(m, dtype=np.int64)
        req_priv = np.zeros(m, dtype=np.bool_)
        req_tag = np.zeros(m, dtype=np.int64)
        kind_names = [kind.name for kind in Kind]
        kind_index = {name: i for i, name in enumerate(kind_names)}
        for i, request in enumerate(records):
            req_kind[i] = kind_index[request.kind.name]
            req_row[i] = request.row
            req_column[i] = request.column
            req_size[i] = request.size
            req_priv[i] = request.privileged
            req_tag[i] = intern(tags, request.tag)

        header = dict(
            self._header(),
            tenants=list(tenants),
            kinds=list(kinds),
            tags=list(tags),
            request_kinds=kind_names,
        )
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle,
                header=np.frombuffer(
                    json.dumps(header).encode("utf-8"), dtype=np.uint8
                ),
                op_slice=op_slice,
                op_arrival=op_arrival,
                op_tenant=op_tenant,
                op_kind=op_kind,
                op_first=op_first,
                op_records=op_records,
                op_run=op_run,
                req_kind=req_kind,
                req_row=req_row,
                req_column=req_column,
                req_size=req_size,
                req_priv=req_priv,
                req_tag=req_tag,
            )

    @classmethod
    def _load_npz(cls, path: Path) -> "Trace":
        with np.load(path) as data:
            header = cls._check_header(
                json.loads(bytes(data["header"]).decode("utf-8")), path
            )
            tenants = header["tenants"]
            kinds = header["kinds"]
            tags = header["tags"]
            kind_names = header["request_kinds"]
            req_kind = data["req_kind"]
            req_row = data["req_row"]
            req_column = data["req_column"]
            req_size = data["req_size"]
            req_priv = data["req_priv"]
            req_tag = data["req_tag"]

            def request(index: int) -> MemRequest:
                return MemRequest(
                    Kind[kind_names[int(req_kind[index])]],
                    int(req_row[index]),
                    int(req_column[index]),
                    int(req_size[index]),
                    bool(req_priv[index]),
                    tags[int(req_tag[index])],
                )

            ops: list[TraceOp] = []
            for i in range(len(data["op_slice"])):
                first = int(data["op_first"][i])
                count = int(data["op_records"][i])
                run = int(data["op_run"][i])
                requests: list[MemRequest] | RequestRun
                if run:
                    requests = RequestRun(request(first), run)
                else:
                    requests = [request(first + j) for j in range(count)]
                ops.append(
                    TraceOp(
                        int(data["op_slice"][i]),
                        float(data["op_arrival"][i]),
                        tenants[int(data["op_tenant"][i])],
                        kinds[int(data["op_kind"][i])],
                        requests,
                    )
                )
        return cls(
            ops,
            slices=header["slices"],
            slice_duration_s=header["slice_duration_s"],
            seed=header["seed"],
            meta=header["meta"],
        )

    # -- jsonl ----------------------------------------------------------
    def _save_jsonl(self, path: Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self._header()) + "\n")
            for op in self.ops:
                if isinstance(op.requests, RequestRun):
                    run = op.requests.count
                    records = [op.requests.request]
                else:
                    run = 0
                    records = list(op.requests)
                handle.write(
                    json.dumps(
                        {
                            "slice": op.slice_index,
                            "arrival_s": op.arrival_s,
                            "tenant": op.tenant,
                            "kind": op.kind,
                            "run": run,
                            "requests": [
                                [
                                    request.kind.name,
                                    request.row,
                                    request.column,
                                    request.size,
                                    request.privileged,
                                    request.tag,
                                ]
                                for request in records
                            ],
                        }
                    )
                    + "\n"
                )

    @classmethod
    def _load_jsonl(cls, path: Path) -> "Trace":
        with open(path, encoding="utf-8") as handle:
            header = cls._check_header(json.loads(handle.readline()), path)
            ops: list[TraceOp] = []
            for line in handle:
                if not line.strip():
                    continue
                entry = json.loads(line)
                records = [
                    MemRequest(
                        Kind[kind], row, column, size, privileged, tag
                    )
                    for kind, row, column, size, privileged, tag in entry[
                        "requests"
                    ]
                ]
                requests: list[MemRequest] | RequestRun
                if entry["run"]:
                    requests = RequestRun(records[0], entry["run"])
                else:
                    requests = records
                ops.append(
                    TraceOp(
                        entry["slice"],
                        entry["arrival_s"],
                        entry["tenant"],
                        entry["kind"],
                        requests,
                    )
                )
        return cls(
            ops,
            slices=header["slices"],
            slice_duration_s=header["slice_duration_s"],
            seed=header["seed"],
            meta=header["meta"],
        )


def record_workload(
    generator: WorkloadGenerator,
    *,
    slice_duration_s: float = DEFAULT_SLICE_DURATION_S,
    meta: dict | None = None,
) -> Trace:
    """Run a workload generator to completion, recording every op.

    Arrival timestamps are synthesized per slice: uniform offsets from
    the dedicated ``derive_seed("trace-arrivals", seed)`` stream,
    **sorted** so that arrival order equals generation order (the
    replay-equivalence precondition).  The generator is consumed -- its
    per-tenant RNG streams advance exactly as a closed-loop run would
    advance them, so a fresh generator built from the same config
    regenerates the same ops.

    Args:
        generator: The (unconsumed) workload generator to record.
        slice_duration_s: Trace-clock seconds per slice; overload is
            expressed by recording more ops into the same duration.
        meta: Recorder context stored verbatim in the trace header.

    Returns:
        The recorded :class:`Trace`.
    """
    config = generator.config
    rng = np.random.default_rng(derive_seed("trace-arrivals", config.seed))
    ops: list[TraceOp] = []
    for index, slice_ops in generator.run():
        offsets = np.sort(rng.random(len(slice_ops))) * slice_duration_s
        base = index * slice_duration_s
        for op, offset in zip(slice_ops, offsets):
            ops.append(
                TraceOp(
                    index, base + float(offset), op.tenant, op.kind,
                    op.requests,
                )
            )
    return Trace(
        ops,
        slices=config.slices,
        slice_duration_s=slice_duration_s,
        seed=config.seed,
        meta=meta,
    )
