"""The workload engine: deterministic multi-tenant request generators.

Every generator here is a pure function of its seed: per-tenant RNG
streams are derived with the stack-wide :func:`repro.seeds.derive_seed`
name hashing (re-exported here), so adding, removing, or reordering
tenants never perturbs another tenant's stream, and a matrix built on
these generators is worker-count invariant.

Two layers:

* :class:`WorkloadGenerator` -- open/closed-loop arrival processes
  (Poisson or bursty on/off), Zipf tenant popularity, Zipf row
  popularity inside each tenant's partition, and configurable
  read/write/inference operation mixes.  Each time slice yields
  ``(tenant, op, requests)`` triples whose request objects are
  :class:`~repro.controller.request.MemRequest` streams --
  ``RequestRun``-compatible, so they drop straight into the bulk
  engine.
* The **victim-traffic classes** (:class:`GuardRowTenant`,
  :class:`VictimTenant`) -- the tenant streams the attack experiments
  used to hand-roll: one privileged guard-row access per attack
  campaign (the unlock-SWAP window opener of
  ``attacks/progressive.py``) and the weight-streaming inference mix of
  ``eval/framework.py``.  Both are draw-for-draw identical to the
  ad-hoc versions they replace; the existing tier-1 suites pin the flip
  sequences and stats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..controller.request import Kind, MemRequest, RequestRun
from ..seeds import derive_seed

__all__ = [
    "derive_seed",
    "TenantSpec",
    "WorkloadConfig",
    "WorkloadOp",
    "WorkloadGenerator",
    "make_tenants",
    "zipf_weights",
    "GuardRowTraffic",
    "GuardRowTenant",
    "VictimTenant",
]


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf(s) popularity over ``n`` ranks (rank 0 hottest)."""
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the serving system.

    Attributes:
        name: Tenant identifier (also its RNG-derivation salt).
        rows: The tenant's partition as a ``(first, count)`` range of
            *system* rows (the sharded system's flat address space).
        privileged: Whether the tenant's accesses may trigger
            DRAM-Locker unlock-SWAPs (the victim program's own traffic
            is privileged; ordinary co-located tenants are not).
        weight: Relative traffic share (the Zipf popularity assigns
            these when tenants are auto-built).
        read_fraction / write_fraction: Operation mix; the remainder is
            inference ops (a contiguous privileged weight-streaming
            sweep of ``inference_rows`` rows).
    """

    name: str
    rows: tuple[int, int]
    privileged: bool = False
    weight: float = 1.0
    read_fraction: float = 0.6
    write_fraction: float = 0.3

    def __post_init__(self) -> None:
        first, count = self.rows
        if first < 0 or count <= 0:
            raise ValueError("rows must be a (first >= 0, count > 0) range")
        if not 0.0 <= self.read_fraction + self.write_fraction <= 1.0:
            raise ValueError("read + write fractions must be within [0, 1]")

    @property
    def inference_fraction(self) -> float:
        """Remainder of the op mix assigned to inference bursts."""
        return 1.0 - self.read_fraction - self.write_fraction


@dataclass(frozen=True)
class WorkloadConfig:
    """Arrival-process and mix knobs shared by all tenants.

    ``arrival="poisson"`` draws each tenant's per-slice op count from
    Poisson(rate); ``"bursty"`` modulates that rate with a two-state
    on/off Markov chain (rate x ``burst_factor`` while bursting) -- the
    open-loop analogue of flash crowds.  ``closed_loop=True`` instead
    issues exactly ``round(rate)`` ops per slice per tenant (a fixed
    number of outstanding requestors).
    """

    slices: int = 32
    ops_per_slice: float = 6.0
    arrival: str = "poisson"
    burst_factor: float = 4.0
    burst_on_prob: float = 0.15
    burst_off_prob: float = 0.5
    closed_loop: bool = False
    zipf_rows: float = 0.8
    inference_rows: int = 8
    request_bytes: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError("arrival must be 'poisson' or 'bursty'")
        if self.slices <= 0 or self.ops_per_slice < 0:
            raise ValueError("slices must be > 0 and ops_per_slice >= 0")
        if self.inference_rows <= 0:
            raise ValueError("inference_rows must be positive")


@dataclass(frozen=True)
class WorkloadOp:
    """One generated operation: the unit the arbiter schedules."""

    tenant: str
    kind: str  # "read" | "write" | "inference"
    requests: list[MemRequest] | RequestRun


class _TenantStream:
    """The deterministic per-tenant generator state."""

    __slots__ = ("spec", "rng", "rate", "bursting", "row_cum")

    def __init__(self, spec: TenantSpec, config: WorkloadConfig, rate: float):
        self.spec = spec
        # Per-tenant RNG derived from the tenant's *name*: other
        # tenants' existence cannot perturb this stream.
        self.rng = np.random.default_rng(
            derive_seed(f"tenant-{spec.name}", config.seed)
        )
        self.rate = rate
        self.bursting = False
        # Cumulative Zipf row popularity; rows are drawn by inverting
        # one uniform against this (cheaper than per-draw weighting).
        self.row_cum = np.cumsum(zipf_weights(spec.rows[1], config.zipf_rows))

    def draw_row(self) -> int:
        """One Zipf-popular row from this tenant's private range."""
        offset = int(
            np.searchsorted(self.row_cum, self.rng.random(), side="right")
        )
        return self.spec.rows[0] + min(offset, self.spec.rows[1] - 1)


class WorkloadGenerator:
    """Seed-deterministic open/closed-loop multi-tenant op streams."""

    def __init__(
        self,
        tenants: list[TenantSpec],
        config: WorkloadConfig | None = None,
    ):
        if not tenants:
            raise ValueError("at least one tenant required")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.config = config or WorkloadConfig()
        # Rates are absolute per tenant (ops_per_slice x weight), never
        # normalized over the tenant set: together with the
        # name-derived RNGs this keeps each tenant's stream a pure
        # function of its own spec -- adding or removing tenants cannot
        # perturb anyone else's draws.
        self._streams = [
            _TenantStream(
                spec, self.config, self.config.ops_per_slice * spec.weight
            )
            for spec in tenants
        ]
        self._next_slice = 0

    @property
    def tenants(self) -> list[TenantSpec]:
        """The tenant specs, in registration order."""
        return [stream.spec for stream in self._streams]

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def slice_ops(self, slice_index: int) -> list[WorkloadOp]:
        """All tenants' operations for one time slice, tenant-ordered.

        The per-tenant streams are sequential, so slices must be drawn
        in order, each exactly once -- replaying or skipping a slice
        would silently advance the RNGs off the seed-deterministic
        stream, hence the strict check.
        """
        if slice_index != self._next_slice:
            raise ValueError(
                f"slices must be drawn in order: expected slice "
                f"{self._next_slice}, got {slice_index}"
            )
        self._next_slice += 1
        ops: list[WorkloadOp] = []
        for stream in self._streams:
            ops.extend(self._tenant_slice(stream))
        return ops

    def run(self):
        """Iterate every slice of the configured horizon."""
        for index in range(self.config.slices):
            yield index, self.slice_ops(index)

    def _tenant_slice(self, stream: _TenantStream) -> list[WorkloadOp]:
        config = self.config
        rng = stream.rng
        rate = stream.rate
        if config.arrival == "bursty":
            # Two-state modulation: the state draw happens every slice
            # so the chain is part of the deterministic stream.
            if stream.bursting:
                stream.bursting = rng.random() >= config.burst_off_prob
            else:
                stream.bursting = rng.random() < config.burst_on_prob
            if stream.bursting:
                rate = rate * config.burst_factor
        if config.closed_loop:
            count = int(round(rate))
        else:
            count = int(rng.poisson(rate))
        return [self._draw_op(stream) for _ in range(count)]

    def _draw_op(self, stream: _TenantStream) -> WorkloadOp:
        spec = stream.spec
        config = self.config
        rng = stream.rng
        first, row_count = spec.rows
        draw = rng.random()
        if draw < spec.read_fraction:
            kind, req_kind = "read", Kind.READ
        elif draw < spec.read_fraction + spec.write_fraction:
            kind, req_kind = "write", Kind.WRITE
        else:
            kind = "inference"
        if kind == "inference":
            # A contiguous privileged weight-streaming sweep, starting
            # at a Zipf-popular row of the partition.
            start = stream.draw_row()
            rows = [
                first + (start - first + offset) % row_count
                for offset in range(config.inference_rows)
            ]
            requests = [
                MemRequest(
                    Kind.READ,
                    row,
                    size=config.request_bytes,
                    privileged=True,
                    tag=spec.name,
                )
                for row in rows
            ]
            return WorkloadOp(spec.name, kind, requests)
        row = stream.draw_row()
        request = MemRequest(
            req_kind,
            row,
            size=config.request_bytes,
            privileged=spec.privileged,
            tag=spec.name,
        )
        return WorkloadOp(spec.name, kind, [request])


def make_tenants(
    count: int,
    rows_first: int = 0,
    rows_total: int = 0,
    zipf_popularity: float = 1.1,
    privileged_first: bool = True,
    read_fraction: float = 0.6,
    write_fraction: float = 0.3,
    partitions: list[tuple[int, int]] | None = None,
) -> list[TenantSpec]:
    """Build a ``count``-tenant fleet with Zipf(s) traffic popularity.

    Partitions are ``count`` equal contiguous slices of the
    ``[rows_first, rows_first + rows_total)`` system-row range, or the
    explicit ``(first, count)`` ranges in ``partitions`` (one per
    tenant -- how the serving engine keeps block-interleaved tenants
    inside their channel's tenant zone).  Tenant 0 is the hot (and, by
    default, privileged) tenant.  Weights are scaled to mean 1.0, so
    the fleet's aggregate rate is ``ops_per_slice x count``; note the
    Zipf weights (and the partition bounds) are functions of the fleet
    shape, so a given tenant's stream is only reproducible for the same
    fleet -- the spec-level invariance (same :class:`TenantSpec`, same
    stream, regardless of who else is in the generator) is what the
    determinism tests pin.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if partitions is None:
        per_tenant = rows_total // count
        if per_tenant <= 0:
            raise ValueError("not enough rows for the tenant count")
        partitions = [
            (rows_first + index * per_tenant, per_tenant)
            for index in range(count)
        ]
    elif len(partitions) != count:
        raise ValueError("one partition per tenant required")
    weights = zipf_weights(count, zipf_popularity) * count
    return [
        TenantSpec(
            name=f"tenant-{index}",
            rows=partitions[index],
            privileged=privileged_first and index == 0,
            weight=float(weights[index]),
            read_fraction=read_fraction,
            write_fraction=write_fraction,
        )
        for index in range(count)
    ]


# ----------------------------------------------------------------------
# Victim traffic (the streams the attack experiments used to hand-roll)
# ----------------------------------------------------------------------
class GuardRowTraffic:
    """One privileged access to a random guard row adjacent to a target
    row -- DRAM-Locker's only failure surface: the access forces an
    unlock-SWAP whose (process-variation) failure opens the exposure
    window a co-located attacker needs.

    This is the single definition of the unlock-window stream; the
    address space is abstracted behind two callables so the attack
    experiments (per-device row indices) and the serving engine
    (sharded system rows) share one guard-selection policy and draw
    discipline.
    """

    def __init__(self, neighbors, read_privileged, seed: int = 1):
        """``neighbors(row)`` lists the adjacent guard rows;
        ``read_privileged(row)`` issues the privileged access."""
        self._neighbors = neighbors
        self._read_privileged = read_privileged
        self._rng = np.random.default_rng(seed)

    def touch(self, row: int) -> None:
        """One privileged access next to ``row``."""
        guards = self._neighbors(row)
        guard = int(self._rng.choice(guards))
        self._read_privileged(guard)


class GuardRowTenant(GuardRowTraffic):
    """The unlock-window tenant stream of the progressive attack.

    :class:`GuardRowTraffic` bound to a victim :class:`WeightStore`:
    one privileged guard access per attack campaign, addressed by the
    attacked weight bit.  Formerly the ad-hoc
    ``_background_tenant_hook`` closure in ``eval/experiments.py``; the
    RNG construction and draw order are unchanged, so existing flip
    sequences stay bit-identical.
    """

    def __init__(self, store, controller, seed: int = 1):
        super().__init__(
            lambda row: store.device.mapper.neighbors(row, radius=1),
            lambda row: controller.read(row, privileged=True),
            seed=seed,
        )
        self.store = store
        self.controller = controller

    def __call__(self, name: str, index: int, bit: int) -> None:
        row, _ = self.store.bit_location(name, index, bit)
        self.touch(row)


class VictimTenant:
    """The protected tenant's own request mix: weight-streaming
    inference plus the guard-row traffic that opens unlock windows.

    This is the mixing ``eval/framework.py`` used to assemble inline;
    the pieces now compose from the shared workload classes.
    """

    def __init__(self, store, controller, seed: int = 1):
        self.store = store
        self.controller = controller
        self.traffic = GuardRowTenant(store, controller, seed)

    def stream_inference(self, privileged: bool = True):
        """One forward pass of weight streaming (summary mode)."""
        return self.store.stream_inference(
            self.controller, privileged=privileged, summary=True
        )

    def __call__(self, name: str, index: int, bit: int) -> None:
        """Tenant-hook protocol: guard-row traffic before a campaign."""
        self.traffic(name, index, bit)
