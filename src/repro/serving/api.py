"""The public serving facade: one config in, one typed result out.

:func:`serve` is the single entry point the CLI, the harness runner,
and the benches share.  It dispatches on the config:

* no trace -> the classic closed-loop :class:`ServingSimulation` run;
* a trace and ``speedup == 0`` -> deterministic synchronous replay
  (:func:`replay_trace`), bit-identical to the closed loop outside the
  ``"live"`` payload section (the replay-equivalence contract,
  ``docs/SERVING.md``);
* a trace and ``speedup > 0`` -> the threaded, wall-clock-paced
  :class:`~repro.serving.live.LiveServer`.

:func:`record_serving_trace` closes the loop: it records the workload
a config *would* serve into a :class:`~repro.serving.trace.Trace`
whose header embeds the full config, making the trace file
self-contained for later replay.
"""

from __future__ import annotations

import copy
from dataclasses import asdict, dataclass, fields

from .engine import ServingConfig, ServingSimulation
from .live import (
    AdmissionConfig,
    AdmissionController,
    LiveServer,
    ScalingConfig,
)
from .trace import Trace, record_workload

__all__ = [
    "SOURCE_KNOBS",
    "ServingResult",
    "serve",
    "record_serving_trace",
    "replay_trace",
    "replay_neutral",
    "config_from_dict",
]

#: The ``ServingConfig`` fields that say where the request stream comes
#: from and what admission does to it -- not what the simulated system
#: is.  The replay-equivalence comparison ignores exactly these (plus
#: the ``"live"`` payload section).
SOURCE_KNOBS = ("trace", "speedup", "admission")


def config_from_dict(data: dict) -> ServingConfig:
    """Rebuild a :class:`ServingConfig` from its ``asdict`` form.

    Nested admission/scaling dicts are re-hydrated into their
    dataclasses; unknown keys are ignored so payload config dicts (and
    trace headers written by newer code) stay loadable.
    """
    known = {f.name for f in fields(ServingConfig)}
    kwargs = {key: value for key, value in data.items() if key in known}
    admission = kwargs.get("admission")
    if isinstance(admission, dict):
        admission = dict(admission)
        admission["exempt"] = tuple(admission.get("exempt", ()))
        kwargs["admission"] = AdmissionConfig(**admission)
    scaling = kwargs.get("scaling")
    if isinstance(scaling, dict):
        kwargs["scaling"] = ScalingConfig(**scaling)
    return ServingConfig(**kwargs)


def replay_neutral(payload: dict) -> dict:
    """A payload with the stream-source knobs removed -- the form the
    replay-equivalence contract compares byte-for-byte.

    Drops the ``"live"`` section and the :data:`SOURCE_KNOBS` config
    fields; everything else (SLA books, victim flips, locker exposure
    state, channel clocks, memory stats) must match exactly between a
    closed-loop run and an infinite-speedup replay of its recording.
    """
    neutral = copy.deepcopy(payload)
    neutral.pop("live", None)
    config = neutral.get("config")
    if isinstance(config, dict):
        for knob in SOURCE_KNOBS:
            config.pop(knob, None)
    return neutral


@dataclass(frozen=True)
class ServingResult:
    """Typed wrapper over one serving payload."""

    payload: dict

    @property
    def config(self) -> dict:
        """The run's ``ServingConfig`` as a dict."""
        return self.payload["config"]

    @property
    def sla(self) -> dict:
        """The SLA section: per-tenant books plus aggregate."""
        return self.payload["sla"]

    @property
    def live(self) -> dict | None:
        """The live section (sojourn/shed/pacing), replay runs only."""
        return self.payload.get("live")

    @property
    def victim(self) -> dict:
        """The protected-surface section."""
        return self.payload["victim"]

    @property
    def victim_flip_events(self) -> int:
        """Disturbance flips that landed in victim rows."""
        return self.payload["victim"]["victim_flip_events"]

    @property
    def makespan_ns(self) -> float:
        """Simulated completion time (slowest channel clock)."""
        return self.payload["makespan_ns"]

    def tenant(self, name: str = "tenant-0") -> dict:
        """One tenant's SLA report."""
        return self.sla["tenants"][name]

    def latency_p99_ns(self, tenant: str = "tenant-0") -> float:
        """A tenant's served-request p99 *service* latency."""
        return self.tenant(tenant)["latency_ns"]["p99"]

    def sojourn_p99_ns(self, tenant: str = "tenant-0") -> float | None:
        """A tenant's p99 *sojourn* (arrival-to-completion, replay
        runs only; ``None`` for closed-loop payloads)."""
        live = self.live
        if live is None:
            return None
        entry = live["tenants"].get(tenant)
        if entry is None or "sojourn_ns" not in entry:
            return None
        return entry["sojourn_ns"]["p99"]

    @property
    def shed_total(self) -> int:
        """Total admission-shed ops (0 for closed-loop payloads)."""
        live = self.live
        return 0 if live is None else live.get("shed_total", 0)

    def replay_neutral(self) -> dict:
        """The payload in replay-equivalence comparison form."""
        return replay_neutral(self.payload)


def record_serving_trace(
    config: ServingConfig,
    *,
    slice_duration_s: float | None = None,
    utilization: float = 0.7,
    model_victim=None,
) -> Trace:
    """Record the workload a serving config would generate.

    When ``slice_duration_s`` is ``None`` the trace clock is
    **calibrated**: a throwaway closed-loop run of the same config
    measures the simulated busy time per slice, and the slice duration
    is set so the recorded load lands at ``utilization`` of the
    system's capacity.  Overload experiments then scale
    ``ops_per_slice`` while passing the *base* config's calibrated
    duration explicitly, so "2x offered load" means twice the ops in
    the same trace time.

    The returned trace embeds ``asdict(config)`` in its header
    (``meta["serving_config"]``), making the file self-contained for
    :func:`replay_trace` / the CLI.
    """
    if slice_duration_s is None:
        if not 0 < utilization:
            raise ValueError("utilization must be positive")
        probe = ServingSimulation(config, model_victim=model_victim)
        probe.run()
        busy_per_slice_s = probe.system.makespan_ns * 1e-9 / config.slices
        slice_duration_s = busy_per_slice_s / utilization
    sim = ServingSimulation(config, model_victim=model_victim)
    return record_workload(
        sim.generator,
        slice_duration_s=slice_duration_s,
        meta={"serving_config": asdict(config)},
    )


def replay_trace(
    trace: Trace,
    *,
    config: ServingConfig | None = None,
    protected: bool | None = None,
    defense_builder=None,
    model_victim=None,
    sim: ServingSimulation | None = None,
    fault=None,
) -> dict:
    """Deterministic synchronous replay of a recorded trace.

    The infinite-speedup path: ops execute in recorded (= generation)
    order with no threads and no wall clock, so with admission
    disabled the payload is bit-identical to the closed-loop run of
    the same config outside the ``"live"`` section (compare via
    :func:`replay_neutral`).  Admission decisions, when enabled, are
    pure functions of the trace and the seed.

    ``config`` defaults to the one embedded in the trace header;
    ``sim`` lets tests hand in a pre-built simulation so they can
    inspect locker/RNG state afterwards.  ``fault`` forwards an
    optional :class:`repro.eval.faults.ChannelFault` (ignored when a
    pre-built ``sim`` is passed -- construct that with the fault).
    """
    if sim is None:
        if config is None:
            embedded = trace.meta.get("serving_config")
            if embedded is None:
                raise ValueError(
                    "trace has no embedded serving config; pass config="
                )
            config = config_from_dict(embedded)
        sim = ServingSimulation(
            config,
            protected=protected,
            defense_builder=defense_builder,
            model_victim=model_victim,
            fault=fault,
        )
    admission = (
        AdmissionController(
            sim.config.admission, sim.sla, seed=sim.config.seed
        )
        if sim.config.admission is not None
        else None
    )
    offered = served = shed = 0
    for slice_index in range(trace.slices):
        for top in trace.slice_ops(slice_index):
            offered += 1
            reason = (
                admission.screen(top.tenant, top.arrival_s)
                if admission is not None
                else None
            )
            if reason is not None:
                shed += 1
                sim.sla.observe_shed(top.tenant, reason)
                continue
            if sim.serve_op(
                top.tenant, top.kind, top.requests, arrival_s=top.arrival_s
            ):
                served += 1
            else:
                # Shed onto a failed channel inside serve_op (reason
                # "channel_fault", already booked).
                shed += 1
        sim.end_slice()
    live = dict(
        sim.sla.live_report(),
        pacing={
            "speedup": 0.0,
            "trace_duration_s": trace.duration_s,
            "offered": offered,
            "served": served,
            "shed": shed,
        },
    )
    return sim.payload(live=live)


def serve(
    config: ServingConfig,
    *,
    trace: Trace | None = None,
    model_victim=None,
    fault=None,
) -> ServingResult:
    """Run one serving cell under the redesigned public API.

    Dispatch: no trace -> closed loop; ``config.speedup == 0`` ->
    deterministic replay; ``> 0`` -> threaded live pacing.  ``trace``
    overrides ``config.trace`` (handy when the trace was just recorded
    in memory and never written out).  ``fault`` injects an optional
    :class:`repro.eval.faults.ChannelFault` on any of the three paths
    (kept out of the config so fault-free payloads and trace headers
    keep their exact shape).
    """
    if trace is None and config.trace:
        trace = Trace.load(config.trace)
    if trace is None:
        payload = ServingSimulation(
            config, model_victim=model_victim, fault=fault
        ).run()
        return ServingResult(payload)
    if config.speedup == 0:
        payload = replay_trace(
            trace, config=config, model_victim=model_victim, fault=fault
        )
        return ServingResult(payload)
    sim = ServingSimulation(config, model_victim=model_victim, fault=fault)
    admission = (
        AdmissionController(config.admission, sim.sla, seed=config.seed)
        if config.admission is not None
        else None
    )
    server = LiveServer(
        sim, trace, speedup=config.speedup, admission=admission
    )
    return ServingResult(server.run())
