"""Multi-tenant serving: workload engine, sharded channels, SLA books.

The first subsystem that exercises DRAM-Locker as shared-infrastructure
defense rather than a single-victim experiment: deterministic
multi-tenant workload generators (``workload``), an N-channel sharded
memory system with per-channel lock tables (``sharded``), streaming SLA
accounting (``sla``), and the serving simulation that composes them
(``engine``).
"""

from .engine import ServingConfig, ServingSimulation, run_serving
from .sharded import ChannelState, ShardedMemorySystem
from .sla import (
    DEFAULT_PERCENTILES,
    SLAAccountant,
    StreamingPercentiles,
    TenantSink,
)
from .workload import (
    GuardRowTenant,
    GuardRowTraffic,
    TenantSpec,
    VictimTenant,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadOp,
    make_tenants,
    zipf_weights,
)

__all__ = [
    "ChannelState",
    "DEFAULT_PERCENTILES",
    "GuardRowTenant",
    "GuardRowTraffic",
    "SLAAccountant",
    "ServingConfig",
    "ServingSimulation",
    "ShardedMemorySystem",
    "StreamingPercentiles",
    "TenantSink",
    "TenantSpec",
    "VictimTenant",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WorkloadOp",
    "make_tenants",
    "run_serving",
    "zipf_weights",
]
