"""Multi-tenant serving: workload engine, sharded channels, SLA books.

The first subsystem that exercises DRAM-Locker as shared-infrastructure
defense rather than a single-victim experiment: deterministic
multi-tenant workload generators (``workload``), an N-channel sharded
memory system with per-channel lock tables (``sharded``), streaming SLA
accounting (``sla``), and the serving simulation that composes them
(``engine``).

On top of the closed-loop simulation sits the **live frontend**:
recorded traces with arrival timestamps (``trace``), admission control,
bounded per-channel queues, dynamic channel scaling, and the threaded
open-loop server (``live``) -- all behind the public facade
:func:`serve` (``api``), whose deterministic replay path is
bit-identical to the closed loop (the replay-equivalence contract,
``docs/SERVING.md``).
"""

from .api import (
    SOURCE_KNOBS,
    ServingResult,
    config_from_dict,
    record_serving_trace,
    replay_neutral,
    replay_trace,
    serve,
)
from .engine import ServingConfig, ServingSimulation, run_serving
from .health import HealthConfig, VictimHealthMonitor
from .live import (
    AdmissionConfig,
    AdmissionController,
    ChannelBacklog,
    ChannelScaler,
    LiveServer,
    LiveServingError,
    ScalingConfig,
)
from .sharded import ChannelState, ShardedMemorySystem
from .sla import (
    DEFAULT_PERCENTILES,
    SLAAccountant,
    StreamingPercentiles,
    TenantSink,
)
from .trace import (
    TRACE_SCHEMA,
    Trace,
    TraceOp,
    record_workload,
    requests_equal,
)
from .workload import (
    GuardRowTenant,
    GuardRowTraffic,
    TenantSpec,
    VictimTenant,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadOp,
    make_tenants,
    zipf_weights,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ChannelBacklog",
    "ChannelScaler",
    "ChannelState",
    "DEFAULT_PERCENTILES",
    "GuardRowTenant",
    "GuardRowTraffic",
    "HealthConfig",
    "LiveServer",
    "LiveServingError",
    "SLAAccountant",
    "SOURCE_KNOBS",
    "ScalingConfig",
    "ServingConfig",
    "ServingResult",
    "ServingSimulation",
    "ShardedMemorySystem",
    "StreamingPercentiles",
    "TRACE_SCHEMA",
    "TenantSink",
    "TenantSpec",
    "Trace",
    "TraceOp",
    "VictimHealthMonitor",
    "VictimTenant",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WorkloadOp",
    "config_from_dict",
    "make_tenants",
    "record_serving_trace",
    "record_workload",
    "replay_neutral",
    "replay_trace",
    "requests_equal",
    "run_serving",
    "serve",
    "zipf_weights",
]
