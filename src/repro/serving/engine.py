"""The serving engine: multi-tenant traffic on a sharded memory system.

One :class:`ServingSimulation` is one cell of the serving matrix:
``tenants`` Zipf-popular tenants generate open/closed-loop traffic over
their partitions of the system row space, an optional co-located
attacker runs hammer campaigns against per-channel protected victims,
and the tenant-aware arbiter multiplexes every stream onto the
channels through the bulk/summary engine -- per-request latencies
reach the SLA accountant through the controller sink protocol, so
nothing allocates per request.

The run is a pure function of :class:`ServingConfig` (every RNG stream
is name-derived from the seed), so the harness's worker-count
invariance holds for serving cells exactly as for the rest of the
matrix.

Victims come in two shapes:

* **bit victims** (default) -- one templated victim bit per channel,
  protected by that channel's locker: the cheap, training-free
  protected-surface probe the canned serving set uses;
* a **model victim** -- a quantized DNN resident on channel 0 via
  :class:`~repro.nn.storage.WeightStore`, its data rows locked, its
  accuracy measured before/after the co-located campaign (the
  acceptance probe ``benchmarks/bench_serving.py`` records).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from .. import obs
from ..controller.request import Kind, MemRequest, RequestRun
from ..defenses.builders import resolve_serving_defense
from ..dram.config import DRAMConfig
from ..engines import resolve_engine
from ..locker.locker import LockerConfig
from ..locker.planner import LockMode
from .health import VictimHealthMonitor
from .live import AdmissionConfig, ChannelScaler, ScalingConfig
from .sharded import ShardedMemorySystem
from .sla import SLAAccountant
from .workload import (
    GuardRowTraffic,
    WorkloadConfig,
    WorkloadGenerator,
    derive_seed,
    make_tenants,
)

__all__ = ["ServingConfig", "ServingSimulation", "run_serving"]

#: Channel-local victim row (subarray 0) for the bit-victim shape.
VICTIM_LOCAL_ROW = 20
#: The templated victim bit (matches the defended-hammer campaigns).
VICTIM_BIT = 5
#: Tenant partitions start at this channel-local row: clear of the
#: victim zone (subarray 0) -- and of a quick-scale model victim's
#: weight rows when one is attached (they spill at most into
#: subarray 1).
TENANT_FIRST_LOCAL = 256


@dataclass(frozen=True)
class ServingConfig:
    """One serving cell: tenants x defense x colocation x channels."""

    tenants: int = 4
    channels: int = 1
    slices: int = 24
    ops_per_slice: float = 6.0
    arrival: str = "poisson"
    closed_loop: bool = False
    zipf_popularity: float = 1.1
    zipf_rows: float = 0.8
    read_fraction: float = 0.6
    write_fraction: float = 0.3
    inference_rows: int = 8
    #: Interleaving policy of the sharded system.
    policy: str = "row"
    #: Co-located attacker on/off, and its per-slice budget: one
    #: ``hammer_burst``-activation run per aggressor per victim.
    colocated: bool = True
    hammer_burst: int = 400
    #: Privileged guard-row accesses per channel per slice -- the
    #: victim owner's own traffic, which opens unlock-SWAP windows.
    victim_traffic_per_slice: int = 2
    trh: int = 1000
    #: Whole-SWAP failure probability (paper: 9.6% at +/-20%); the
    #: per-RowClone rate is derived so three copies compose to it.
    swap_failure_rate: float = 0.096
    relock_interval: int = 200
    engine: str = "bulk"
    seed: int = 0
    #: Defense by name (``"DRAM-Locker"`` installs per-channel lockers,
    #: ``"None"`` runs undefended, any other name resolves through
    #: :data:`repro.defenses.builders.DEFENDED_HAMMER_DEFENSES`).
    #: Explicit ``protected=`` / ``defense_builder=`` arguments to
    #: :class:`ServingSimulation` override this.
    defense: str = "DRAM-Locker"
    #: Admission control for trace replay / live runs (``None`` admits
    #: everything -- the closed-loop behaviour).
    admission: AdmissionConfig | None = None
    #: Dynamic channel scaling (``None`` keeps the channel set fixed).
    #: Requires ``policy="block"``.
    scaling: ScalingConfig | None = None
    #: Path of a recorded trace to replay instead of generating the
    #: workload closed-loop (the :func:`repro.serving.serve` facade
    #: reads this; the simulation itself never touches the filesystem).
    trace: str | None = None
    #: Replay pacing: ``0`` replays at infinite speed (the
    #: deterministic, bit-identical-to-closed-loop path); ``s > 0``
    #: paces arrivals at ``s`` times the recorded rate on the wall
    #: clock (the threaded live frontend).
    speedup: float = 0.0

    def __post_init__(self) -> None:
        resolve_engine(self.engine)
        if self.scaling is not None:
            if self.policy != "block":
                raise ValueError(
                    "dynamic channel scaling requires policy='block': row "
                    "interleaving would re-shard every tenant whenever a "
                    "channel is added"
                )
            if self.scaling.max_channels < self.channels:
                raise ValueError(
                    "scaling.max_channels must be >= the base channel count"
                )
        if self.speedup < 0:
            raise ValueError("speedup must be >= 0 (0 = infinite)")


class ServingSimulation:
    """One serving run over a sharded, optionally defended system."""

    def __init__(
        self,
        config: ServingConfig,
        *,
        protected: bool | None = None,
        defense_builder=None,
        model_victim=None,
        fault=None,
        health=None,
    ):
        """``protected`` installs per-channel DRAM-Lockers;
        ``defense_builder`` instead (or additionally) installs one
        baseline-defense instance per channel; when both are left at
        ``None`` they resolve from ``config.defense`` by name.
        ``model_victim`` is an optional ``(dataset, qmodel)`` pair
        placed on channel 0.  ``fault`` is an optional
        :class:`repro.eval.faults.ChannelFault` (kept out of
        :class:`ServingConfig` so fault-free payloads and trace headers
        keep their exact shape): at the boundary closing slice
        ``fault.at_slice`` the channel fails (every later op touching
        it is shed with reason ``"channel_fault"``, spilled first when
        a channel scaler is present) or stalls (a one-shot clock jump).
        ``health`` is an optional
        :class:`repro.serving.health.HealthConfig` (kept out of the
        config for the same payload-shape reason; requires a model
        victim): a :class:`~repro.serving.health.VictimHealthMonitor`
        probes the model at slice boundaries, quarantines the victim's
        channel on detected corruption (sheds booked with reason
        ``"integrity_fault"``), and recovers the weights.
        """
        if protected is None and defense_builder is None:
            protected, defense_builder = resolve_serving_defense(
                config.defense
            )
        elif protected is None:
            protected = False
        self.config = config
        self.protected = protected
        self.fault = fault
        self._fault_active = False
        self._slices_closed = 0
        # serve_op-level conservation counters (tenant traffic only;
        # owner/attacker streams book through the SLA shed reasons).
        self.op_offered = 0
        self.op_served = 0
        self.op_shed = 0
        # Dynamic scaling pre-builds the spare channels (a channel is a
        # whole memory system; hot-plugging one mid-run is not a thing),
        # but tenants start partitioned over the base ``channels`` only.
        built_channels = (
            config.scaling.max_channels
            if config.scaling is not None
            else config.channels
        )
        dram = DRAMConfig.small().with_channels(built_channels)
        per_copy = 1.0 - (1.0 - config.swap_failure_rate) ** (1.0 / 3.0)
        self.system = ShardedMemorySystem(
            dram,
            policy=config.policy,
            trh=config.trh,
            protected=protected,
            locker_config=LockerConfig(
                copy_error_rate=per_copy,
                relock_interval=config.relock_interval,
                seed=config.seed,
            ),
            defense_builder=defense_builder,
            seed=config.seed,
            engine=config.engine,
        )
        if fault is not None:
            if not 0 <= fault.channel < built_channels:
                raise ValueError(
                    f"fault channel {fault.channel} outside the built "
                    f"range [0, {built_channels})"
                )
            if fault.kind not in ("fail", "stall"):
                raise ValueError(f"unknown channel fault kind {fault.kind!r}")
        self.store = None
        self.dataset = None
        self.qmodel = None
        self.clean_accuracy = None
        if model_victim is not None:
            self._attach_model_victim(*model_victim)
        else:
            self._place_bit_victims()
        self._health = (
            VictimHealthMonitor(self, health) if health is not None else None
        )
        tenants = make_tenants(
            config.tenants,
            partitions=self._tenant_partitions(),
            zipf_popularity=config.zipf_popularity,
            read_fraction=config.read_fraction,
            write_fraction=config.write_fraction,
        )
        self.generator = WorkloadGenerator(
            tenants,
            WorkloadConfig(
                slices=config.slices,
                ops_per_slice=config.ops_per_slice,
                arrival=config.arrival,
                closed_loop=config.closed_loop,
                zipf_rows=config.zipf_rows,
                inference_rows=config.inference_rows,
                seed=config.seed,
            ),
        )
        self.sla = SLAAccountant()
        # Dynamic channel scaling: spill hot tenants into the spare
        # channels' tenant zones when their sojourn p99 breaches the
        # target (epoch-checked at slice boundaries).
        self._scaler = (
            ChannelScaler(
                self.system,
                {spec.name: spec.rows for spec in tenants},
                base_channels=config.channels,
                scaling=config.scaling,
                tenant_first_local=TENANT_FIRST_LOCAL,
            )
            if config.scaling is not None
            else None
        )
        # The shared cross-channel event queue (engine="events" only):
        # every stream of a slice is submitted, then the slice drains
        # in slowest-channel-first order.  ``None`` keeps the immediate
        # per-stream execution of the bulk/scalar drives.
        self._queue = (
            self.system.event_queue() if config.engine == "events" else None
        )
        # The victim owner's unlock-window stream: the same
        # guard-selection policy the attack experiments use, in system
        # row space, booked against the "victim-owner" tenant.
        self._owner_sink = self.sla.sink("victim-owner")
        self._victim_traffic = GuardRowTraffic(
            self.system.neighbors,
            self._owner_read,
            seed=derive_seed("victim-traffic", config.seed),
        )
        # Count every disturbance flip that lands in a victim row --
        # the protection-surface metric (a long campaign can toggle a
        # bit back to its initial value, so end-state diffs undercount).
        self.victim_flip_events = 0
        for state in self.system.channels:
            victim_locals = {
                self.system.locate(row)[1]
                for row in self.victim_rows
                if self.system.locate(row)[0] is state
            }
            if victim_locals:
                state.device.add_flip_listener(
                    lambda flip, rows=victim_locals: self._on_victim_flip(
                        flip, rows
                    )
                )

    def _on_victim_flip(self, flip, victim_locals) -> None:
        if flip.row in victim_locals:
            self.victim_flip_events += 1

    def _owner_read(self, row: int) -> None:
        """One privileged guard-row read, booked to the victim owner
        (submitted to the event queue when one is driving)."""
        stream = [MemRequest(Kind.READ, row, privileged=True)]
        self._dispatch(stream, self._owner_sink)

    def _dispatch(self, requests, sink) -> None:
        """Route one stream: immediately, or via the event queue."""
        tel = obs.ACTIVE
        if tel is not None:
            # Audit events emitted during execution carry the open
            # slice; the events engine re-stamps before its drain.
            tel.audit.set_field("slice", self._slices_closed)
        if self._queue is None:
            self.system.execute_stream(requests, sink)
        else:
            self.system.submit_stream(self._queue, requests, sink)

    def _tenant_partitions(self) -> list[tuple[int, int]]:
        """Per-tenant system-row ranges that stay clear of every
        channel's victim zone (locals below ``TENANT_FIRST_LOCAL``)
        under the configured interleaving policy.

        Under ``"row"`` the zone-free locals form one contiguous system
        range, split equally.  Under ``"block"`` each channel's tenant
        zone is a separate contiguous block, so tenants are assigned
        round-robin to channels and split their channel's zone -- the
        isolation placement: one tenant, one channel.
        """
        config = self.config
        channels = config.channels
        per_channel = self.system.interleaver.rows_per_channel
        count = config.tenants
        if config.policy == "row":
            first = TENANT_FIRST_LOCAL * channels
            per_tenant = (self.system.system_rows - first) // count
            if per_tenant <= 0:
                raise ValueError("not enough rows for the tenant count")
            return [
                (first + index * per_tenant, per_tenant)
                for index in range(count)
            ]
        zone_rows = per_channel - TENANT_FIRST_LOCAL
        partitions = []
        for index in range(count):
            channel = index % channels
            in_channel = count // channels + (
                1 if channel < count % channels else 0
            )
            share = zone_rows // in_channel
            if share <= 0:
                raise ValueError("not enough rows for the tenant count")
            partitions.append(
                (
                    channel * per_channel
                    + TENANT_FIRST_LOCAL
                    + (index // channels) * share,
                    share,
                )
            )
        return partitions

    # ------------------------------------------------------------------
    # Victim placement
    # ------------------------------------------------------------------
    def _place_bit_victims(self) -> None:
        """One templated victim bit per channel, locker-protected."""
        system = self.system
        self.victim_rows = [
            system.system_row(channel, VICTIM_LOCAL_ROW)
            for channel in range(self.config.channels)
        ]
        for row in self.victim_rows:
            system.register_template(row, [VICTIM_BIT])
        self._initial_bits = [self._bit_value(row) for row in self.victim_rows]
        if self.protected:
            system.protect(self.victim_rows, mode=LockMode.ADJACENT)

    def _attach_model_victim(self, dataset, qmodel) -> None:
        """A DNN resident on channel 0, its data rows protected."""
        from ..nn.storage import WeightStore

        system = self.system
        channel0 = system.channels[0]
        self.dataset = dataset
        self.qmodel = qmodel
        self.store = WeightStore(channel0.device, qmodel, guard_rows=True)
        self.clean_accuracy = qmodel.model.accuracy(
            dataset.test_x, dataset.test_y
        )
        locals_used = self.store.data_rows
        if max(locals_used) >= TENANT_FIRST_LOCAL:
            raise RuntimeError(
                "model victim spills into the tenant partition; use a "
                "smaller model or a larger DRAMConfig"
            )
        self.victim_rows = [
            system.system_row(0, local) for local in locals_used
        ]
        # Template the attacked bits so the campaign's flips are the
        # deterministic TRH-crossing kind the defended benches use.
        self._campaign_rows = self.victim_rows[:4]
        for row in self._campaign_rows:
            system.register_template(row, [VICTIM_BIT])
        self._initial_bits = [
            self._bit_value(row) for row in self._campaign_rows
        ]
        if self.protected:
            system.protect(self.victim_rows, mode=LockMode.ADJACENT)
        # Victim-load-time binding for detect-and-recover defenses:
        # checksum defenses snapshot the weight rows (RADAR), priority
        # defenses rank them most-critical-first (DNN-Defender).
        defense = channel0.defense
        if hasattr(defense, "bind_store"):
            defense.bind_store(self.store)
        if hasattr(defense, "prioritize"):
            defense.prioritize(self.store.data_rows)
        if defense is not None:
            # Syncs/write-backs follow the defense's row translation (a
            # permuting defense relocates threatened weight rows).
            self.store.row_source = defense.translate

    def _bit_value(self, system_row: int) -> int:
        value = self.system.peek_bytes(system_row, 0, 1)[0]
        return int(value >> VICTIM_BIT & 1)

    @property
    def campaign_rows(self) -> list[int]:
        """The rows the co-located attacker actually hammers."""
        if self.store is not None:
            return self._campaign_rows
        return self.victim_rows

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Run every time slice and return the scenario payload.

        A slice boundary is both serving-level events of the
        fast-forward design: the **arrival burst edge** (the per-tenant
        arrival RNGs draw at the top of the slice) and the
        **SLA-histogram epoch** (under ``engine="events"`` the shared
        queue drains at the bottom, after which every tenant's
        percentile books are current).
        """
        for slice_index in range(self.config.slices):
            tel = obs.ACTIVE
            started_ns = time.perf_counter_ns() if tel is not None else 0
            # Tenant traffic, multiplexed onto channels via the
            # configured engine; each tenant's latencies stream into
            # its books through the controller sink protocol.
            for op in self.generator.slice_ops(slice_index):
                self.serve_op(op.tenant, op.kind, op.requests)
            self.end_slice()
            if tel is not None:
                tel.trace.complete(
                    "slice",
                    started_ns,
                    time.perf_counter_ns() - started_ns,
                    slice=slice_index,
                    engine=self.config.engine,
                )
        return self._payload()

    def serve_op(
        self,
        tenant: str,
        kind: str,
        requests,
        *,
        arrival_s: float | None = None,
        prepared=None,
    ) -> bool:
        """Serve one workload op -- the unit both the closed loop and
        the trace-replay/live paths share.  Returns ``True`` when the
        op was served, ``False`` when it was shed onto a failed channel
        (booked with reason ``"channel_fault"``) or a quarantined one
        (reason ``"integrity_fault"``) -- callers counting conservation
        fold the return into their served/shed tallies.

        ``arrival_s`` (replay/live only) books the op's **sojourn** --
        completion minus arrival on the trace clock, floored at its
        service time -- the load-dependent latency the admission
        controller defends.  ``prepared`` is an optional pre-translated
        execution thunk from
        :meth:`~repro.serving.sharded.ShardedMemorySystem.handoff_stream`
        (the live frontend's ingestion thread does the address work);
        it must wrap the same ``requests``.
        """
        sla = self.sla
        sla.observe_op(tenant, kind)
        self.op_offered += 1
        if self._scaler is not None:
            requests = self._scaler.route(tenant, requests)
        if self._fault_active and self.fault.kind == "fail":
            # After scaler routing: a spilled tenant's replica ops land
            # on a healthy channel and are served; only traffic still
            # bound for the failed channel is shed.
            if any(
                self.system.channel_failed(index)
                for index in self._involved_channels(requests)
            ):
                sla.observe_shed(tenant, "channel_fault")
                self.op_shed += 1
                return False
        if self._health is not None and self._health.blocks(
            self._involved_channels(requests)
        ):
            # Integrity quarantine: the victim channel sits out while
            # corruption recovery settles; the op sheds instead of
            # touching possibly-tainted rows.
            sla.observe_shed(tenant, "integrity_fault")
            self.op_shed += 1
            return False
        sink = sla.sink(tenant)
        if arrival_s is None or self._queue is not None:
            if prepared is not None:
                prepared()
            else:
                self._dispatch(requests, sink)
            self.op_served += 1
            return True
        before_service = sink.summary.latency_ns
        if prepared is not None:
            prepared()
        else:
            self._dispatch(requests, sink)
        involved = self._involved_channels(requests)
        completion_ns = max(
            self.system.channels[index].device.now_ns for index in involved
        )
        service_ns = sink.summary.latency_ns - before_service
        sojourn_ns = max(service_ns, completion_ns - arrival_s * 1e9)
        sla.observe_sojourn(tenant, sojourn_ns)
        self.op_served += 1
        return True

    def end_slice(self) -> None:
        """Close one time slice: fault activation, victim-owner
        traffic, the co-located attacker's burst, the event-queue drain
        (``engine="events"``), and the channel scaler's epoch check.

        An injected :class:`~repro.eval.faults.ChannelFault` activates
        at the top of the boundary closing slice ``at_slice``: tenant
        ops of that slice ran clean, everything from this boundary on
        (owner/attacker traffic included) sees the failed or stalled
        channel.  The slice counter, not the wall clock, indexes
        activation, so the closed-loop, replay, and live paths inject
        at the identical point.
        """
        tel = obs.ACTIVE
        if tel is not None:
            # The events engine's queued streams execute in the drain
            # below: stamp their audit events with the closing slice.
            tel.audit.set_field("slice", self._slices_closed)
        if (
            self.fault is not None
            and not self._fault_active
            and self._slices_closed >= self.fault.at_slice
        ):
            self._fault_active = True
            if self.fault.kind == "fail":
                self.system.fail_channel(self.fault.channel)
                if self._scaler is not None:
                    self._scaler.on_channel_failed(self.fault.channel)
            else:
                self.system.stall_channel(
                    self.fault.channel, self.fault.stall_ns
                )
        self._victim_owner_slice()
        if self.config.colocated:
            self._attacker_slice()
        if self._queue is not None:
            self._queue.drain()
        if self._scaler is not None:
            self._scaler.on_epoch(self.sla)
        if self._health is not None:
            # After the drain: the probe must see every byte the
            # slice's traffic wrote before it checks the model.
            self._health.on_slice_end(self._slices_closed)
        self._slices_closed += 1

    def _row_unavailable(self, system_row: int) -> bool:
        """Whether fault injection took this row's channel out."""
        return (
            self._fault_active
            and self.fault.kind == "fail"
            and self.system.channel_failed(
                self.system.locate(system_row)[0].index
            )
        )

    def _row_quarantined(self, system_row: int) -> bool:
        """Whether integrity quarantine holds this row's channel."""
        return self._health is not None and self._health.blocks(
            [self.system.locate(system_row)[0].index]
        )

    def _involved_channels(self, requests) -> list[int]:
        """Channel indices a request stream lands on (for the sojourn
        completion clock)."""
        if isinstance(requests, RequestRun):
            return [self.system.locate(requests.request.row)[0].index]
        indices = {
            self.system.locate(request.row)[0].index for request in requests
        }
        return sorted(indices) if indices else [0]

    def _victim_owner_slice(self) -> None:
        """The victim owner's privileged guard-row traffic -- the
        unlock-SWAP opener, shared with the attack experiments via
        :class:`GuardRowTraffic`."""
        for _ in range(self.config.victim_traffic_per_slice):
            for row in self.campaign_rows:
                self.sla.observe_op("victim-owner", "guard-read")
                if self._row_unavailable(row):
                    self.sla.observe_shed("victim-owner", "channel_fault")
                    continue
                if self._row_quarantined(row):
                    self.sla.observe_shed("victim-owner", "integrity_fault")
                    continue
                self._victim_traffic.touch(row)

    def _attacker_slice(self) -> None:
        """The co-located attacker: double-sided hammer runs against
        every protected victim, O(1) memory per run."""
        config = self.config
        sink = self.sla.sink("attacker")
        for row in self.campaign_rows:
            for aggressor in self.system.neighbors(row, radius=1):
                self.sla.observe_op("attacker", "hammer")
                if self._row_unavailable(aggressor):
                    self.sla.observe_shed("attacker", "channel_fault")
                    continue
                if self._row_quarantined(aggressor):
                    self.sla.observe_shed("attacker", "integrity_fault")
                    continue
                self._dispatch(
                    RequestRun(
                        MemRequest(Kind.ACT, aggressor, privileged=False),
                        config.hammer_burst,
                    ),
                    sink,
                )

    # ------------------------------------------------------------------
    # Payload
    # ------------------------------------------------------------------
    def payload(self, live: dict | None = None) -> dict:
        """The scenario payload of the (finished) run.

        ``live`` attaches the live-frontend section (sojourn books,
        shed tallies, pacing info) under the ``"live"`` key -- the one
        key the replay-equivalence contract excludes from the
        byte-identity comparison against closed-loop payloads.
        """
        result = self._payload()
        if live is not None:
            result["live"] = live
        return result

    def _payload(self) -> dict:
        system = self.system
        config = self.config
        sim_seconds = system.makespan_ns * 1e-9
        flipped = sum(
            1
            for row, initial in zip(self.campaign_rows, self._initial_bits)
            if self._bit_value(row) != initial
        )
        victim: dict = {
            "shape": "model" if self.store is not None else "bits",
            "victims": len(self.victim_rows),
            "campaign_rows": len(self.campaign_rows),
            "protected": self.protected,
            "victim_flip_events": self.victim_flip_events,
            "protected_bits_flipped": flipped,
        }
        if self.store is not None:
            self.store.sync_model()
            post = self.qmodel.model.accuracy(
                self.dataset.test_x, self.dataset.test_y
            )
            victim.update(
                clean_accuracy=self.clean_accuracy,
                post_attack_accuracy=post,
                accuracy_unchanged=post == self.clean_accuracy,
            )
        payload = {
            "config": asdict(config),
            "sla": self.sla.report(
                sim_seconds,
                self.system.locker_summaries() if self.protected else None,
            ),
            "victim": victim,
            "channels": system.channel_report(),
            "memory_stats": system.aggregate_stats(),
            "makespan_ns": system.makespan_ns,
        }
        if self._scaler is not None:
            payload["scaling"] = self._scaler.report()
        if self._health is not None:
            report = self._health.report()
            report["offered_ops"] = self.op_offered
            report["served_ops"] = self.op_served
            report["shed_ops"] = self.op_shed
            report["conserved"] = (
                self.op_offered == self.op_served + self.op_shed
            )
            payload["health"] = report
        if self.fault is not None:
            payload["fault"] = {
                "channel": self.fault.channel,
                "kind": self.fault.kind,
                "at_slice": self.fault.at_slice,
                "active": self._fault_active,
                "failed_channels": list(self.system.failed_channels),
                "offered_ops": self.op_offered,
                "served_ops": self.op_served,
                "shed_ops": self.op_shed,
                "conserved": (
                    self.op_offered == self.op_served + self.op_shed
                ),
            }
        return payload


def run_serving(
    config: ServingConfig,
    *,
    protected: bool | None = None,
    defense_builder=None,
    model_victim=None,
    fault=None,
    health=None,
) -> dict:
    """Build and run one serving cell; returns the scenario payload.

    A thin shim over :class:`ServingSimulation` kept for the harness's
    existing call sites; the richer entry point is
    :func:`repro.serving.serve`, which also understands traces,
    admission control, and live pacing.  ``fault`` forwards an optional
    :class:`repro.eval.faults.ChannelFault`, ``health`` an optional
    :class:`repro.serving.health.HealthConfig`."""
    return ServingSimulation(
        config,
        protected=protected,
        defense_builder=defense_builder,
        model_victim=model_victim,
        fault=fault,
        health=health,
    ).run()
