"""SLA accounting for the multi-tenant serving subsystem.

Three pieces:

* :class:`StreamingPercentiles` -- exact streaming latency percentiles
  (p50/p99/p99.9/...).  Service latencies in this simulator are heavily
  quantized (a handful of distinct DDR timing sums), so a counting
  histogram over exact values is both O(distinct values) memory *and*
  exact: :meth:`percentile` reproduces ``numpy.percentile`` on the
  materialized sample stream bit-for-bit, including numpy's linear
  interpolation.  Bulk chunks feed it as ``(value, count)`` pairs, so a
  million-activation hammer run costs one histogram update.
* :class:`TenantSink` -- a controller result sink (the
  ``MemoryController.execute_stream`` protocol) that folds a tenant's
  request stream into :class:`RunSummary`-style totals plus the
  percentile tracker, with no per-request allocation on bulk chunks.
* :class:`SLAAccountant` -- per-tenant books (requests, blocked,
  latency percentiles, throughput against the simulated clock,
  exposure windows from the per-channel lockers) reduced to one
  serializable report.

The live serving frontend (:mod:`repro.serving.live`) adds two more
streams to the books, both absent from closed-loop runs so the
replay-equivalence contract's payload comparison stays byte-identical:

* **shed counts** -- per-tenant, per-reason tallies of admission-control
  drops (:meth:`SLAAccountant.observe_shed`); they appear in the tenant
  report only when nonzero.
* **sojourn times** -- arrival-to-completion latency against the trace
  clock (:meth:`SLAAccountant.observe_sojourn`): unlike the service
  latencies above (which are load-independent DDR timing sums), sojourn
  includes the backlog wait when a channel's clock runs ahead of the
  arrivals, so it is the load-*dependent* tail the admission
  controller defends.  Sojourn books are reported through
  :meth:`SLAAccountant.live_report`, never the closed-loop report.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from .. import obs
from ..controller.controller import SummarySink
from ..controller.request import RunSummary, Status

__all__ = [
    "StreamingPercentiles",
    "TenantSink",
    "SLAAccountant",
    "DEFAULT_PERCENTILES",
]

#: The report's latency quantiles: median, tail, extreme tail.
DEFAULT_PERCENTILES = (50.0, 99.0, 99.9)


class StreamingPercentiles:
    """Exact streaming percentiles over a quantized value stream.

    Values are counted, not stored: ``add(value, count)`` is O(1), and
    :meth:`percentile` resolves ranks against the sorted distinct
    values.  The result equals
    ``numpy.percentile(materialized_samples, q)`` exactly -- the rank
    arithmetic and the linear interpolation (including numpy's
    ``t >= 0.5`` lerp symmetrization) are replicated, which
    ``tests/test_serving.py`` pins against random streams.
    """

    __slots__ = ("_counts", "_total", "_sorted")

    def __init__(self) -> None:
        self._counts: dict[float, int] = {}
        self._total = 0
        self._sorted: list[float] | None = None

    def add(self, value: float, count: int = 1) -> None:
        """Observe ``count`` occurrences of ``value``."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if count == 0:
            return
        value = float(value)
        counts = self._counts
        if value in counts:
            counts[value] += count
        else:
            counts[value] = count
            self._sorted = None
        self._total += count

    def merge(self, other: "StreamingPercentiles") -> None:
        """Fold another tracker's counts into this one."""
        for value, count in other._counts.items():
            self.add(value, count)

    @property
    def count(self) -> int:
        """Number of samples observed so far."""
        return self._total

    def percentile(self, q: float) -> float:
        """``numpy.percentile`` of the materialized stream, exactly."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if self._total == 0:
            raise ValueError("no samples observed")
        values = self._sorted
        if values is None:
            values = self._sorted = sorted(self._counts)
        # numpy: virtual index = (q/100) * (n - 1), then linear lerp
        # between the neighbouring order statistics.
        virtual = (q / 100.0) * (self._total - 1)
        lo_rank = math.floor(virtual)
        t = virtual - lo_rank
        a = self._order_statistic(values, lo_rank)
        if t == 0.0:
            return a
        b = self._order_statistic(values, lo_rank + 1)
        if a == b:
            return a
        # numpy's _lerp flips the fold for t >= 0.5 so the result is
        # symmetric; replicate for bit-equality.
        if t < 0.5:
            return a + (b - a) * t
        return b - (b - a) * (1.0 - t)

    def percentiles(
        self, qs: tuple[float, ...] = DEFAULT_PERCENTILES
    ) -> dict[str, float]:
        """The report row: ``{"p50": ..., "p99": ..., "p99.9": ...}``."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def mean(self) -> float:
        """Mean of the observed stream (deterministic: counts fold in
        first-seen value order)."""
        if self._total == 0:
            raise ValueError("no samples observed")
        return (
            sum(value * count for value, count in self._counts.items())
            / self._total
        )

    def _order_statistic(self, values: list[float], rank: int) -> float:
        """The ``rank``-th sample (0-based) of the sorted stream."""
        remaining = rank
        for value in values:
            count = self._counts[value]
            if remaining < count:
                return value
            remaining -= count
        return values[-1]


class TenantSink(SummarySink):
    """The controller's summary sink, extended with latency tracking.

    All ``RunSummary`` accounting (the blocked/issued branch, the
    scalar in-order float fold) is inherited from the controller's own
    :class:`~repro.controller.controller.SummarySink` -- one definition
    of that discipline -- and this subclass only adds the percentile
    observations: scalar steps via :meth:`add`, bulk chunks via
    :meth:`add_run` as ``(latency, count)``, so the tracker sees every
    request while the engine allocates nothing per request.  Only
    *served* requests enter the latency distribution; blocked requests
    are tallied separately (a skipped instruction is not a served one).
    """

    __slots__ = ("latency",)

    def __init__(self) -> None:
        super().__init__()
        self.latency = StreamingPercentiles()

    def add(self, result) -> None:
        """Fold one result; served requests also feed the latency stream."""
        super().add(result)
        if result.status is not Status.BLOCKED:
            self.latency.add(result.latency_ns)

    def add_run(
        self, requests, start, count, status, latency_ns, defense_ns, physical
    ) -> None:
        """Fold one bulk run; served runs feed ``count`` latency samples."""
        super().add_run(
            requests, start, count, status, latency_ns, defense_ns, physical
        )
        if status is not Status.BLOCKED:
            self.latency.add(latency_ns, count)


@dataclass
class _TenantBooks:
    """One tenant's running totals."""

    sink: TenantSink = field(default_factory=TenantSink)
    ops: dict[str, int] = field(default_factory=dict)
    shed: dict[str, int] = field(default_factory=dict)
    sojourn: StreamingPercentiles = field(
        default_factory=StreamingPercentiles
    )

    def observe_op(self, kind: str) -> None:
        """Count one workload op of ``kind`` against this tenant."""
        self.ops[kind] = self.ops.get(kind, 0) + 1

    def observe_shed(self, reason: str) -> None:
        """Count one admission-control drop of this tenant's traffic."""
        self.shed[reason] = self.shed.get(reason, 0) + 1


class SLAAccountant:
    """Per-tenant SLA books over one serving run."""

    def __init__(self, percentiles: tuple[float, ...] = DEFAULT_PERCENTILES):
        self.percentiles = percentiles
        self._tenants: dict[str, _TenantBooks] = {}
        # The live frontend's ingestion thread creates sinks while the
        # executor thread folds results; only books *creation* mutates
        # the tenant dict, so that is the one guarded section.
        self._books_lock = threading.Lock()

    def sink(self, tenant: str) -> TenantSink:
        """The result sink accumulating ``tenant``'s stream."""
        return self._books(tenant).sink

    def observe_op(self, tenant: str, kind: str) -> None:
        """Count one workload operation (read / write / inference /
        hammer) against a tenant."""
        self._books(tenant).observe_op(kind)

    def observe_shed(self, tenant: str, reason: str) -> None:
        """Count one shed (dropped) op against a tenant.

        ``reason`` is the admission controller's verdict --
        ``"throttled"`` (token bucket), ``"pressure"`` (SLA-pressure
        shedding), or ``"queue-full"`` (bounded outstanding queue) --
        or a fault-path verdict: ``"channel_fault"`` (the op's channel
        failed) or ``"integrity_fault"`` (the op's channel is under
        corruption-recovery quarantine).
        """
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("serving.sheds", tenant=tenant, reason=reason)
            if reason in ("channel_fault", "integrity_fault"):
                # Fault-path sheds are defense-relevant (the simulated
                # path emits them at deterministic slice-loop points);
                # load-dependent sheds stay out of the audit stream.
                tel.audit.emit("shed", tenant=tenant, reason=reason)
        self._books(tenant).observe_shed(reason)

    def observe_sojourn(self, tenant: str, sojourn_ns: float) -> None:
        """Observe one op's arrival-to-completion time (trace clock)."""
        self._books(tenant).sojourn.add(sojourn_ns)

    def sojourn_p99_ns(self, tenant: str, min_samples: int = 1) -> float | None:
        """The tenant's p99 sojourn, or ``None`` below ``min_samples``
        observations (the admission controller's pressure signal)."""
        books = self._tenants.get(tenant)
        if books is None or books.sojourn.count < max(1, min_samples):
            return None
        return books.sojourn.percentile(99.0)

    def shed_counts(self) -> dict[str, dict[str, int]]:
        """Per-tenant shed tallies by reason (empty when nothing shed)."""
        return {
            name: dict(sorted(books.shed.items()))
            for name, books in sorted(self._tenants.items())
            if books.shed
        }

    def _books(self, tenant: str) -> _TenantBooks:
        books = self._tenants.get(tenant)
        if books is None:
            with self._books_lock:
                books = self._tenants.get(tenant)
                if books is None:
                    books = self._tenants[tenant] = _TenantBooks()
        return books

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def tenant_report(self, tenant: str, sim_seconds: float) -> dict:
        """One tenant's SLA report: counts, rates, latency percentiles."""
        books = self._tenants[tenant]
        summary = books.sink.summary
        latency = books.sink.latency
        report = {
            "requests": summary.requested,
            "issued": summary.issued,
            "blocked": summary.blocked,
            "latency_ns_total": summary.latency_ns,
            "defense_ns_total": summary.defense_ns,
            "ops": dict(sorted(books.ops.items())),
            "throughput_rps": (
                summary.requested / sim_seconds if sim_seconds > 0 else 0.0
            ),
        }
        if latency.count:
            # Mean of the same distribution the percentiles describe:
            # served requests only (blocked lookups live in the totals
            # above, not in the latency distribution).
            report["latency_ns"] = {
                **latency.percentiles(self.percentiles),
                "mean": latency.mean(),
            }
        if books.shed:
            # Only present when admission control actually dropped
            # something, so closed-loop payloads are byte-identical to
            # pre-admission ones.
            report["shed"] = dict(sorted(books.shed.items()))
        return report

    def live_report(self) -> dict:
        """The live-frontend section: sojourn percentiles and shed
        tallies, kept out of :meth:`report` so replayed payloads stay
        byte-identical to closed-loop ones outside the ``"live"`` key.
        """
        tenants: dict[str, dict] = {}
        for name in sorted(self._tenants):
            books = self._tenants[name]
            entry: dict = {}
            if books.sojourn.count:
                entry["sojourn_ns"] = {
                    **books.sojourn.percentiles(self.percentiles),
                    "mean": books.sojourn.mean(),
                }
            if books.shed:
                entry["shed"] = dict(sorted(books.shed.items()))
            if entry:
                tenants[name] = entry
        shed_total = sum(
            count
            for books in self._tenants.values()
            for count in books.shed.values()
        )
        return {"tenants": tenants, "shed_total": shed_total}

    def report(
        self,
        sim_seconds: float,
        locker_summaries: dict[str, dict] | None = None,
    ) -> dict:
        """The run's SLA section: per-tenant books, aggregate
        throughput, and (when lockers are installed) the per-channel
        exposure-window stats."""
        tenants = {
            name: self.tenant_report(name, sim_seconds)
            for name in sorted(self._tenants)
        }
        totals = RunSummary()
        for books in self._tenants.values():
            totals.issued += books.sink.summary.issued
            totals.blocked += books.sink.summary.blocked
        aggregate = {
            "requests": totals.requested,
            "issued": totals.issued,
            "blocked": totals.blocked,
            "sim_seconds": sim_seconds,
            "requests_per_sim_sec": (
                totals.requested / sim_seconds if sim_seconds > 0 else 0.0
            ),
        }
        report = {"tenants": tenants, "aggregate": aggregate}
        if locker_summaries is not None:
            report["locker"] = locker_summaries
        return report
