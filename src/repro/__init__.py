"""DRAM-Locker reproduction.

A full-system reproduction of *DRAM-Locker: A General-Purpose DRAM
Protection Mechanism Against Adversarial DNN Weight Attacks* (DATE 2024,
arXiv:2312.09027).

The package is organised as one subpackage per subsystem:

``repro.dram``
    Cycle-approximate DRAM device model with a RowHammer disturbance
    model, refresh engine, and DDR3/DDR4/LPDDR4 timing/energy tables.
``repro.controller``
    Memory controller: request sequence, open-row policy, defense hooks.
``repro.isa``
    The paper's 16-bit instruction set (row-copy / ``bnez`` / ``done``),
    assembler and micro-program executor.
``repro.locker``
    The DRAM-Locker defense itself: SRAM lock-table, RowClone-based
    SWAP engine with process-variation failure injection, re-lock policy.
``repro.defenses``
    Behavioural baselines (SHADOW, Graphene, Hydra, TWiCE, PARA, TRR,
    counter trees, RRS/SRS) plus the Table I overhead calculators.
``repro.vm``
    Two-level page tables stored in simulated DRAM, used by the
    page-table attack (PTA).
``repro.circuits``
    Monte-Carlo charge-sharing model of the in-DRAM copy (Section IV-D).
``repro.arch``
    CACTI-like analytical SRAM/CAM/DRAM cost model.
``repro.nn``
    NumPy DNN stack (ResNet-20 / VGG-11), 8-bit quantization, synthetic
    CIFAR-like datasets, and training-based hardening baselines.
``repro.attacks``
    Progressive-bit-search BFA, random-flip baseline, and PTA drivers
    that act on the model *through* the simulated DRAM.
``repro.eval``
    Experiment runners and report formatting for every table and figure.

The stable, user-facing API is re-exported from :mod:`repro.core`.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
