"""The RowHammer execution layer shared by all attacks.

An attack never flips model weights directly: it names a victim (row,
bit), the driver registers the attacker's data-pattern template,
issues unprivileged activations against the adjacent aggressor rows
through the controller, and reports what actually happened -- which is
how a defense's protection (blocked activations, relocated rows,
refreshed victims) becomes an emergent experimental outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..controller.controller import MemoryController
from ..dram.device import DRAMDevice

__all__ = ["HammerOutcome", "HammerDriver", "execute_weight_flip"]


def execute_weight_flip(
    qmodel, store, driver: "HammerDriver | None", name: str, index: int, bit: int
) -> tuple[bool, int]:
    """Execute one chosen weight-bit flip the way every bit-search
    attack does: directly on the quantized payload when there is no
    DRAM store (pure software mode), otherwise as a RowHammer campaign
    against the bit's physical location.  Returns
    ``(flipped, activations_blocked)``."""
    if store is None:
        qmodel.flip_bit(name, index, bit)
        return True, 0
    assert driver is not None
    row, row_bit = store.bit_location(name, index, bit)
    outcome = driver.hammer_bit(row, row_bit)
    return outcome.flipped, outcome.activations_blocked


@dataclass
class HammerOutcome:
    """What one targeted hammering campaign achieved."""

    flipped: bool
    activations_issued: int
    activations_blocked: int
    victim_row: int
    victim_bit: int

    @property
    def attempted(self) -> int:
        return self.activations_issued + self.activations_blocked


class HammerDriver:
    """Issues double-sided RowHammer campaigns as an unprivileged tenant."""

    def __init__(self, controller: MemoryController, patience: float = 3.0):
        """``patience``: attacker gives up after ``patience * TRH``
        attempted activations per aggressor side."""
        self.controller = controller
        self.device: DRAMDevice = controller.device
        self.patience = patience

    def hammer_bit(self, victim_row: int, victim_bit: int) -> HammerOutcome:
        """Try to flip one bit of one row; stop as soon as it lands."""
        device = self.device
        device.vulnerability.register_template(victim_row, [victim_bit])
        aggressors = device.mapper.neighbors(victim_row, radius=1)
        trh = device.timing.trh
        issued = 0
        blocked = 0
        initial = self._bit_value(victim_row, victim_bit)

        # Hammer in TRH-sized bursts, checking the ground truth between
        # bursts (the flip fires exactly at TRH-multiples of issued ACTs).
        # Summary mode: the controller tallies issued/blocked in bulk
        # instead of materializing one result object per activation.
        for _ in range(max(1, int(self.patience))):
            for aggressor in aggressors:
                summary = self.controller.hammer_run(aggressor, count=trh)
                issued += summary.issued
                blocked += summary.blocked
                if self._bit_value(victim_row, victim_bit) != initial:
                    return HammerOutcome(
                        True, issued, blocked, victim_row, victim_bit
                    )
        return HammerOutcome(False, issued, blocked, victim_row, victim_bit)

    def _bit_value(self, row: int, bit: int) -> int:
        byte_index, bit_index = divmod(bit, 8)
        value = self.device.peek_bytes(row, byte_index, 1)[0]
        return int((value >> bit_index) & 1)
