"""The attack registry: one dispatch point for every weight attack.

Defenses are dispatched through a name -> factory table
(``DEFENSE_BUILDERS`` in the harness); attacks get the same treatment
here so the evaluation matrix can enumerate them declaratively.  An
:class:`AttackSpec` binds a name to

* a **builder** -- ``(AttackContext, **params) -> Attack`` -- that
  instantiates the attack against a victim model, optionally routed
  through the DRAM simulator (``store``/``driver``), and
* a **summarizer** that flattens the attack's native result object into
  the uniform payload the harness records (``accuracies``,
  ``executed_flips``, ``final_accuracy``, ``metrics``).

Modules register themselves at import time with the
:func:`register_attack` decorator; importing :mod:`repro.attacks` pulls
every family in.  Extending the matrix with a new attack is therefore:
write the class, decorate a builder, done -- the harness's ``attack``
runner, the canned ``attacks`` scenario set, and the registry tests
pick it up by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

from ..engines import SEARCH_ENGINES, resolve_engine
from ..nn.data import Dataset
from ..nn.quant import QuantizedModel
from ..nn.storage import WeightStore
from .hammer import HammerDriver

__all__ = [
    "Attack",
    "AttackContext",
    "AttackSpec",
    "ATTACKS",
    "register_attack",
    "build_attack",
    "run_attack",
    "available_attacks",
]


@runtime_checkable
class Attack(Protocol):
    """What the registry requires of an attack object."""

    def run(self, iterations: int) -> Any:
        """Execute up to ``iterations`` attack steps; return a result."""
        ...


@dataclass
class AttackContext:
    """Everything a builder may need to aim an attack at a victim.

    ``store``/``driver`` route flips through the DRAM simulator (both
    ``None`` means a pure software attack); ``before_execute`` is the
    tenant-traffic hook whose privileged accesses open DRAM-Locker's
    unlock-SWAP windows.  ``engine`` selects the candidate-evaluation
    engine for the bit-search families ("suffix" = activation-cached,
    "full" = per-candidate full-forward reference); an explicit
    ``engine=`` attack param overrides it per scenario.
    """

    qmodel: QuantizedModel
    dataset: Dataset
    store: WeightStore | None = None
    driver: HammerDriver | None = None
    before_execute: Callable[[str, int, int], None] | None = None
    seed: int = 0
    attack_batch: int = 64
    engine: str = "suffix"

    def __post_init__(self) -> None:
        # One uniform unknown-engine error, no matter which layer
        # (controller, session, harness, context) sees the name first.
        resolve_engine(self.engine, allowed=SEARCH_ENGINES, kind="search")

    @property
    def in_dram(self) -> bool:
        return self.store is not None


AttackBuilder = Callable[..., Attack]
Summarizer = Callable[[Any], dict]


def summarize_generic(result: Any) -> dict:
    """Uniform payload for result objects with the BFA-style fields."""
    accuracies = list(getattr(result, "accuracies", []))
    flips = getattr(result, "flips", None) or getattr(result, "records", [])
    metrics: dict[str, Any] = {}
    if hasattr(result, "asr"):
        metrics["asr"] = list(result.asr)
        metrics["final_asr"] = result.asr[-1] if result.asr else 0.0
    if hasattr(result, "rounds"):
        metrics["rounds"] = [dict(r) for r in result.rounds]
    if flips and hasattr(flips[0], "activations_blocked"):
        metrics["blocked_activations"] = sum(
            f.activations_blocked for f in flips
        )
    executed = getattr(result, "executed_flips", None)
    if executed is None and hasattr(result, "executed_redirects"):
        executed = result.executed_redirects
    return {
        "iterations": len(accuracies),
        "accuracies": accuracies,
        "final_accuracy": accuracies[-1] if accuracies else None,
        "executed_flips": int(executed or 0),
        "metrics": metrics,
    }


@dataclass(frozen=True)
class AttackSpec:
    """One registered attack family."""

    name: str
    builder: AttackBuilder
    description: str = ""
    targeted: bool = False
    summarize: Summarizer = field(default=summarize_generic)

    def build(self, ctx: AttackContext, **params: Any) -> Attack:
        return self.builder(ctx, **params)


#: The registry.  Populated by :func:`register_attack` at import time.
ATTACKS: dict[str, AttackSpec] = {}


def register_attack(
    name: str,
    *,
    description: str = "",
    targeted: bool = False,
    summarize: Summarizer = summarize_generic,
) -> Callable[[AttackBuilder], AttackBuilder]:
    """Class decorator-style registration of an attack builder."""

    def decorate(builder: AttackBuilder) -> AttackBuilder:
        if name in ATTACKS:
            raise ValueError(f"attack {name!r} registered twice")
        ATTACKS[name] = AttackSpec(
            name=name,
            builder=builder,
            description=description,
            targeted=targeted,
            summarize=summarize,
        )
        return builder

    return decorate


def available_attacks() -> list[str]:
    return sorted(ATTACKS)


def build_attack(name: str, ctx: AttackContext, **params: Any) -> Attack:
    spec = ATTACKS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown attack {name!r}; available: {available_attacks()}"
        )
    return spec.build(ctx, **params)


def run_attack(
    name: str, ctx: AttackContext, iterations: int, **params: Any
) -> dict:
    """Build, run, and summarize one attack into the uniform payload."""
    attack = build_attack(name, ctx, **params)
    spec = ATTACKS[name]
    result = spec.summarize(attack.run(iterations))
    result["attack"] = name
    result["targeted"] = spec.targeted
    return result
