"""Multi-round BFA: a persistent attacker vs DRAM-Locker's swap windows.

:class:`~repro.attacks.bfa.ProgressiveBitSearch` gives up on a bit the
moment a campaign is blocked -- its visited-set exists so the search
never oscillates.  A real co-located attacker is more patient: blocked
targets stay valuable, and DRAM-Locker's only failure surface is the
*unlock-SWAP window* that privileged tenant traffic opens (and that the
process-variation failure rate occasionally leaves ajar).  This attack
models that patience:

* the campaign is split into **rounds**; each round first retries the
  highest-value flips that previous rounds failed to land, then spends
  the rest of its budget on fresh gradient-ranked targets;
* before every retry the attacker *interleaves with the swap machinery*:
  it waits for (i.e. triggers, via the ``tenant_hook``) privileged
  accesses next to the target, so the retry coincides with an unlock
  window rather than hammering a locked row again;
* a target is abandoned only after ``retry_limit`` failed rounds.

The tenant traffic itself is not the attacker's to shape: it is the
co-located victim workload, modelled by the serving subsystem's
:class:`~repro.serving.GuardRowTenant` (one privileged guard-row access
per campaign) -- the same stream the cross-layer pipeline and the
serving matrix's victim owner issue.  ``tenant_hook`` accepts any
callable with that ``(tensor, index, bit)`` signature.

Against an unprotected system this degenerates to plain BFA; against
DRAM-Locker with a non-zero SWAP failure rate it converts the paper's
9.6 % exposure probability into eventual flips, which is exactly the
"attacker needs ever more time" trade-off of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nn.data import Dataset
from ..nn.quant import QuantizedModel
from ..nn.storage import WeightStore
from .bfa import BFAConfig, FlipRecord, ProgressiveBitSearch
from .hammer import HammerDriver
from .registry import AttackContext, register_attack

__all__ = ["MultiRoundConfig", "MultiRoundResult", "MultiRoundBFA"]


@dataclass(frozen=True)
class MultiRoundConfig:
    """Hyper-parameters of the multi-round campaign."""

    rounds: int = 3
    #: How many failed rounds before a target is abandoned.
    retry_limit: int = 2
    #: Tenant accesses issued immediately before each retry -- the
    #: privileged traffic whose unlock-SWAPs open the attack window.
    tenant_accesses_per_retry: int = 2
    attack_batch: int = 64
    candidates_per_layer: int = 10
    evals_per_layer: int = 3
    layers_to_evaluate: int = 6
    eval_limit: int = 512
    #: Candidate-evaluation engine of the inner search ("suffix"/"full").
    engine: str = "suffix"
    seed: int = 0


@dataclass
class MultiRoundResult:
    """Accuracy trajectory plus the per-round retry bookkeeping."""

    accuracies: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    flips: list[FlipRecord] = field(default_factory=list)
    #: One summary dict per round: attempts, landed, retries, pending.
    rounds: list[dict] = field(default_factory=list)

    @property
    def executed_flips(self) -> int:
        return sum(1 for flip in self.flips if flip.executed)

    @property
    def retried_flips(self) -> int:
        return sum(r["retries"] for r in self.rounds)


class MultiRoundBFA:
    """Rounds of progressive bit search with swap-window retries."""

    def __init__(
        self,
        qmodel: QuantizedModel,
        dataset: Dataset,
        config: MultiRoundConfig | None = None,
        store: WeightStore | None = None,
        driver: HammerDriver | None = None,
        tenant_hook=None,
    ):
        """``tenant_hook``: the co-located tenant stream invoked before
        each retry -- typically a
        :class:`~repro.serving.GuardRowTenant` bound to the victim's
        store and controller."""
        if (store is None) != (driver is None):
            raise ValueError("provide both store and driver, or neither")
        self.config = config or MultiRoundConfig()
        search_config = BFAConfig(
            attack_batch=self.config.attack_batch,
            candidates_per_layer=self.config.candidates_per_layer,
            evals_per_layer=self.config.evals_per_layer,
            layers_to_evaluate=self.config.layers_to_evaluate,
            eval_limit=self.config.eval_limit,
            engine=self.config.engine,
            seed=self.config.seed,
        )
        # The inner search supplies gradient ranking, flip execution and
        # the evaluation plumbing; this class owns the round/retry loop,
        # so the inner .run() is never called.
        self.search = ProgressiveBitSearch(
            qmodel,
            dataset,
            search_config,
            store=store,
            driver=driver,
        )
        self.qmodel = qmodel
        self.dataset = dataset
        self.store = store
        self.tenant_hook = tenant_hook
        #: (tensor, index, bit) -> failed attempts so far.
        self._pending: dict[tuple[str, int, int], int] = {}

    # ------------------------------------------------------------------
    # One attempt (fresh target or retry)
    # ------------------------------------------------------------------
    def _attempt(
        self, iteration: int, target: tuple[str, int, int], retry: bool
    ) -> FlipRecord:
        name, index, bit = target
        if retry and self.tenant_hook is not None:
            # Interleave with the locker: privileged accesses right
            # before the campaign force unlock-SWAPs on the guard rows,
            # so the retry rides the swap window (or its failure).
            for _ in range(self.config.tenant_accesses_per_retry):
                self.tenant_hook(name, index, bit)
        executed, blocked = self.search._execute_flip(name, index, bit)
        if self.store is not None:
            self.store.sync_model()
        session = self.search.session
        loss = session.objective(self.search.terms, key="loss")
        accuracy = session.accuracy(self.search.eval_x, self.search.eval_y)
        return FlipRecord(
            iteration=iteration,
            tensor=name,
            flat_index=index,
            bit=bit,
            executed=executed,
            loss_after=loss,
            accuracy_after=accuracy,
            activations_blocked=blocked,
        )

    # ------------------------------------------------------------------
    # Attack loop
    # ------------------------------------------------------------------
    def run(self, iterations: int) -> MultiRoundResult:
        """``iterations`` = total flip attempts across all rounds."""
        config = self.config
        result = MultiRoundResult()
        # Spread the attempt budget over the rounds exactly: equal
        # shares with the remainder in the last round; when the budget
        # is smaller than the round count, early rounds get 0 attempts.
        per_round = iterations // config.rounds
        budgets = [per_round] * (config.rounds - 1) + [
            iterations - per_round * (config.rounds - 1)
        ]
        iteration = 0
        for round_index, budget in enumerate(budgets):
            landed = retries = attempts = 0
            # Retries first: blocked targets from previous rounds, most
            # recently blocked last (they ranked highest most recently).
            retry_queue = list(self._pending)
            while budget > 0 and retry_queue:
                target = retry_queue.pop(0)
                iteration += 1
                attempts += 1
                retries += 1
                budget -= 1
                record = self._attempt(iteration, target, retry=True)
                result.flips.append(record)
                result.losses.append(record.loss_after)
                result.accuracies.append(record.accuracy_after)
                if record.executed:
                    landed += 1
                    del self._pending[target]
                else:
                    self._pending[target] += 1
                    if self._pending[target] >= config.retry_limit:
                        del self._pending[target]
            # Fresh gradient-ranked targets for the rest of the budget.
            while budget > 0:
                if self.store is not None:
                    self.store.sync_model()
                name, index, bit, _ = self.search._choose_flip()
                self.search._visited.add((name, index, bit))
                iteration += 1
                attempts += 1
                budget -= 1
                record = self._attempt(iteration, (name, index, bit), retry=False)
                result.flips.append(record)
                result.losses.append(record.loss_after)
                result.accuracies.append(record.accuracy_after)
                if record.executed:
                    landed += 1
                else:
                    self._pending[(name, index, bit)] = 1
            result.rounds.append(
                {
                    "round": round_index + 1,
                    "attempts": attempts,
                    "landed": landed,
                    "retries": retries,
                    "pending_after": len(self._pending),
                }
            )
        return result


@register_attack(
    "multi-round-bfa",
    description=(
        "Progressive BFA in rounds that retries blocked flips inside "
        "DRAM-Locker's unlock-SWAP windows"
    ),
)
def _multi_round(ctx: AttackContext, **params) -> MultiRoundBFA:
    params.setdefault("engine", ctx.engine)
    config = MultiRoundConfig(
        attack_batch=ctx.attack_batch, seed=ctx.seed, **params
    )
    return MultiRoundBFA(
        ctx.qmodel,
        ctx.dataset,
        config,
        store=ctx.store,
        driver=ctx.driver,
        tenant_hook=ctx.before_execute,
    )
